//! A tour of the encoding layer: the modulo arithmetic of Section 2, the
//! Figure 2 worked example, reserved special-purpose registers
//! (Section 9.2), and the hardware cost model (Section 2.1).
//!
//! Run with: `cargo run -p dra-core --example encoding_lab`

use dra_adjgraph::DiffParams;
use dra_encoding::hardware::{cycle_fraction, decoder_cost};
use dra_encoding::{encode_fields, EncodingConfig};
use dra_ir::{FunctionBuilder, Inst, PReg, RegClass};

fn main() {
    // --- Section 2: the arithmetic -------------------------------------
    let p = DiffParams::new(16, 8);
    println!("RegN=16, DiffN=8 (4-bit registers through 3-bit fields):");
    println!("  encode(R1 -> R3)  = {}", p.encode(1, 3));
    println!("  encode(R3 -> R8)  = {}", p.encode(3, 8));
    println!("  encode(R8 -> R1)  = {} (wraps the circle)", p.encode(8, 1));
    println!("  in_range(R8, R1)? {}", p.in_range(8, 1));

    // --- Figure 2: 4 registers in 1-bit fields -------------------------
    // Access sequence r0,r1 r1,r2 r2,r3 r3,r3: all diffs are 0 or 1.
    let fig2 = DiffParams::new(4, 2);
    println!(
        "\nFigure 2: RegN=4, DiffN=2 -> {} bit(s) per field, saving {} bit(s)",
        fig2.diff_w(),
        fig2.bits_saved_per_field()
    );
    let mut b = FunctionBuilder::new("fig2");
    b.push(Inst::SetLastReg {
        class: RegClass::Int,
        value: 0,
        delay: 0,
    });
    for (src, dst) in [(0u8, 1u8), (1, 2), (2, 3), (3, 3)] {
        b.push(Inst::Mov {
            dst: PReg(dst).into(),
            src: PReg(src).into(),
        });
    }
    b.ret(None);
    let f = b.finish();
    let cfg = EncodingConfig::new(fig2);
    let fields = encode_fields(&f, &cfg).expect("in range by construction");
    println!("  emitted field codes per instruction:");
    for (inst, codes) in f.blocks[0].insts.iter().zip(&fields[0]) {
        println!("    {inst:<24} -> {codes:?}");
    }

    // --- Section 9.2: a reserved stack pointer -------------------------
    let sp_cfg = EncodingConfig::new(DiffParams::new(16, 8)).with_reserved([15]);
    println!(
        "\nreserved r15 (stack pointer): differential codes 0..{}, code {} = r15 directly",
        sp_cfg.effective_diff_n() - 1,
        sp_cfg.effective_diff_n()
    );

    // --- Section 2.1: the decoder is cheap -----------------------------
    println!("\nhardware cost of the parallel differential decoder:");
    for (regs, clock) in [(16u16, 500.0), (32, 2000.0), (128, 3000.0)] {
        let c = decoder_cost(regs, 3);
        println!(
            "  {regs:>3} registers: last_reg {} bits, widest adder {} input bits, ~{} transistors, {:.2} ns ({:.0}% of a {} MHz cycle)",
            c.last_reg_bits,
            c.max_adder_input_bits,
            c.transistor_estimate,
            c.delay_ns,
            100.0 * cycle_fraction(&c, clock),
            clock
        );
    }
}
