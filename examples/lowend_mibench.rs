//! The low-end experiment on one benchmark: all five setups side by side.
//!
//! This is Figure 11–14 in miniature for a single program — pick the
//! benchmark with the first CLI argument (default `sha`, the highest-
//! pressure kernel).
//!
//! Run with: `cargo run -p dra-core --example lowend_mibench [--release] [name]`

use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};
use dra_workloads::benchmark_names;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sha".to_string());
    assert!(
        benchmark_names().contains(&name.as_str()),
        "unknown benchmark `{name}`; available: {:?}",
        benchmark_names()
    );

    let setup = LowEndSetup::default();
    println!(
        "benchmark `{name}`: direct setups use {} registers, differential use RegN={} DiffN={}\n",
        setup.direct_regs,
        setup.diff.reg_n(),
        setup.diff.diff_n()
    );
    println!(
        "{:<11} {:>7} {:>8} {:>7} {:>10} {:>10} {:>9}",
        "approach", "spill%", "slr%", "insts", "code(bits)", "cycles", "result"
    );

    let mut baseline_cycles = None;
    for a in Approach::ALL {
        let r = compile_and_run(&name, a, &setup)
            .unwrap_or_else(|e| panic!("{}: {e}", a.label()));
        if a == Approach::Baseline {
            baseline_cycles = Some(r.cycles);
        }
        println!(
            "{:<11} {:>6.2}% {:>7.2}% {:>7} {:>10} {:>10} {:>9}",
            a.label(),
            r.spill_percent(),
            r.cost_percent(),
            r.total_insts,
            r.code_bits,
            r.cycles,
            r.ret_value.unwrap_or(0)
        );
    }

    if let Some(base) = baseline_cycles {
        println!("\nspeedups over baseline:");
        for a in [Approach::Remapping, Approach::Select, Approach::OSpill, Approach::Coalesce] {
            let r = compile_and_run(&name, a, &setup).unwrap();
            let s = 100.0 * (base as f64 - r.cycles as f64) / r.cycles as f64;
            println!("  {:<11} {s:+.2}%", a.label());
        }
    }
}
