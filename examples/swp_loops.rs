//! Software pipelining with differential registers: one register-hungry
//! loop swept across `RegN` (the Section 8.1 / Table 2 story on a single
//! loop).
//!
//! Run with: `cargo run -p dra-core --example swp_loops`

use dra_swp::{pipeline_loop, LoopDdg, LoopOp, PipelineConfig};

fn main() {
    // A dense loop body: 20 long-latency loads feeding a reduction —
    // the shape aggressive unrolling produces, with MaxLive well over 32.
    let mut d = LoopDdg::new(100_000);
    let loads: Vec<_> = (0..20).map(|_| d.add_op(LoopOp::load(10))).collect();
    let mut layer: Vec<usize> = loads
        .chunks(2)
        .map(|pair| {
            let m = d.add_op(LoopOp::alu_lat(4));
            for &l in pair {
                d.add_dep(l, m, 0);
            }
            m
        })
        .collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    let j = d.add_op(LoopOp::alu());
                    d.add_dep(pair[0], j, 0);
                    d.add_dep(pair[1], j, 0);
                    j
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    let acc = d.add_op(LoopOp::alu());
    d.add_dep(layer[0], acc, 0);
    d.add_dep(acc, acc, 1);

    println!("loop: {} ops, trip count {}", d.len(), d.trip_count);
    println!(
        "\n{:>5} {:>4} {:>7} {:>9} {:>7} {:>5} {:>12} {:>9}",
        "RegN", "II", "stages", "maxlive", "spills", "slr", "cycles", "speedup"
    );

    let mut base_cycles = None;
    for reg_n in [32u16, 40, 48, 56, 64] {
        let r = pipeline_loop(&d, &PipelineConfig::highend(reg_n)).expect("pipelines");
        let speedup = match base_cycles {
            None => {
                base_cycles = Some(r.cycles);
                0.0
            }
            Some(b) => 100.0 * (b as f64 - r.cycles as f64) / r.cycles as f64,
        };
        println!(
            "{:>5} {:>4} {:>7} {:>9} {:>7} {:>5} {:>12} {:>8.2}%",
            reg_n,
            r.ii,
            r.stages,
            r.max_live_initial,
            r.spill_ops,
            r.set_last_regs,
            r.cycles,
            speedup
        );
    }
    println!("\nmore registers -> fewer spill ops -> lower II -> big speedups, saturating");
    println!("once the loop's natural requirement fits (the paper's Table 2 shape).");
}
