//! Quickstart: differential register encoding in five minutes.
//!
//! Builds a small function, allocates it with 12 registers even though the
//! instruction format only has 3-bit (8-value) register fields, repairs it
//! with `set_last_reg`, and proves the hardware would decode it correctly
//! along an actual execution path.
//!
//! Run with: `cargo run -p dra-core --example quickstart`

use dra_adjgraph::DiffParams;
use dra_encoding::{decode_trace, insert_set_last_reg, verify_function, EncodingConfig};
use dra_ir::{BinOp, Cond, FunctionBuilder, Program};
use dra_regalloc::{irc_allocate, AllocConfig};
use dra_sim::{simulate, LowEndConfig};

fn main() {
    // 1. A function with more live values than 8 registers can hold
    //    comfortably: sum of 10 initialized values.
    let mut b = FunctionBuilder::new("quickstart");
    let vals: Vec<_> = (0..10).map(|_| b.new_vreg()).collect();
    for (i, &v) in vals.iter().enumerate() {
        b.mov_imm(v, (i * i) as i32);
    }
    let acc = b.new_vreg();
    b.mov_imm(acc, 0);
    let i = b.new_vreg();
    let n = b.new_vreg();
    b.mov_imm(i, 0);
    b.mov_imm(n, 3);
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    b.cond_br(Cond::Lt, i.into(), n.into(), body, exit);
    b.switch_to(body);
    for &v in &vals {
        b.bin(BinOp::Add, acc, acc.into(), v.into());
    }
    b.bin_imm(BinOp::Add, i, i.into(), 1);
    b.br(header);
    b.switch_to(exit);
    b.ret(Some(acc.into()));
    let mut f = b.finish();
    dra_ir::loops::assign_static_frequencies(&mut f);

    // 2. Allocate with RegN = 12 — four more registers than direct
    //    encoding could name — using differential select.
    let params = DiffParams::new(12, 8);
    println!(
        "differential encoding: RegN = {}, DiffN = {} ({} bits/field instead of {})",
        params.reg_n(),
        params.diff_n(),
        params.diff_w(),
        params.reg_w()
    );
    let cfg = AllocConfig::differential(params);
    let stats = irc_allocate(&mut f, &cfg).expect("allocation succeeds");
    println!(
        "allocated: {} rounds, {} vregs spilled, {} moves coalesced",
        stats.rounds, stats.spilled_vregs, stats.moves_coalesced
    );

    // 3. Repair: insert set_last_reg wherever a difference is out of range
    //    or control-flow paths disagree.
    let enc = EncodingConfig::new(params);
    let repairs = insert_set_last_reg(&mut f, &enc);
    println!(
        "repairs: {} set_last_reg ({} out-of-range, {} inconsistency)",
        repairs.inserted, repairs.out_of_range, repairs.inconsistency
    );
    verify_function(&f, &enc).expect("statically decodable");

    // 4. Execute on the 5-stage machine and decode the dynamic trace the
    //    run actually took: the hardware's view must match the code.
    let p = Program::single(f);
    let result = simulate(&p, &LowEndConfig::default(), &[]).expect("runs");
    println!(
        "simulated: {} cycles, result = {:?}",
        result.cycles, result.ret_value
    );
    let decoded = decode_trace(&p.funcs[0], &enc, &result.entry_trace)
        .expect("dynamic decode agrees on every operand");
    println!(
        "dynamic decode reconstructed {} register operands correctly",
        decoded.len()
    );
    println!("\n{}", p.funcs[0]);
}
