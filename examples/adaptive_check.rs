//! Quick comparison of the Section 8.2 adaptive mode against the paper's
//! five setups on one benchmark.
//!
//! Run with: `cargo run -p dra-core --example adaptive_check --release [name]`

use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sha".to_string());
    let setup = LowEndSetup::default();
    println!("{:<11} {:>7} {:>7} {:>10}", "approach", "spill%", "slr%", "cycles");
    let mut approaches = Approach::ALL.to_vec();
    approaches.push(Approach::Adaptive);
    for a in approaches {
        let r = compile_and_run(&name, a, &setup).unwrap();
        println!(
            "{:<11} {:>6.2}% {:>6.2}% {:>10}",
            a.label(),
            r.spill_percent(),
            r.cost_percent(),
            r.cycles
        );
    }
}
