//! Differential-encoding parameters and the modulo arithmetic of Section 2.

/// The `(RegN, DiffN)` pair governing a differential encoding.
///
/// * `reg_n` — number of architected registers addressable through the
///   scheme (the decoder's modulus).
/// * `diff_n` — number of distinct differences the operand field can hold;
///   `diff_w = ceil(log2(diff_n))` bits. When `diff_n == reg_n` the scheme
///   degenerates to direct encoding (every difference fits).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DiffParams {
    reg_n: u16,
    diff_n: u16,
}

impl DiffParams {
    /// Create parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < diff_n <= reg_n` — encoding more differences
    /// than registers is meaningless and `diff_n == 0` cannot encode
    /// anything at all.
    pub fn new(reg_n: u16, diff_n: u16) -> Self {
        assert!(diff_n > 0, "DiffN must be positive");
        assert!(
            diff_n <= reg_n,
            "DiffN ({diff_n}) must not exceed RegN ({reg_n})"
        );
        DiffParams { reg_n, diff_n }
    }

    /// Direct encoding of `reg_n` registers (`DiffN == RegN`).
    pub fn direct(reg_n: u16) -> Self {
        DiffParams::new(reg_n, reg_n)
    }

    /// The paper's low-end configuration: `RegN = 12`, `DiffN = 8`
    /// (3-bit fields, as in the Section 10.1 evaluation).
    pub fn lowend_12_8() -> Self {
        DiffParams::new(12, 8)
    }

    /// `RegN`.
    #[inline]
    pub fn reg_n(self) -> u16 {
        self.reg_n
    }

    /// `DiffN`.
    #[inline]
    pub fn diff_n(self) -> u16 {
        self.diff_n
    }

    /// `RegW = ceil(log2 RegN)` — bits a direct encoding would need.
    pub fn reg_w(self) -> u32 {
        ceil_log2(self.reg_n as u32)
    }

    /// `DiffW = ceil(log2 DiffN)` — bits the differential field needs.
    pub fn diff_w(self) -> u32 {
        ceil_log2(self.diff_n as u32)
    }

    /// True when the scheme is plain direct encoding.
    pub fn is_direct(self) -> bool {
        self.diff_n == self.reg_n
    }

    /// Equation (1): the encoded difference from register `prev` to `cur`.
    ///
    /// # Panics
    ///
    /// Panics if either register number is `>= RegN`.
    #[inline]
    pub fn encode(self, prev: u8, cur: u8) -> u16 {
        assert!((prev as u16) < self.reg_n, "register {prev} out of RegN");
        assert!((cur as u16) < self.reg_n, "register {cur} out of RegN");
        let d = cur as i32 - prev as i32;
        d.rem_euclid(self.reg_n as i32) as u16
    }

    /// Equation (2): decode a difference given the previous register.
    ///
    /// # Panics
    ///
    /// Panics if `prev >= RegN` or `diff >= RegN`.
    #[inline]
    pub fn decode(self, prev: u8, diff: u16) -> u8 {
        assert!((prev as u16) < self.reg_n, "register {prev} out of RegN");
        assert!(diff < self.reg_n, "difference {diff} out of RegN");
        ((prev as u16 + diff) % self.reg_n) as u8
    }

    /// Condition (3): is the `prev -> cur` transition encodable without a
    /// `set_last_reg` repair?
    #[inline]
    pub fn in_range(self, prev: u8, cur: u8) -> bool {
        self.encode(prev, cur) < self.diff_n
    }

    /// Encoding-space saving of the differential scheme over direct
    /// encoding, in bits per register field (`RegW - DiffW`).
    pub fn bits_saved_per_field(self) -> u32 {
        self.reg_w().saturating_sub(self.diff_w())
    }
}

fn ceil_log2(n: u32) -> u32 {
    assert!(n > 0);
    32 - (n - 1).leading_zeros().min(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section2_example() {
        // "access registers R1, R3, and R8 in that order, the encoded
        //  differences are then 2 (from R1 to R3) and 5 (from R3 to R8)."
        let p = DiffParams::new(16, 8);
        assert_eq!(p.encode(1, 3), 2);
        assert_eq!(p.encode(3, 8), 5);
    }

    #[test]
    fn figure1_wraparound() {
        // Figure 1: differences are clockwise hop counts on the circle.
        let p = DiffParams::new(8, 4);
        assert_eq!(p.encode(6, 1), 3, "wraps past 0");
        assert_eq!(p.decode(6, 3), 1);
        assert_eq!(p.encode(1, 1), 0, "same register is difference 0");
    }

    #[test]
    fn modulo_definition_examples() {
        // Definition 1's examples: 4 mod 3 = 1, -1 mod 3 = 2.
        let p = DiffParams::direct(3);
        assert_eq!(p.encode(0, 1), 1); // 4 mod 3 conceptually
        assert_eq!(p.encode(1, 0), 2); // -1 mod 3 = 2
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive() {
        for reg_n in [2u16, 3, 4, 8, 12, 16, 32, 64] {
            let p = DiffParams::direct(reg_n);
            for prev in 0..reg_n as u8 {
                for cur in 0..reg_n as u8 {
                    let d = p.encode(prev, cur);
                    assert!(d < reg_n);
                    assert_eq!(p.decode(prev, d), cur, "RegN={reg_n} {prev}->{cur}");
                }
            }
        }
    }

    #[test]
    fn widths() {
        let p = DiffParams::new(12, 8);
        assert_eq!(p.reg_w(), 4, "12 registers need 4 bits directly");
        assert_eq!(p.diff_w(), 3, "8 differences need 3 bits");
        assert_eq!(p.bits_saved_per_field(), 1);

        // Figure 2's example: 4 registers, 2 differences => 50% saving.
        let p = DiffParams::new(4, 2);
        assert_eq!(p.reg_w(), 2);
        assert_eq!(p.diff_w(), 1);
        assert_eq!(p.bits_saved_per_field(), 1);
    }

    #[test]
    fn direct_encoding_never_out_of_range() {
        let p = DiffParams::direct(8);
        assert!(p.is_direct());
        for a in 0..8 {
            for b in 0..8 {
                assert!(p.in_range(a, b));
            }
        }
    }

    #[test]
    fn in_range_matches_condition_3() {
        let p = DiffParams::lowend_12_8();
        assert!(!p.is_direct());
        for a in 0..12u8 {
            for b in 0..12u8 {
                let d = (b as i32 - a as i32).rem_euclid(12);
                assert_eq!(p.in_range(a, b), d < 8, "{a}->{b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed RegN")]
    fn diff_n_larger_than_reg_n_rejected() {
        let _ = DiffParams::new(8, 9);
    }

    #[test]
    #[should_panic(expected = "out of RegN")]
    fn encode_rejects_oversized_register() {
        DiffParams::new(8, 4).encode(8, 0);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(128), 7);
    }
}
