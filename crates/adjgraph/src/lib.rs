//! # dra-adjgraph — the paper's adjacency graph and differential cost model
//!
//! Section 4 of *Differential Register Allocation* (Zhuang & Pande, PLDI
//! 2005) models the interaction between register numbering and differential
//! encoding with an **adjacency graph** (Definition 2): a directed weighted
//! graph whose nodes are live ranges (during allocation) or registers
//! (post-allocation), with an edge `v_i -> v_j` of weight `w_ij` when `v_j`
//! immediately follows `v_i` in the register access sequence `w_ij` times.
//!
//! An edge is *satisfied* by an assignment of register numbers when
//! condition (3) holds:
//!
//! ```text
//! 0 <= (reg_no(v_j) - reg_no(v_i)) mod RegN < DiffN
//! ```
//!
//! The differential allocators minimize the summed weight of unsatisfied
//! edges — each unsatisfied adjacent access pair costs one `set_last_reg`.
//!
//! ```
//! use dra_adjgraph::{AdjacencyGraph, DiffParams};
//!
//! // Figure 1 of the paper: registers on a clock face.
//! let params = DiffParams::new(12, 8);
//! assert_eq!(params.encode(2, 4), 2);          // R2 -> R4: two hops
//! assert_eq!(params.encode(4, 2), 10);         // wraps the circle
//! assert_eq!(params.decode(2, 2), 4);
//! assert!(params.in_range(2, 4));              // 2 < DiffN
//! assert!(!params.in_range(4, 2));             // 10 >= DiffN: needs repair
//!
//! let mut g = AdjacencyGraph::new(3);
//! g.add_edge(0, 1, 2.0);
//! g.add_edge(1, 2, 1.0);
//! // Identity assignment satisfies both edges (differences of 1).
//! let cost = g.assignment_cost(|n| Some(n as u8), params);
//! assert_eq!(cost, 0.0);
//! ```

pub mod build;
pub mod graph;
pub mod params;

pub use build::{build_preg_adjacency, build_preg_adjacency_ordered, build_vreg_adjacency, AccessSequence};
pub use graph::{AdjacencyGraph, AdjacencyIndex};
pub use params::DiffParams;
