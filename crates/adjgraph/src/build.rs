//! Building adjacency graphs from IR functions.
//!
//! The access sequence follows the paper's nominal access order: blocks in
//! layout order, instructions in order, and within an instruction
//! `src1, src2, …, dst` (Section 2). Only registers of the class under
//! consideration appear (Section 9.1); `set_last_reg` pseudo-instructions
//! are skipped because they carry no register field of their own.
//!
//! Within a block, every adjacent access pair adds the block's frequency to
//! the corresponding edge. For pairs crossing a block boundary — from the
//! last access of a predecessor to the first access of a block — the added
//! weight is the block's frequency divided by its predecessor count, since
//! a single `set_last_reg` at the block entry repairs all incoming paths
//! (Section 4).

use crate::graph::AdjacencyGraph;
use dra_ir::liveness::reg_to_entity;
use dra_ir::{AccessOrder, BlockId, Function, Reg, RegClass};

/// The per-block register access structure of one function and class.
#[derive(Clone, Debug, Default)]
pub struct AccessSequence {
    /// For each block: the class-filtered accesses in nominal order.
    pub per_block: Vec<Vec<Reg>>,
}

impl AccessSequence {
    /// Extract the access sequence of `class` registers from `f` under the
    /// paper's default access order.
    pub fn of(f: &Function, class: RegClass) -> AccessSequence {
        Self::of_ordered(f, class, AccessOrder::SrcsThenDst)
    }

    /// Extract with an explicit [`AccessOrder`] (the Section 9.4 ablation).
    pub fn of_ordered(f: &Function, class: RegClass, order: AccessOrder) -> AccessSequence {
        let per_block = f
            .blocks
            .iter()
            .map(|b| {
                b.insts
                    .iter()
                    .filter(|i| !i.is_set_last_reg())
                    .flat_map(|i| i.accesses_in(order))
                    .filter(|r| reg_class_of(f, *r) == class)
                    .collect()
            })
            .collect();
        AccessSequence { per_block }
    }

    /// First access of a block, if any.
    pub fn first(&self, b: BlockId) -> Option<Reg> {
        self.per_block[b.index()].first().copied()
    }

    /// Last access of a block, if any.
    pub fn last(&self, b: BlockId) -> Option<Reg> {
        self.per_block[b.index()].last().copied()
    }

    /// The flat whole-function sequence in layout order (used by tests and
    /// by the encoder, which walks blocks the same way).
    pub fn flatten(&self) -> Vec<Reg> {
        self.per_block.iter().flatten().copied().collect()
    }

    /// Resolve the accesses reaching the entry of block `b` from its
    /// predecessors: for each predecessor, the last access on the path,
    /// looking through access-free blocks (bounded by visiting each block
    /// once).
    pub fn reaching_last_accesses(&self, f: &Function, b: BlockId) -> Vec<Reg> {
        let mut result = Vec::new();
        let mut visited = vec![false; f.num_blocks()];
        let mut stack: Vec<BlockId> = f.block(b).preds.clone();
        while let Some(p) = stack.pop() {
            if visited[p.index()] {
                continue;
            }
            visited[p.index()] = true;
            match self.last(p) {
                Some(r) => result.push(r),
                None => stack.extend(f.block(p).preds.iter().copied()),
            }
        }
        result
    }
}

/// The register class of an operand in the context of `f`.
///
/// Delegates to [`Function::class_of`], the single source of truth for the
/// bare-`PReg`-is-integer convention.
pub(crate) fn reg_class_of(f: &Function, r: Reg) -> RegClass {
    f.class_of(r)
}

/// Build the live-range-granularity adjacency graph used *during*
/// allocation (approaches 2 and 3). Nodes are liveness entities: virtual
/// registers `0..vreg_count`, then physical registers.
pub fn build_vreg_adjacency(f: &Function, class: RegClass) -> AdjacencyGraph {
    let ne = f.vreg_count as usize + dra_ir::liveness::MAX_PREGS;
    let mut g = AdjacencyGraph::new(ne);
    let seq = AccessSequence::of(f, class);
    add_edges(&mut g, f, &seq, |r| reg_to_entity(r, f.vreg_count) as u32);
    g
}

/// Build the register-granularity adjacency graph used by the *post-pass*
/// differential remapping (approach 1). Nodes are register numbers
/// `0..reg_n`; the function must be fully physical.
///
/// # Panics
///
/// Panics if the function still contains virtual registers of `class`, or
/// if a physical register number `>= reg_n` appears.
pub fn build_preg_adjacency(f: &Function, class: RegClass, reg_n: u16) -> AdjacencyGraph {
    build_preg_adjacency_ordered(f, class, reg_n, AccessOrder::SrcsThenDst)
}

/// [`build_preg_adjacency`] under an explicit access order.
///
/// # Panics
///
/// As [`build_preg_adjacency`].
pub fn build_preg_adjacency_ordered(
    f: &Function,
    class: RegClass,
    reg_n: u16,
    order: AccessOrder,
) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(reg_n as usize);
    let seq = AccessSequence::of_ordered(f, class, order);
    for r in seq.flatten() {
        let p = r.expect_phys();
        assert!(
            (p.number() as u16) < reg_n,
            "register {p} exceeds RegN = {reg_n}"
        );
    }
    add_edges(&mut g, f, &seq, |r| r.expect_phys().number() as u32);
    g
}

fn add_edges(
    g: &mut AdjacencyGraph,
    f: &Function,
    seq: &AccessSequence,
    node_of: impl Fn(Reg) -> u32,
) {
    for (b, blk) in f.iter_blocks() {
        let accesses = &seq.per_block[b.index()];
        // Intra-block adjacent pairs, weighted by block frequency.
        for pair in accesses.windows(2) {
            g.add_edge(node_of(pair[0]), node_of(pair[1]), blk.freq);
        }
        // Cross-boundary pairs into this block.
        if let Some(first) = accesses.first() {
            let reaching = seq.reaching_last_accesses(f, b);
            if !reaching.is_empty() {
                let w = blk.freq / reaching.len() as f64;
                for r in reaching {
                    g.add_edge(node_of(r), node_of(*first), w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BinOp, Cond, FunctionBuilder, PReg, VReg};

    #[test]
    fn access_sequence_follows_paper_order() {
        // Figure 2.b-style: dst comes last.
        let mut b = FunctionBuilder::new("f");
        let r0 = b.new_vreg();
        let r1 = b.new_vreg();
        let r2 = b.new_vreg();
        b.bin(BinOp::Add, r2, r0.into(), r1.into()); // accesses r0,r1,r2
        b.ret(Some(r2.into()));
        let f = b.finish();
        let seq = AccessSequence::of(&f, RegClass::Int);
        assert_eq!(
            seq.flatten(),
            vec![Reg::Virt(r0), Reg::Virt(r1), Reg::Virt(r2), Reg::Virt(r2)]
        );
    }

    #[test]
    fn other_class_filtered_out() {
        let mut b = FunctionBuilder::new("f");
        let i = b.new_vreg();
        let fl = b.new_vreg_of(RegClass::Float);
        b.mov_imm(i, 1);
        b.mov_imm(fl, 2);
        b.ret(Some(i.into()));
        let f = b.finish();
        let ints = AccessSequence::of(&f, RegClass::Int).flatten();
        assert_eq!(ints, vec![Reg::Virt(i), Reg::Virt(i)]);
        let floats = AccessSequence::of(&f, RegClass::Float).flatten();
        assert_eq!(floats, vec![Reg::Virt(fl)]);
    }

    #[test]
    fn figure5_adjacency_graph_shape() {
        // Reconstruct the paper's Figure 5.a code:
        //   L1 = …          (def L1)
        //   L2 = …          (def L2)
        //   L3 = L1 + L2    (uses L1,L2, def L3)
        //   L4 = L2 + L3    (uses L2,L3, def L4)
        //   L1 = L4 …       — approximated with the same access pattern
        // We verify the headline property: edge (L1,L2) has weight 2,
        // single-occurrence pairs have weight 1, and no self-loops exist.
        let mut b = FunctionBuilder::new("fig5");
        let l: Vec<VReg> = (0..6).map(|_| b.new_vreg()).collect();
        // mov chain producing accesses: L1,L2, L2,L3, L3,L4, L4,L1,
        // L1,L2, L2,L5, L5,L4, L4,L6
        let pairs = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 1),
            (1, 4),
            (4, 3),
            (3, 5),
        ];
        for &(s, d) in &pairs {
            b.mov(l[d], l[s].into());
        }
        b.ret(None);
        let f = b.finish();
        let g = build_vreg_adjacency(&f, RegClass::Int);
        let n = |v: VReg| reg_to_entity(v.into(), f.vreg_count) as u32;
        // The mov chain interleaves (dst, next-src) pairs too, but the
        // (L1 -> L2) def-use pairs appear twice:
        assert_eq!(g.weight(n(l[0]), n(l[1])), 2.0);
        assert_eq!(g.weight(n(l[4]), n(l[3])), 1.0);
        // No self-loop ever recorded.
        for (a, bb, _) in g.iter_edges() {
            assert_ne!(a, bb);
        }
    }

    #[test]
    fn cross_block_weight_divided_by_preds() {
        // Figure 3's shape: two predecessors funnel into a join block.
        let mut b = FunctionBuilder::new("f");
        let c = b.new_vreg();
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(c, 0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Cond::Eq, c.into(), c.into(), t, e);
        b.switch_to(t);
        b.mov_imm(x, 1); // last access in t: x
        b.br(j);
        b.switch_to(e);
        b.mov_imm(y, 2); // last access in e: y
        b.br(j);
        b.switch_to(j);
        b.mov_imm(c, 3); // first access in j: c
        b.ret(None);
        let f = b.finish();
        let g = build_vreg_adjacency(&f, RegClass::Int);
        let n = |v: VReg| reg_to_entity(v.into(), f.vreg_count) as u32;
        assert_eq!(g.weight(n(x), n(c)), 0.5, "join weight split across preds");
        assert_eq!(g.weight(n(y), n(c)), 0.5);
    }

    #[test]
    fn access_free_blocks_are_transparent() {
        // pred -> empty hop -> join: the edge should reach through the hop.
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        let hop = b.new_block();
        let j = b.new_block();
        b.br(hop);
        b.switch_to(hop);
        b.br(j); // no register accesses here
        b.switch_to(j);
        b.mov_imm(y, 2);
        b.ret(None);
        let f = b.finish();
        let g = build_vreg_adjacency(&f, RegClass::Int);
        let n = |v: VReg| reg_to_entity(v.into(), f.vreg_count) as u32;
        assert_eq!(g.weight(n(x), n(y)), 1.0);
    }

    #[test]
    fn preg_adjacency_counts_register_pairs() {
        let mut b = FunctionBuilder::new("f");
        b.push(dra_ir::Inst::Mov {
            dst: PReg(1).into(),
            src: PReg(0).into(),
        });
        b.push(dra_ir::Inst::Mov {
            dst: PReg(2).into(),
            src: PReg(1).into(),
        });
        b.ret(None);
        let f = b.finish();
        let g = build_preg_adjacency(&f, RegClass::Int, 8);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.weight(0, 1), 1.0);
        assert_eq!(g.weight(1, 1), 0.0);
        assert_eq!(g.weight(1, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds RegN")]
    fn preg_adjacency_rejects_oversized_register() {
        let mut b = FunctionBuilder::new("f");
        b.push(dra_ir::Inst::MovImm {
            dst: PReg(9).into(),
            imm: 0,
        });
        b.ret(None);
        let f = b.finish();
        let _ = build_preg_adjacency(&f, RegClass::Int, 8);
    }

    #[test]
    fn set_last_reg_not_part_of_sequence() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.push(dra_ir::Inst::SetLastReg {
            class: RegClass::Int,
            value: 3,
            delay: 0,
        });
        b.mov_imm(x, 2);
        b.ret(None);
        let f = b.finish();
        let seq = AccessSequence::of(&f, RegClass::Int);
        assert_eq!(seq.flatten().len(), 2);
    }

    #[test]
    fn frequencies_scale_edge_weights() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov(y, x.into());
        b.ret(None);
        let mut f = b.finish();
        f.blocks[0].freq = 100.0;
        let g = build_vreg_adjacency(&f, RegClass::Int);
        let n = |v: VReg| reg_to_entity(v.into(), f.vreg_count) as u32;
        assert_eq!(g.weight(n(x), n(y)), 100.0);
    }
}
