//! The adjacency graph data structure (Definition 2).

use crate::params::DiffParams;
use std::collections::BTreeMap;

/// A directed weighted adjacency graph over dense node ids `0..n`.
///
/// Self-loops are never stored: an access pair `(v, v)` always encodes as
/// difference 0 and costs nothing (Section 4: "we do not draw any
/// self-looped edge … because they are always covered").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdjacencyGraph {
    n: usize,
    /// `(from, to) -> weight`; BTreeMap for deterministic iteration.
    edges: BTreeMap<(u32, u32), f64>,
}

impl AdjacencyGraph {
    /// An empty graph over nodes `0..n`.
    pub fn new(n: usize) -> Self {
        AdjacencyGraph {
            n,
            edges: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of distinct directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add `w` to the weight of edge `from -> to`. Self-loops are dropped.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn add_edge(&mut self, from: u32, to: u32, w: f64) {
        assert!((from as usize) < self.n, "node {from} out of range");
        assert!((to as usize) < self.n, "node {to} out of range");
        if from == to {
            return;
        }
        *self.edges.entry((from, to)).or_insert(0.0) += w;
    }

    /// The weight of `from -> to` (0 if absent).
    pub fn weight(&self, from: u32, to: u32) -> f64 {
        self.edges.get(&(from, to)).copied().unwrap_or(0.0)
    }

    /// Iterate over `(from, to, weight)` in deterministic order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.edges.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// Total weight over all edges (an upper bound on differential cost).
    pub fn total_weight(&self) -> f64 {
        self.edges.values().sum()
    }

    /// Edges incident to `node` (either direction), as `(from, to, w)`,
    /// without allocating: the hot-path variant of [`Self::incident_edges`].
    pub fn incident_edges_iter(&self, node: u32) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.iter_edges().filter(move |&(a, b, _)| a == node || b == node)
    }

    /// Collect the edges incident to `node` into a caller-owned scratch
    /// buffer (cleared first), so repeated queries reuse one allocation.
    pub fn incident_edges_into(&self, node: u32, buf: &mut Vec<(u32, u32, f64)>) {
        buf.clear();
        buf.extend(self.incident_edges_iter(node));
    }

    /// Edges incident to `node` (either direction), as `(from, to, w)`.
    ///
    /// Allocates a fresh `Vec` per call; inner loops should prefer
    /// [`Self::incident_edges_iter`] or [`Self::incident_edges_into`].
    pub fn incident_edges(&self, node: u32) -> Vec<(u32, u32, f64)> {
        self.incident_edges_iter(node).collect()
    }

    /// The differential cost of a register-number assignment: the summed
    /// weight of edges violating condition (3). Nodes mapped to `None`
    /// (e.g. spilled live ranges) contribute nothing.
    pub fn assignment_cost(
        &self,
        assign: impl Fn(u32) -> Option<u8>,
        params: DiffParams,
    ) -> f64 {
        let mut cost = 0.0;
        for (&(a, b), &w) in &self.edges {
            if let (Some(ra), Some(rb)) = (assign(a), assign(b)) {
                if !params.in_range(ra, rb) {
                    cost += w;
                }
            }
        }
        cost
    }

    /// Cost contributed by edges incident to `node` only — used by
    /// differential select when scoring one candidate color.
    pub fn node_cost(
        &self,
        node: u32,
        assign: impl Fn(u32) -> Option<u8>,
        params: DiffParams,
    ) -> f64 {
        let mut cost = 0.0;
        for (a, b, w) in self.incident_edges_iter(node) {
            if let (Some(ra), Some(rb)) = (assign(a), assign(b)) {
                if !params.in_range(ra, rb) {
                    cost += w;
                }
            }
        }
        cost
    }

    /// Merge node `b` into node `a` (coalescing): every edge touching `b`
    /// is redirected to `a`; resulting self-loops vanish (difference 0).
    pub fn merge_nodes(&mut self, a: u32, b: u32) {
        assert!((a as usize) < self.n && (b as usize) < self.n);
        if a == b {
            return;
        }
        let old = std::mem::take(&mut self.edges);
        for ((x, y), w) in old {
            let nx = if x == b { a } else { x };
            let ny = if y == b { a } else { y };
            if nx == ny {
                continue;
            }
            *self.edges.entry((nx, ny)).or_insert(0.0) += w;
        }
    }

    /// Out-degree plus in-degree of `node` in distinct edges.
    pub fn degree(&self, node: u32) -> usize {
        self.incident_edges_iter(node).count()
    }

    /// Build a per-node incidence index for fast repeated [`AdjacencyIndex::node_cost`]
    /// queries (the inner loop of differential select and coalesce).
    ///
    /// The spine comes from a per-thread pool (see
    /// [`dra_ir::scratch::set_reuse`]); hand a finished index back with
    /// [`AdjacencyIndex::recycle`] so the next build on the same thread
    /// reuses its row capacities.
    pub fn index(&self) -> AdjacencyIndex {
        let mut per_node = index_pool::take(self.n);
        for (&(a, b), &w) in &self.edges {
            per_node[a as usize].push((a, b, w));
            per_node[b as usize].push((a, b, w));
        }
        AdjacencyIndex { per_node }
    }
}

/// Per-thread pool of incidence-index spines (`Vec<Vec<(from, to, w)>>`),
/// governed by the workspace-wide [`dra_ir::scratch::set_reuse`] switch.
mod index_pool {
    use std::cell::RefCell;

    type Spine = Vec<Vec<(u32, u32, f64)>>;

    thread_local! {
        static POOL: RefCell<Vec<Spine>> = const { RefCell::new(Vec::new()) };
    }

    const CAP: usize = 8;

    pub(super) fn take(n: usize) -> Spine {
        if !dra_ir::scratch::reuse_enabled() {
            return vec![Vec::new(); n];
        }
        POOL.with(|p| match p.borrow_mut().pop() {
            Some(mut s) => {
                s.truncate(n);
                for row in s.iter_mut() {
                    row.clear();
                }
                s.resize_with(n, Vec::new);
                s
            }
            None => vec![Vec::new(); n],
        })
    }

    pub(super) fn put(s: Spine) {
        if !dra_ir::scratch::reuse_enabled() {
            return;
        }
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < CAP {
                p.push(s);
            }
        });
    }
}

/// Incidence-indexed adjacency graph: `node_cost` in time proportional to
/// the node's degree rather than the whole edge set.
#[derive(Clone, Debug, Default)]
pub struct AdjacencyIndex {
    per_node: Vec<Vec<(u32, u32, f64)>>,
}

impl AdjacencyIndex {
    /// Cost of the edges incident to `node` under `assign` — identical to
    /// [`AdjacencyGraph::node_cost`], but O(degree).
    pub fn node_cost(
        &self,
        node: u32,
        assign: impl Fn(u32) -> Option<u8>,
        params: DiffParams,
    ) -> f64 {
        let mut cost = 0.0;
        for &(a, b, w) in &self.per_node[node as usize] {
            if let (Some(ra), Some(rb)) = (assign(a), assign(b)) {
                if !params.in_range(ra, rb) {
                    cost += w;
                }
            }
        }
        cost
    }

    /// Number of nodes in the index.
    pub fn num_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Return this index's storage to the per-thread pool so the next
    /// [`AdjacencyGraph::index`] on this thread reuses it. Dropping
    /// instead is always safe, just slower.
    pub fn recycle(self) {
        index_pool::put(self.per_node);
    }

    /// Exact cost change of swapping the register numbers assigned to
    /// nodes `x` and `y` under the register vector `rv` (node `i` holds
    /// number `rv[i]`), in time `O(deg(x) + deg(y))`.
    ///
    /// Only edges incident to `x` or `y` can change violation status under
    /// the swap; edges incident to **both** (the `x↔y` edges) appear in
    /// both incidence lists and are counted once, by skipping them during
    /// the `y` pass. Returns `cost(after) - cost(before)`, so a profitable
    /// swap has a negative delta.
    ///
    /// # Panics
    ///
    /// Panics if `rv` is shorter than the node count or `x`/`y` are out of
    /// range.
    pub fn swap_delta(&self, rv: &[u8], x: u32, y: u32, params: DiffParams) -> f64 {
        if x == y {
            return 0.0;
        }
        let before = |n: u32| rv[n as usize];
        let after = |n: u32| {
            if n == x {
                rv[y as usize]
            } else if n == y {
                rv[x as usize]
            } else {
                rv[n as usize]
            }
        };
        let mut delta = 0.0;
        for &(a, b, w) in &self.per_node[x as usize] {
            let was = !params.in_range(before(a), before(b));
            let is = !params.in_range(after(a), after(b));
            delta += (is as i8 - was as i8) as f64 * w;
        }
        for &(a, b, w) in &self.per_node[y as usize] {
            if a == x || b == x {
                continue; // already counted in the x pass
            }
            let was = !params.in_range(before(a), before(b));
            let is = !params.in_range(after(a), after(b));
            delta += (is as i8 - was as i8) as f64 * w;
        }
        delta
    }

    /// Total weight of edges incident to `node`.
    pub fn incident_weight(&self, node: u32) -> f64 {
        self.per_node[node as usize].iter().map(|&(_, _, w)| w).sum()
    }

    /// The edges incident to `node` as an owned-by-the-index slice — the
    /// allocation-free counterpart of [`AdjacencyGraph::incident_edges`].
    /// Edges between two nodes appear in both endpoints' slices.
    pub fn incident(&self, node: u32) -> &[(u32, u32, f64)] {
        &self.per_node[node as usize]
    }

    /// Exact cost change of rotating register numbers along `cycle`: node
    /// `cycle[i]` takes the number previously held by `cycle[(i+1) % k]`
    /// (a left rotation of the value sequence). A 2-cycle is exactly
    /// [`Self::swap_delta`]. Runs in `O(sum of deg(cycle[i]) * k)` with no
    /// allocation; `k` is expected to be small (3..=8).
    ///
    /// Each edge with multiple in-cycle endpoints appears in several
    /// incidence lists; it is charged only at the smallest in-cycle
    /// position among its endpoints, so every edge counts exactly once.
    /// Returns `cost(after) - cost(before)`; profitable rotations are
    /// negative.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` has repeated nodes (debug builds), or if any node
    /// is out of range of `rv`.
    pub fn cycle_delta(&self, rv: &[u8], cycle: &[u32], params: DiffParams) -> f64 {
        let k = cycle.len();
        if k < 2 {
            return 0.0;
        }
        debug_assert!(
            (0..k).all(|i| (i + 1..k).all(|j| cycle[i] != cycle[j])),
            "cycle must not repeat nodes: {cycle:?}"
        );
        // Position of `n` in the cycle, if any; linear scan — k is small.
        let pos = |n: u32| cycle.iter().position(|&c| c == n);
        let after = |n: u32| match pos(n) {
            Some(p) => rv[cycle[(p + 1) % k] as usize],
            None => rv[n as usize],
        };
        let mut delta = 0.0;
        for (i, &node) in cycle.iter().enumerate() {
            for &(a, b, w) in &self.per_node[node as usize] {
                let other = if a == node { b } else { a };
                // Charge the edge at its smallest in-cycle endpoint
                // position; `other`'s position only matters when smaller.
                if matches!(pos(other), Some(p) if p < i) {
                    continue;
                }
                let was = !params.in_range(rv[a as usize], rv[b as usize]);
                let is = !params.in_range(after(a), after(b));
                delta += (is as i8 - was as i8) as f64 * w;
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loops_dropped() {
        let mut g = AdjacencyGraph::new(3);
        g.add_edge(1, 1, 5.0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.weight(1, 1), 0.0);
    }

    #[test]
    fn weights_accumulate() {
        let mut g = AdjacencyGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 1.0);
        assert_eq!(g.weight(0, 1), 2.0);
        assert_eq!(g.weight(1, 0), 0.0, "directed");
        assert_eq!(g.total_weight(), 2.0);
    }

    #[test]
    fn figure5_example_zero_cost_solution() {
        // Figure 5.d: edges (L1,L2)x2, (L2,L3), (L3,L4), (L4,L1), (L2,L5),
        // (L5,L4), (L4,L6); RegN=3, DiffN=2; Figure 5.e's solution has 0
        // cost: L1=0 L2=1 L3=2 L4=0 L5=2 L6=1.
        let mut g = AdjacencyGraph::new(6);
        g.add_edge(0, 1, 2.0); // L1 -> L2 twice
        g.add_edge(1, 2, 1.0); // L2 -> L3
        g.add_edge(2, 3, 1.0); // L3 -> L4
        g.add_edge(3, 0, 1.0); // L4 -> L1
        g.add_edge(1, 4, 1.0); // L2 -> L5
        g.add_edge(4, 3, 1.0); // L5 -> L4
        g.add_edge(3, 5, 1.0); // L4 -> L6
        let params = DiffParams::new(3, 2);
        let solution = [0u8, 1, 2, 0, 2, 1];
        let cost = g.assignment_cost(|n| Some(solution[n as usize]), params);
        assert_eq!(cost, 0.0, "paper's Figure 5.e solution is cost-free");
    }

    #[test]
    fn violating_assignment_counts_weight() {
        let mut g = AdjacencyGraph::new(2);
        g.add_edge(0, 1, 3.0);
        let params = DiffParams::new(4, 2);
        // 0 -> 1 with regs 0 -> 2: difference 2 >= DiffN.
        let cost = g.assignment_cost(|n| Some(if n == 0 { 0 } else { 2 }), params);
        assert_eq!(cost, 3.0);
    }

    #[test]
    fn unassigned_nodes_cost_nothing() {
        let mut g = AdjacencyGraph::new(2);
        g.add_edge(0, 1, 3.0);
        let params = DiffParams::new(4, 2);
        let cost = g.assignment_cost(|n| if n == 0 { Some(0) } else { None }, params);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn node_cost_scopes_to_incident_edges() {
        let mut g = AdjacencyGraph::new(3);
        g.add_edge(0, 1, 1.0); // violating below
        g.add_edge(1, 2, 1.0); // violating below
        let params = DiffParams::new(8, 2);
        let assign = |n: u32| Some(match n {
            0 => 0u8,
            1 => 4,
            _ => 1,
        });
        // Edge 0->1: diff 4 (violates); edge 1->2: diff 5 (violates).
        assert_eq!(g.node_cost(0, assign, params), 1.0);
        assert_eq!(g.node_cost(1, assign, params), 2.0);
        assert_eq!(g.assignment_cost(assign, params), 2.0);
    }

    #[test]
    fn merge_redirects_and_drops_self_loops() {
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 1, 4.0);
        g.merge_nodes(2, 1); // 1 absorbed into 2
        assert_eq!(g.weight(0, 2), 1.0);
        assert_eq!(g.weight(2, 2), 0.0, "self-loop dropped");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn degree_counts_both_directions() {
        let mut g = AdjacencyGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 0, 1.0);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.incident_edges(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_bounds() {
        AdjacencyGraph::new(2).add_edge(0, 2, 1.0);
    }

    #[test]
    fn index_node_cost_matches_graph_node_cost() {
        let mut g = AdjacencyGraph::new(5);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 1, 4.0);
        g.add_edge(2, 4, 1.5);
        let idx = g.index();
        let params = DiffParams::new(8, 3);
        let assign = |n: u32| Some((n as u8 * 3) % 8);
        for node in 0..5 {
            assert_eq!(
                g.node_cost(node, assign, params),
                idx.node_cost(node, assign, params),
                "node {node}"
            );
        }
        assert_eq!(idx.num_nodes(), 5);
    }

    #[test]
    fn incident_weight_sums_both_directions() {
        let mut g = AdjacencyGraph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(2, 0, 3.0);
        let idx = g.index();
        assert_eq!(idx.incident_weight(0), 5.0);
        assert_eq!(idx.incident_weight(1), 2.0);
        assert_eq!(idx.incident_weight(2), 3.0);
    }

    #[test]
    fn swap_delta_matches_full_recost() {
        // Dense-ish graph including x<->y edges in both directions, so the
        // double-count path is exercised.
        let mut g = AdjacencyGraph::new(6);
        let edges = [
            (0u32, 1u32, 2.0),
            (1, 0, 1.0),
            (1, 2, 1.5),
            (2, 3, 4.0),
            (3, 1, 0.5),
            (4, 5, 2.5),
            (0, 5, 3.0),
            (2, 0, 1.0),
        ];
        for (a, b, w) in edges {
            g.add_edge(a, b, w);
        }
        let idx = g.index();
        let params = DiffParams::new(8, 3);
        let rv: Vec<u8> = vec![5, 0, 7, 2, 4, 1];
        for x in 0..6u32 {
            for y in 0..6u32 {
                let mut swapped = rv.clone();
                swapped.swap(x as usize, y as usize);
                let full_before = g.assignment_cost(|n| Some(rv[n as usize]), params);
                let full_after = g.assignment_cost(|n| Some(swapped[n as usize]), params);
                let delta = idx.swap_delta(&rv, x, y, params);
                assert!(
                    (delta - (full_after - full_before)).abs() < 1e-12,
                    "swap ({x},{y}): delta {delta} vs full {}",
                    full_after - full_before
                );
            }
        }
    }

    #[test]
    fn swap_delta_self_swap_is_zero() {
        let mut g = AdjacencyGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        let idx = g.index();
        let params = DiffParams::new(4, 1);
        let rv = [0u8, 3, 1];
        for n in 0..3 {
            assert_eq!(idx.swap_delta(&rv, n, n, params), 0.0);
        }
    }

    #[test]
    fn swap_delta_counts_mutual_edge_once() {
        // Only edges between x and y: the naive two-pass sum would double
        // the delta; the skip in the y pass must prevent that.
        let mut g = AdjacencyGraph::new(2);
        g.add_edge(0, 1, 3.0);
        g.add_edge(1, 0, 2.0);
        let idx = g.index();
        let params = DiffParams::new(8, 2);
        // rv = [0, 6]: both edges violate (diffs 6 and 2 mod-wrap out of
        // range). Swapping changes nothing for a 2-node graph (the pair of
        // numbers is the same set), so delta must be the exact full-recost
        // difference, not twice it.
        let rv = [0u8, 6];
        let before = g.assignment_cost(|n| Some(rv[n as usize]), params);
        let after = g.assignment_cost(|n| Some(rv[1 - n as usize]), params);
        assert_eq!(idx.swap_delta(&rv, 0, 1, params), after - before);
    }

    #[test]
    fn incident_edges_into_reuses_buffer() {
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 0, 3.0);
        g.add_edge(2, 3, 5.0);
        let mut buf = Vec::new();
        g.incident_edges_into(0, &mut buf);
        assert_eq!(buf, g.incident_edges(0));
        g.incident_edges_into(3, &mut buf);
        assert_eq!(buf, vec![(2, 3, 5.0)], "buffer cleared between queries");
    }

    fn dense_test_graph() -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new(6);
        let edges = [
            (0u32, 1u32, 2.0),
            (1, 0, 1.0),
            (1, 2, 1.5),
            (2, 3, 4.0),
            (3, 1, 0.5),
            (4, 5, 2.5),
            (0, 5, 3.0),
            (2, 0, 1.0),
            (3, 5, 1.25),
        ];
        for (a, b, w) in edges {
            g.add_edge(a, b, w);
        }
        g
    }

    #[test]
    fn cycle_delta_matches_full_recost() {
        let g = dense_test_graph();
        let idx = g.index();
        let params = DiffParams::new(8, 3);
        let rv: Vec<u8> = vec![5, 0, 7, 2, 4, 1];
        let cycles: &[&[u32]] = &[
            &[0, 1, 2],
            &[2, 1, 0],
            &[1, 3, 5],
            &[0, 2, 4, 5],
            &[5, 4, 3, 2, 1],
            &[0, 1, 2, 3, 4, 5],
        ];
        for cycle in cycles {
            let mut rotated = rv.clone();
            let k = cycle.len();
            for (i, &n) in cycle.iter().enumerate() {
                rotated[n as usize] = rv[cycle[(i + 1) % k] as usize];
            }
            let before = g.assignment_cost(|n| Some(rv[n as usize]), params);
            let after = g.assignment_cost(|n| Some(rotated[n as usize]), params);
            let delta = idx.cycle_delta(&rv, cycle, params);
            assert!(
                (delta - (after - before)).abs() < 1e-12,
                "cycle {cycle:?}: delta {delta} vs full {}",
                after - before
            );
        }
    }

    #[test]
    fn cycle_delta_two_cycle_equals_swap_delta() {
        let g = dense_test_graph();
        let idx = g.index();
        let params = DiffParams::new(8, 2);
        let rv: Vec<u8> = vec![3, 6, 0, 1, 7, 4];
        for x in 0..6u32 {
            for y in 0..6u32 {
                if x == y {
                    continue;
                }
                let swap = idx.swap_delta(&rv, x, y, params);
                let cyc = idx.cycle_delta(&rv, &[x, y], params);
                assert!((swap - cyc).abs() < 1e-12, "({x},{y}): {swap} vs {cyc}");
            }
        }
    }

    #[test]
    fn cycle_delta_trivial_cycles_are_zero() {
        let g = dense_test_graph();
        let idx = g.index();
        let params = DiffParams::new(8, 3);
        let rv: Vec<u8> = vec![5, 0, 7, 2, 4, 1];
        assert_eq!(idx.cycle_delta(&rv, &[], params), 0.0);
        assert_eq!(idx.cycle_delta(&rv, &[3], params), 0.0);
    }

    #[test]
    fn sum_of_node_costs_double_counts_assignment_cost() {
        // Every violating edge is incident to exactly two nodes, so the
        // node-cost sum equals twice the assignment cost.
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 4.0);
        let params = DiffParams::new(8, 2);
        let assign = |n: u32| Some([0u8, 5, 1, 7][n as usize]);
        let total = g.assignment_cost(assign, params);
        let sum: f64 = (0..4).map(|n| g.node_cost(n, assign, params)).sum();
        assert_eq!(sum, 2.0 * total);
    }
}
