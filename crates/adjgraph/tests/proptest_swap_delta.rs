//! Property tests for the incremental scorers `AdjacencyIndex::swap_delta`
//! and `AdjacencyIndex::cycle_delta`: on random graphs and register
//! vectors, the incremental delta must agree exactly with the difference
//! of two full `assignment_cost` evaluations.

use dra_adjgraph::{AdjacencyGraph, DiffParams};
use proptest::prelude::*;

const N: u32 = 12;

fn build(edges: &[(u32, u32, u32)]) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(N as usize);
    for &(a, b, w) in edges {
        g.add_edge(a, b, w as f64);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 64 } else { 256 }
    ))]

    /// `swap_delta` equals the full-recost difference for every node pair,
    /// across random graphs, register vectors, and differential windows.
    #[test]
    fn swap_delta_matches_full_recost(
        edges in proptest::collection::vec(
            (0u32..N, 0u32..N, 1u32..100), 1..48
        ),
        rv in proptest::collection::vec(0u8..N as u8, N as usize),
        x in 0u32..N,
        y in 0u32..N,
        diff_n in 1u16..=N as u16,
    ) {
        let g = build(&edges);
        let idx = g.index();
        let params = DiffParams::new(N as u16, diff_n);

        let before = g.assignment_cost(|n| Some(rv[n as usize]), params);
        let mut swapped = rv.clone();
        swapped.swap(x as usize, y as usize);
        let after = g.assignment_cost(|n| Some(swapped[n as usize]), params);

        let delta = idx.swap_delta(&rv, x, y, params);
        prop_assert!(
            (delta - (after - before)).abs() < 1e-9,
            "swap ({x},{y}): delta {delta}, full {}", after - before
        );
    }

    /// A swap followed by the inverse swap must cancel exactly — the two
    /// deltas are evaluated on different vectors, so this checks that the
    /// swapped-lookup view matches the genuinely swapped vector.
    #[test]
    fn swap_then_unswap_cancels(
        edges in proptest::collection::vec(
            (0u32..N, 0u32..N, 1u32..100), 1..48
        ),
        rv in proptest::collection::vec(0u8..N as u8, N as usize),
        x in 0u32..N,
        y in 0u32..N,
    ) {
        let g = build(&edges);
        let idx = g.index();
        let params = DiffParams::new(N as u16, 4);

        let forward = idx.swap_delta(&rv, x, y, params);
        let mut swapped = rv.clone();
        swapped.swap(x as usize, y as usize);
        let back = idx.swap_delta(&swapped, x, y, params);
        prop_assert!(
            (forward + back).abs() < 1e-9,
            "forward {forward} + back {back} != 0"
        );
    }

    /// `cycle_delta` equals the full-recost difference of applying the
    /// rotation, for random cycles of length 2..=N over random graphs,
    /// register vectors, and differential windows. Length-2 cycles double
    /// as a `swap_delta` cross-check.
    #[test]
    fn cycle_delta_matches_full_recost(
        edges in proptest::collection::vec(
            (0u32..N, 0u32..N, 1u32..100), 1..48
        ),
        rv in proptest::collection::vec(0u8..N as u8, N as usize),
        // A permutation seed: sort indices by key to pick distinct nodes.
        keys in proptest::collection::vec(any::<u32>(), N as usize),
        k in 2usize..=N as usize,
        diff_n in 1u16..=N as u16,
    ) {
        let g = build(&edges);
        let idx = g.index();
        let params = DiffParams::new(N as u16, diff_n);

        // First k nodes of a key-sorted index permutation: a uniform-ish
        // random simple cycle without needing a shuffle primitive.
        let mut order: Vec<u32> = (0..N).collect();
        order.sort_by_key(|&i| (keys[i as usize], i));
        let cycle = &order[..k];

        let mut rotated = rv.clone();
        for (i, &n) in cycle.iter().enumerate() {
            rotated[n as usize] = rv[cycle[(i + 1) % k] as usize];
        }
        let before = g.assignment_cost(|n| Some(rv[n as usize]), params);
        let after = g.assignment_cost(|n| Some(rotated[n as usize]), params);

        let delta = idx.cycle_delta(&rv, cycle, params);
        prop_assert!(
            (delta - (after - before)).abs() < 1e-9,
            "cycle {cycle:?}: delta {delta}, full {}", after - before
        );
    }
}
