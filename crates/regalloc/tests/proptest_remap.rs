//! Property tests for the remapping search's determinism contract: for a
//! fixed seed, the parallel multistart must produce exactly the same
//! remapped function and cost at any thread count, because every start's
//! RNG stream is a pure function of `(seed, start index)` and ties break
//! toward the lowest start index.

use dra_adjgraph::{build_preg_adjacency, DiffParams};
use dra_ir::{Function, FunctionBuilder, Inst, PReg, RegClass};
use dra_regalloc::{remap_function, RemapConfig, RemapStrategy};
use proptest::prelude::*;

const REG_N: u8 = 12;

fn build_function(pairs: &[(u8, u8)]) -> Function {
    let mut b = FunctionBuilder::new("f");
    for &(src, dst) in pairs {
        b.push(Inst::Mov {
            dst: PReg(dst % REG_N).into(),
            src: PReg(src % REG_N).into(),
        });
    }
    b.ret(None);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 8 } else { 24 }
    ))]

    /// Threads 1, 2, and 8 produce identical (function, cost, counters)
    /// results for every portfolio strategy — including the randomized
    /// simulated-annealing and LNS searchers, whose RNG streams are pure
    /// functions of `(seed, strategy, start)`.
    #[test]
    fn parallel_multistart_matches_sequential(
        pairs in proptest::collection::vec((0u8..REG_N, 0u8..REG_N), 1..64),
        seed in any::<u64>(),
        strategy in prop_oneof![
            Just(RemapStrategy::Greedy),
            Just(RemapStrategy::Anneal),
            Just(RemapStrategy::Lns),
            Just(RemapStrategy::Portfolio),
        ],
    ) {
        let run = |threads: usize| {
            let mut f = build_function(&pairs);
            let mut cfg = RemapConfig::new(DiffParams::new(REG_N as u16, 6));
            cfg.exhaustive_limit = 0; // force the restart portfolio
            cfg.starts = 48;
            cfg.seed = seed;
            cfg.threads = threads;
            cfg.strategy = strategy;
            let stats = remap_function(&mut f, &cfg);
            (
                format!("{f}"),
                stats.cost_after.to_bits(),
                stats.evaluations,
                stats.starts_run,
                stats.cycle_moves,
            )
        };
        let sequential = run(1);
        prop_assert_eq!(&run(2), &sequential, "2 threads diverged");
        prop_assert_eq!(&run(8), &sequential, "8 threads diverged");
    }

    /// The search never makes the assignment worse than the identity, and
    /// repeated runs with the same seed agree (full determinism).
    #[test]
    fn search_is_monotone_and_repeatable(
        pairs in proptest::collection::vec((0u8..REG_N, 0u8..REG_N), 1..64),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut f = build_function(&pairs);
            let mut cfg = RemapConfig::new(DiffParams::new(REG_N as u16, 6));
            cfg.exhaustive_limit = 0;
            cfg.starts = 16;
            cfg.seed = seed;
            let stats = remap_function(&mut f, &cfg);
            (format!("{f}"), stats)
        };
        let (text, stats) = run();
        prop_assert!(stats.cost_after <= stats.cost_before);
        let (text2, stats2) = run();
        prop_assert_eq!(text, text2);
        prop_assert_eq!(stats.cost_after.to_bits(), stats2.cost_after.to_bits());
    }

    /// Branch-and-bound certifies the true optimum on brute-forceable
    /// instances: its cost equals the minimum over all `RegN!` register
    /// vectors, for `RegN <= 6`.
    #[test]
    fn branch_and_bound_is_optimal_on_small_instances(
        pairs in proptest::collection::vec((0u8..6, 0u8..6), 1..32),
        reg_n in 4u16..=6,
        diff_n in 1u16..=3,
    ) {
        let small: Vec<(u8, u8)> = pairs
            .iter()
            .map(|&(a, b)| (a % reg_n as u8, b % reg_n as u8))
            .collect();
        let mut f = build_function(&small);
        let params = DiffParams::new(reg_n, diff_n);
        let g = build_preg_adjacency(&f, RegClass::Int, reg_n);

        // Brute force: minimum assignment cost over every permutation.
        let mut perm: Vec<u8> = (0..reg_n as u8).collect();
        let mut optimum = f64::INFINITY;
        permute(&mut perm, 0, &mut |rv| {
            let c = g.assignment_cost(|n| Some(rv[n as usize]), params);
            if c < optimum {
                optimum = c;
            }
        });

        let mut cfg = RemapConfig::new(params);
        cfg.strategy = RemapStrategy::BranchBound;
        let stats = remap_function(&mut f, &cfg);
        prop_assert!(stats.certified, "bb within the default budget must certify");
        prop_assert!(
            (stats.cost_after - optimum).abs() < 1e-9,
            "bb cost {} vs brute-force optimum {optimum}", stats.cost_after
        );
    }
}

/// Recursively visit every permutation of `v[at..]` (Heap-style swaps).
fn permute(v: &mut Vec<u8>, at: usize, visit: &mut impl FnMut(&[u8])) {
    if at == v.len() {
        visit(v);
        return;
    }
    for i in at..v.len() {
        v.swap(at, i);
        permute(v, at + 1, visit);
        v.swap(at, i);
    }
}
