//! Property tests for the remapping search's determinism contract: for a
//! fixed seed, the parallel multistart must produce exactly the same
//! remapped function and cost at any thread count, because every start's
//! RNG stream is a pure function of `(seed, start index)` and ties break
//! toward the lowest start index.

use dra_adjgraph::DiffParams;
use dra_ir::{Function, FunctionBuilder, Inst, PReg};
use dra_regalloc::{remap_function, RemapConfig};
use proptest::prelude::*;

const REG_N: u8 = 12;

fn build_function(pairs: &[(u8, u8)]) -> Function {
    let mut b = FunctionBuilder::new("f");
    for &(src, dst) in pairs {
        b.push(Inst::Mov {
            dst: PReg(dst % REG_N).into(),
            src: PReg(src % REG_N).into(),
        });
    }
    b.ret(None);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 8 } else { 24 }
    ))]

    /// Threads 1, 2, and 8 produce identical (function, cost) results.
    #[test]
    fn parallel_multistart_matches_sequential(
        pairs in proptest::collection::vec((0u8..REG_N, 0u8..REG_N), 1..64),
        seed in any::<u64>(),
    ) {
        let run = |threads: usize| {
            let mut f = build_function(&pairs);
            let mut cfg = RemapConfig::new(DiffParams::new(REG_N as u16, 6));
            cfg.exhaustive_limit = 0; // force the greedy multistart
            cfg.starts = 48;
            cfg.seed = seed;
            cfg.threads = threads;
            let stats = remap_function(&mut f, &cfg);
            (format!("{f}"), stats.cost_after.to_bits())
        };
        let sequential = run(1);
        prop_assert_eq!(&run(2), &sequential, "2 threads diverged");
        prop_assert_eq!(&run(8), &sequential, "8 threads diverged");
    }

    /// The search never makes the assignment worse than the identity, and
    /// repeated runs with the same seed agree (full determinism).
    #[test]
    fn search_is_monotone_and_repeatable(
        pairs in proptest::collection::vec((0u8..REG_N, 0u8..REG_N), 1..64),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut f = build_function(&pairs);
            let mut cfg = RemapConfig::new(DiffParams::new(REG_N as u16, 6));
            cfg.exhaustive_limit = 0;
            cfg.starts = 16;
            cfg.seed = seed;
            let stats = remap_function(&mut f, &cfg);
            (format!("{f}"), stats)
        };
        let (text, stats) = run();
        prop_assert!(stats.cost_after <= stats.cost_before);
        let (text2, stats2) = run();
        prop_assert_eq!(text, text2);
        prop_assert_eq!(stats.cost_after.to_bits(), stats2.cost_after.to_bits());
    }
}
