//! Optimal-spilling register allocation (after Appel & George, PLDI 2001).
//!
//! The original formulates spilling as an ILP solved by CPLEX: choose the
//! cheapest set of live ranges to keep in memory such that at every program
//! point at most `RegN` values are in registers; coloring is then handled
//! separately (with aggressive coalescing to remove the splitting moves).
//!
//! This reproduction substitutes the ILP with a **pressure-driven global
//! spill minimizer** (see DESIGN.md §4): while any program point is over
//! pressure, it scores every live range that covers a maximal-pressure
//! point by `spill_cost / covered_overloaded_points` and evicts the best,
//! which is the greedy approximation to the same covering problem the ILP
//! solves. The result has the property the downstream stages rely on:
//! register pressure ≤ `RegN` everywhere, at minimum (approximately)
//! spill-weight cost.
//!
//! Phase two colors the result with iterated register coalescing; because
//! pressure is already below `RegN`, extra spills are rare.

use crate::irc::{irc_allocate_recorded, AllocConfig, AllocError, SelectStrategy, SpillMetric};
use crate::spill::rewrite_spills;
use dra_adjgraph::DiffParams;
use dra_ir::{Function, Liveness, PReg, Program, RegClass, VReg};
use std::collections::HashMap;

/// Configuration of the optimal-spill allocator.
#[derive(Clone, Debug)]
pub struct OspillConfig {
    /// Register count (the paper's `RegN`).
    pub k: u16,
    /// Differential parameters forwarded to the coloring phase.
    pub params: DiffParams,
    /// Select strategy of the coloring phase (differential coalesce uses
    /// its own machinery; plain O-spill uses `Lowest`).
    pub strategy: SelectStrategy,
    /// Physical registers clobbered by calls.
    pub call_clobbers: Vec<PReg>,
    /// Register class being allocated.
    pub class: RegClass,
    /// Safety cap on spill iterations.
    pub max_rounds: u32,
}

impl OspillConfig {
    /// Plain optimal-spill with `k` registers and direct encoding.
    pub fn new(k: u16) -> Self {
        OspillConfig {
            k,
            params: DiffParams::direct(k),
            strategy: SelectStrategy::Lowest,
            call_clobbers: Vec::new(),
            class: RegClass::Int,
            max_rounds: 512,
        }
    }
}

/// Statistics of an optimal-spill allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OspillStats {
    /// Live ranges spilled by the pressure phase.
    pub pressure_spills: usize,
    /// Additional spills the coloring phase was forced into (normally 0).
    pub coloring_spills: usize,
    /// Moves removed by coalescing.
    pub moves_coalesced: usize,
}

/// Reduce register pressure of `f` below `limit` by spilling the cheapest
/// covering live ranges. Returns the spilled vregs (in spill order).
///
/// This is the reusable phase-1 of the allocator; differential coalesce
/// calls it directly before running its own coalescing loop.
pub fn reduce_pressure(
    f: &mut Function,
    class: RegClass,
    limit: usize,
    max_rounds: u32,
) -> Vec<VReg> {
    // Spill temporaries created below must never be re-spilled: their
    // live ranges are already minimal, so choosing one makes no progress.
    let temp_watermark = f.vreg_count;
    let mut spilled = Vec::new();
    for _ in 0..max_rounds {
        let liveness = Liveness::compute(f);
        // Scan all program points: record each vreg's live extent and the
        // set of points whose pressure exceeds the limit.
        let vc = f.vreg_count as usize;
        let mut over_cover: HashMap<u32, u32> = HashMap::new(); // vreg -> overloaded points covered
        let mut max_pressure = 0usize;
        let mut lv: Vec<u32> = Vec::new();

        for (b, _) in f.iter_blocks() {
            liveness.for_each_inst_reverse(f, b, |_, live| {
                lv.clear();
                lv.extend(
                    live.iter()
                        .filter(|&e| e < vc && f.vreg_classes[e] == class)
                        .map(|e| e as u32),
                );
                max_pressure = max_pressure.max(lv.len());
                if lv.len() > limit {
                    for &v in &lv {
                        *over_cover.entry(v).or_insert(0) += 1;
                    }
                }
            });
        }
        liveness.recycle();

        if max_pressure <= limit {
            break;
        }

        // Spill metric: frequency-weighted references per covered
        // overloaded point — low is good (cheap, wide coverage). Only
        // original values are candidates; when every overloaded value is
        // a temp, the remaining pressure is irreducible by spilling and
        // is left to the coloring phase (which has the full color count).
        let ig_weights = use_def_weights(f, class);
        let Some((&best, _)) = over_cover
            .iter()
            .filter(|(&v, _)| v < temp_watermark)
            .min_by(|(&a, &ca), (&b, &cb)| {
                let ma = ig_weights[a as usize] / ca as f64;
                let mb = ig_weights[b as usize] / cb as f64;
                ma.partial_cmp(&mb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
        else {
            break;
        };
        let v = VReg(best);
        rewrite_spills(f, &[v]);
        spilled.push(v);
    }
    spilled
}

fn use_def_weights(f: &Function, class: RegClass) -> Vec<f64> {
    let mut w = vec![0.0; f.vreg_count as usize];
    for (_, blk) in f.iter_blocks() {
        for i in &blk.insts {
            for r in i.accesses() {
                if let Some(v) = r.as_virt() {
                    if f.vreg_class(v) == class {
                        w[v.index()] += blk.freq;
                    }
                }
            }
        }
    }
    w
}

/// Allocate `f` with the optimal-spill pipeline: pressure reduction, then
/// coalescing graph coloring.
///
/// # Errors
///
/// Propagates [`AllocError`] from the coloring phase.
pub fn ospill_allocate(f: &mut Function, cfg: &OspillConfig) -> Result<OspillStats, AllocError> {
    ospill_allocate_recorded(f, cfg, false).map(|(stats, _)| stats)
}

/// [`ospill_allocate`] with optional
/// [`AllocationRecord`](crate::allocator::AllocationRecord) capture for
/// the symbolic checker (the record comes from the final IRC round).
///
/// # Errors
///
/// Same as [`ospill_allocate`].
pub fn ospill_allocate_recorded(
    f: &mut Function,
    cfg: &OspillConfig,
    record: bool,
) -> Result<(OspillStats, Option<crate::allocator::AllocationRecord>), AllocError> {
    // Spill decisions with the *global* coverage metric: candidates are
    // scored by how many over-pressure points their eviction relieves per
    // unit of spill cost — the greedy counterpart of Appel & George's
    // ILP, which chooses the cheapest set of ranges whose eviction takes
    // every program point below RegN. Coloring proceeds as usual.
    let irc_cfg = AllocConfig {
        k: cfg.k,
        params: cfg.params,
        strategy: cfg.strategy,
        call_clobbers: cfg.call_clobbers.clone(),
        class: cfg.class,
        spill_metric: SpillMetric::GlobalCoverage,
        max_rounds: 24,
    };
    let (s, rec) = irc_allocate_recorded(f, &irc_cfg, record)?;
    Ok((
        OspillStats {
            pressure_spills: 0,
            coloring_spills: s.spilled_vregs,
            moves_coalesced: s.moves_coalesced,
        },
        rec,
    ))
}

/// Allocate a whole program with the optimal-spill pipeline.
///
/// # Errors
///
/// Propagates the first [`AllocError`] from any function.
pub fn ospill_allocate_program(
    p: &mut Program,
    cfg: &OspillConfig,
) -> Result<OspillStats, AllocError> {
    let mut total = OspillStats::default();
    for f in &mut p.funcs {
        let s = ospill_allocate(f, cfg)?;
        total.pressure_spills += s.pressure_spills;
        total.coloring_spills += s.coloring_spills;
        total.moves_coalesced += s.moves_coalesced;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BinOp, FunctionBuilder};

    fn high_pressure(width: usize) -> Function {
        let mut b = FunctionBuilder::new("hp");
        let vs: Vec<_> = (0..width).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        b.ret(Some(s.into()));
        b.finish()
    }

    #[test]
    fn pressure_reduced_below_limit() {
        let mut f = high_pressure(10);
        let before = Liveness::compute(&f).max_pressure(&f);
        assert!(before >= 10);
        let spilled = reduce_pressure(&mut f, RegClass::Int, 4, 100);
        assert!(!spilled.is_empty());
        let after = Liveness::compute(&f).max_pressure(&f);
        assert!(after <= 4, "pressure {after} > 4");
    }

    #[test]
    fn no_spills_when_pressure_fits() {
        let mut f = high_pressure(3);
        let spilled = reduce_pressure(&mut f, RegClass::Int, 8, 100);
        assert!(spilled.is_empty());
    }

    #[test]
    fn full_pipeline_allocates() {
        let mut f = high_pressure(10);
        let stats = ospill_allocate(&mut f, &OspillConfig::new(4)).unwrap();
        assert!(f.is_fully_physical());
        assert!(stats.pressure_spills + stats.coloring_spills > 0);
        for i in f.iter_insts() {
            for r in i.accesses() {
                assert!(r.expect_phys().number() < 4);
            }
        }
    }

    #[test]
    fn ospill_spills_no_more_than_naive_irc() {
        // The global pressure-aware choice should not lose to IRC's local
        // one on a pressured workload.
        let mut f1 = high_pressure(12);
        let o = ospill_allocate(&mut f1, &OspillConfig::new(4)).unwrap();
        let ospill_insts = f1.count_insts(|i| i.is_spill());

        let mut f2 = high_pressure(12);
        crate::irc::irc_allocate(&mut f2, &AllocConfig::baseline(4)).unwrap();
        let irc_insts = f2.count_insts(|i| i.is_spill());
        assert!(
            ospill_insts <= irc_insts + 2,
            "ospill {ospill_insts} vs irc {irc_insts}"
        );
        assert!(o.pressure_spills + o.coloring_spills > 0, "{o:?}");
    }

    #[test]
    fn program_pipeline() {
        let mut p = Program::single(high_pressure(8));
        let stats = ospill_allocate_program(&mut p, &OspillConfig::new(4)).unwrap();
        assert!(p.funcs[0].is_fully_physical());
        assert!(stats.pressure_spills + stats.coloring_spills > 0);
    }
}
