//! Symbolic allocation checker (DESIGN.md §12).
//!
//! Validates allocator output *statically*, the way regalloc2's checker
//! validates its own: abstract-interpret the allocated function, tracking
//! for every storage location (physical register or spill slot) the set of
//! virtual registers whose current value the location **provably** holds,
//! and reject any use whose location cannot be proven to hold the expected
//! vreg on every path. Unlike the execution-trace simulator this covers
//! *all* CFG paths at once, so it catches bugs the simulator's single
//! dynamic path can miss (e.g. a value remapped into a call-clobbered
//! register on a path the trace never takes).
//!
//! Two entry points:
//!
//! * [`check_allocation`] — the substitution check. Aligns the allocated
//!   function against the [`AllocationRecord`] snapshot captured inside
//!   the engine (symbolic function + vreg → color assignment), re-derives
//!   which moves became trivial and were deleted, then runs the location
//!   dataflow. Alignment is *remap-invariant*: class operands are paired
//!   positionally (symbolic vreg ↔ allocated preg) without comparing the
//!   numbers against the assignment, so the same record validates the
//!   function before and after register remapping — the dataflow itself
//!   enforces that every vreg is used from one consistent register.
//!
//! * [`check_function_encoding`] / [`check_encoded_fields`] — the
//!   differential-encoding check. Replays the emitted field stream through
//!   the *real* decoder ([`dra_encoding::decode_field`], not a
//!   reimplementation and not the simulator) under a per-block fixpoint
//!   over the decoder-state lattice, and rejects any field that decodes to
//!   the wrong register — or cannot be decoded at all — on some path. The
//!   stream-shape handling is total: truncated or misaligned streams are
//!   violations, never panics, so the fault-injection harness can use the
//!   checker as a second adjudicator on corrupted streams.
//!
//! # Lattice
//!
//! Location values form the must-hold lattice `VSet`: ⊤ (unanalyzed —
//! could hold anything), or a finite set of vregs the location is known to
//! hold. The meet at CFG joins is set intersection with ⊤ as identity;
//! block entry states start at ⊤ (except the entry block, which starts
//! all-∅: on function entry no location provably holds any vreg) and only
//! descend, so the fixpoint terminates. A use check `v ∈ state[p]` against
//! ⊤ succeeds vacuously, but every reachable block's entry state is
//! concrete after the fixpoint, so violations in reachable code are real.

use crate::allocator::AllocationRecord;
use dra_encoding::{
    decode_field, encode_fields, DecodeError, DecodeState, EncodingConfig, InstFields, LastReg,
};
use dra_ir::{BlockId, Function, Inst, PReg, Reg, SpillSlot, VReg};
use std::collections::BTreeSet;
use std::fmt;

/// Work counters of a successful check (telemetry: `checker.*`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Instructions checked (paired symbolic/allocated instructions, or
    /// replayed instructions for the encoding check).
    pub insts: usize,
    /// Trivial moves whose deletion the alignment re-derived.
    pub deleted_moves: usize,
    /// Register fields replayed through the decoder.
    pub fields_replayed: usize,
}

impl CheckStats {
    /// Fold another check's counters into this one.
    pub fn merge(&mut self, other: &CheckStats) {
        self.insts += other.insts;
        self.deleted_moves += other.deleted_moves;
        self.fields_replayed += other.fields_replayed;
    }
}

/// One rejected program point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Block containing the violation.
    pub block: BlockId,
    /// Instruction index within the block (allocated function).
    pub inst: usize,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// The ways a program point can fail the checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A use reads a register that cannot be proven to hold the vreg.
    WrongValue {
        /// Register the allocated code reads.
        preg: PReg,
        /// Virtual register the symbolic code expects there.
        vreg: VReg,
    },
    /// A spill-slot use cannot be proven to hold the vreg (reserved for
    /// future slot-content checks; the current dataflow justifies reloads
    /// by construction).
    SlotWrongValue {
        /// The slot read.
        slot: SpillSlot,
        /// Expected vreg.
        vreg: VReg,
    },
    /// A field was reached with an unknown or corrupt decoder state, or
    /// carries an undecodable code.
    DecodeInconsistent {
        /// Field index within the instruction.
        field: usize,
    },
    /// A field decoded to a different register than the operand names.
    DecodeMismatch {
        /// Field index within the instruction.
        field: usize,
        /// What the decoder produced.
        decoded: u8,
        /// What the instruction names.
        expected: u8,
    },
    /// The field stream's shape disagrees with the instruction's accesses
    /// (dropped, duplicated, or truncated entries).
    StreamShape {
        /// Fields the accesses require.
        expected: usize,
        /// Fields the stream supplied.
        got: usize,
    },
    /// A class operand is still virtual where physical code is required.
    UnallocatedOperand,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: ", self.block, self.inst)?;
        match &self.kind {
            ViolationKind::WrongValue { preg, vreg } => {
                write!(f, "use of {vreg} from {preg} not provable")
            }
            ViolationKind::SlotWrongValue { slot, vreg } => {
                write!(f, "use of {vreg} from {slot} not provable")
            }
            ViolationKind::DecodeInconsistent { field } => {
                write!(f, "field {field} undecodable (unknown or corrupt last_reg)")
            }
            ViolationKind::DecodeMismatch {
                field,
                decoded,
                expected,
            } => write!(
                f,
                "field {field} decodes to r{decoded}, operand names r{expected}"
            ),
            ViolationKind::StreamShape { expected, got } => {
                write!(f, "stream shape: {got} codes for {expected} accesses")
            }
            ViolationKind::UnallocatedOperand => write!(f, "class operand still virtual"),
        }
    }
}

/// A failed check.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckError {
    /// Symbolic and allocated functions have different block counts — the
    /// record does not describe this function.
    BlockCount {
        /// Blocks in the symbolic snapshot.
        symbolic: usize,
        /// Blocks in the allocated function.
        allocated: usize,
    },
    /// A referenced class vreg has no color in the record's assignment.
    UnassignedVReg {
        /// The colorless vreg.
        vreg: VReg,
    },
    /// An allocated class operand's register number is `>= k`.
    RegOutOfRange {
        /// Block containing the operand.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// The out-of-range register.
        preg: PReg,
        /// The configured color count.
        k: u16,
    },
    /// Instruction streams do not align (shape, opcode, immediate, or
    /// non-class operand mismatch).
    InstMismatch {
        /// Block where alignment broke.
        block: BlockId,
        /// Symbolic instruction index at the break.
        inst: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// The dataflow rejected one or more program points.
    Violations(Vec<Violation>),
    /// The clean static encode failed — the function was never validly
    /// repaired, so there is no stream to check.
    Encode(DecodeError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::BlockCount {
                symbolic,
                allocated,
            } => write!(
                f,
                "block count mismatch: symbolic {symbolic}, allocated {allocated}"
            ),
            CheckError::UnassignedVReg { vreg } => {
                write!(f, "referenced {vreg} has no color in the record")
            }
            CheckError::RegOutOfRange {
                block,
                inst,
                preg,
                k,
            } => write!(f, "{block}:{inst}: {preg} out of range (k = {k})"),
            CheckError::InstMismatch {
                block,
                inst,
                detail,
            } => write!(f, "{block}:{inst}: instruction streams diverge: {detail}"),
            CheckError::Violations(vs) => {
                write!(f, "{} violation(s)", vs.len())?;
                for v in vs.iter().take(4) {
                    write!(f, "; {v}")?;
                }
                if vs.len() > 4 {
                    write!(f, "; …")?;
                }
                Ok(())
            }
            CheckError::Encode(e) => write!(f, "static encode failed: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

// ---------------------------------------------------------------------------
// The location-value lattice.
// ---------------------------------------------------------------------------

/// Set of vregs a location provably holds: ⊤ (unanalyzed) or a finite set.
#[derive(Clone, Debug, PartialEq, Eq)]
enum VSet {
    /// Unanalyzed — identity of the meet. Never observed at use checks in
    /// reachable code after the fixpoint.
    Univ,
    /// The location is known to hold the current value of exactly these
    /// vregs (empty = provably none).
    Set(BTreeSet<u32>),
}

impl VSet {
    fn empty() -> VSet {
        VSet::Set(BTreeSet::new())
    }

    fn contains(&self, v: u32) -> bool {
        match self {
            VSet::Univ => true,
            VSet::Set(s) => s.contains(&v),
        }
    }

    fn insert(&mut self, v: u32) {
        if let VSet::Set(s) = self {
            s.insert(v);
        }
    }

    fn remove(&mut self, v: u32) {
        if let VSet::Set(s) = self {
            s.remove(&v);
        }
    }

    fn meet(&self, other: &VSet) -> VSet {
        match (self, other) {
            (VSet::Univ, x) | (x, VSet::Univ) => x.clone(),
            (VSet::Set(a), VSet::Set(b)) => VSet::Set(a.intersection(b).copied().collect()),
        }
    }
}

/// Abstract machine state: one [`VSet`] per physical register and spill
/// slot.
#[derive(Clone, Debug, PartialEq, Eq)]
struct AbsState {
    regs: Vec<VSet>,
    slots: Vec<VSet>,
}

impl AbsState {
    fn entry(n_regs: usize, n_slots: usize) -> AbsState {
        AbsState {
            regs: vec![VSet::empty(); n_regs],
            slots: vec![VSet::empty(); n_slots],
        }
    }

    fn meet(&self, other: &AbsState) -> AbsState {
        AbsState {
            regs: self
                .regs
                .iter()
                .zip(&other.regs)
                .map(|(a, b)| a.meet(b))
                .collect(),
            slots: self
                .slots
                .iter()
                .zip(&other.slots)
                .map(|(a, b)| a.meet(b))
                .collect(),
        }
    }

    /// Redefinition of `v`: its old value is stale everywhere.
    fn kill(&mut self, v: u32) {
        for s in self.regs.iter_mut().chain(self.slots.iter_mut()) {
            s.remove(v);
        }
    }
}

// ---------------------------------------------------------------------------
// Alignment: symbolic snapshot vs allocated function.
// ---------------------------------------------------------------------------

/// One aligned step of a block: a symbolic instruction that was deleted as
/// a trivial move, or a symbolic/allocated instruction pair.
#[derive(Clone, Copy, Debug)]
enum Event {
    Deleted { sym: usize },
    Pair { sym: usize, alloc: usize },
}

/// Replace every register operand so instruction equality compares only
/// opcode and non-register payload.
fn strip_regs(i: &Inst) -> Inst {
    let mut c = i.clone();
    c.map_regs(|_| Reg::Phys(PReg(u8::MAX)));
    c
}

struct Aligner<'a> {
    allocated: &'a Function,
    rec: &'a AllocationRecord,
}

impl<'a> Aligner<'a> {
    /// The color the record gives operand `r`, as a physical register —
    /// identity on everything that is not a class vreg.
    fn resolve(&self, r: Reg) -> Result<Reg, CheckError> {
        match r {
            Reg::Virt(v) if self.rec.symbolic.vreg_class(v) == self.rec.class => {
                let c = self
                    .rec
                    .assignment
                    .get(v.index())
                    .copied()
                    .flatten()
                    .ok_or(CheckError::UnassignedVReg { vreg: v })?;
                Ok(Reg::Phys(PReg(c)))
            }
            other => Ok(other),
        }
    }

    fn is_class_vreg(&self, r: Reg) -> Option<VReg> {
        r.as_virt()
            .filter(|&v| self.rec.symbolic.vreg_class(v) == self.rec.class)
    }

    /// Pair one block's instruction streams. `set_last_reg` instructions
    /// are skipped independently on each side (the repair pass inserts
    /// them into the allocated stream only); a symbolic move whose two
    /// resolved operands coincide must have been deleted by the engine's
    /// substitution pass.
    fn align_block(&self, b: BlockId) -> Result<Vec<Event>, CheckError> {
        let sym_insts = &self.rec.symbolic.block(b).insts;
        let alloc_insts = &self.allocated.block(b).insts;
        let mut events = Vec::with_capacity(sym_insts.len());
        let mut ai = 0usize;
        for (si, sym) in sym_insts.iter().enumerate() {
            if sym.is_set_last_reg() {
                continue;
            }
            if let Inst::Mov { dst, src } = sym {
                if self.resolve(*dst)? == self.resolve(*src)? {
                    events.push(Event::Deleted { sym: si });
                    continue;
                }
            }
            while alloc_insts.get(ai).is_some_and(Inst::is_set_last_reg) {
                ai += 1;
            }
            let Some(alloc) = alloc_insts.get(ai) else {
                return Err(CheckError::InstMismatch {
                    block: b,
                    inst: si,
                    detail: format!("allocated stream ends before `{sym}`"),
                });
            };
            self.match_pair(b, si, sym, alloc)?;
            events.push(Event::Pair { sym: si, alloc: ai });
            ai += 1;
        }
        while alloc_insts.get(ai).is_some_and(Inst::is_set_last_reg) {
            ai += 1;
        }
        if ai != alloc_insts.len() {
            return Err(CheckError::InstMismatch {
                block: b,
                inst: sym_insts.len(),
                detail: format!(
                    "allocated stream has {} unmatched trailing instruction(s)",
                    alloc_insts.len() - ai
                ),
            });
        }
        Ok(events)
    }

    /// Check a symbolic/allocated instruction pair matches structurally:
    /// identical opcode and non-register payload, class vregs paired with
    /// in-range physical registers, everything else operand-for-operand
    /// equal. Register *numbers* of class operands are deliberately not
    /// compared against the assignment — remapping permutes them; the
    /// dataflow enforces consistency instead.
    fn match_pair(
        &self,
        b: BlockId,
        si: usize,
        sym: &Inst,
        alloc: &Inst,
    ) -> Result<(), CheckError> {
        if strip_regs(sym) != strip_regs(alloc) {
            return Err(CheckError::InstMismatch {
                block: b,
                inst: si,
                detail: format!("`{sym}` vs `{alloc}`"),
            });
        }
        let sym_ops: Vec<Reg> = sym.accesses();
        let alloc_ops: Vec<Reg> = alloc.accesses();
        debug_assert_eq!(sym_ops.len(), alloc_ops.len());
        for (&s, &a) in sym_ops.iter().zip(&alloc_ops) {
            if let Some(v) = self.is_class_vreg(s) {
                // Resolvability is part of the contract even though the
                // number is not compared (remap-invariance).
                self.resolve(s)?;
                match a.as_phys() {
                    Some(p) if u16::from(p.number()) < self.rec.k => {}
                    Some(p) => {
                        return Err(CheckError::RegOutOfRange {
                            block: b,
                            inst: si,
                            preg: p,
                            k: self.rec.k,
                        })
                    }
                    None => {
                        return Err(CheckError::InstMismatch {
                            block: b,
                            inst: si,
                            detail: format!("{v} paired with virtual operand {a:?}"),
                        })
                    }
                }
            } else if s != a {
                return Err(CheckError::InstMismatch {
                    block: b,
                    inst: si,
                    detail: format!("non-class operand {s:?} became {a:?}"),
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The substitution check.
// ---------------------------------------------------------------------------

/// Verify that `allocated` is a consistent realization of the record's
/// symbolic function under *some* per-vreg register assignment — the
/// engine's own, or any remapping of it.
///
/// # Errors
///
/// Alignment failures ([`CheckError::InstMismatch`] and friends) mean the
/// record does not describe this function; [`CheckError::Violations`]
/// means the allocation itself is wrong (a use reads a register that does
/// not hold the expected value on every path).
pub fn check_allocation(
    allocated: &Function,
    rec: &AllocationRecord,
) -> Result<CheckStats, CheckError> {
    if rec.symbolic.num_blocks() != allocated.num_blocks() {
        return Err(CheckError::BlockCount {
            symbolic: rec.symbolic.num_blocks(),
            allocated: allocated.num_blocks(),
        });
    }
    let aligner = Aligner { allocated, rec };
    let nb = allocated.num_blocks();
    let mut events = Vec::with_capacity(nb);
    for bi in 0..nb {
        events.push(aligner.align_block(BlockId(bi as u32))?);
    }

    // Location space: every class color plus any physical number the code
    // mentions (call clobbers included), and the function's spill slots.
    let mut n_regs = rec.k as usize;
    for i in allocated.iter_insts() {
        for r in i.accesses() {
            if let Some(p) = r.as_phys() {
                n_regs = n_regs.max(p.index() + 1);
            }
        }
    }
    for p in &rec.call_clobbers {
        n_regs = n_regs.max(p.index() + 1);
    }
    let n_slots = rec
        .symbolic
        .spill_slots
        .max(allocated.spill_slots) as usize;

    let mut stats = CheckStats::default();
    for evs in &events {
        for e in evs {
            match e {
                Event::Deleted { .. } => stats.deleted_moves += 1,
                Event::Pair { .. } => stats.insts += 1,
            }
        }
    }

    // Fixpoint over block entry states (worklist in reverse postorder).
    let rpo = allocated.reverse_postorder();
    let mut entry: Vec<Option<AbsState>> = vec![None; nb];
    entry[allocated.entry.index()] = Some(AbsState::entry(n_regs, n_slots));
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let Some(inp) = entry[b.index()].clone() else {
                continue;
            };
            let out = run_block(&aligner, b, &events[b.index()], inp, None);
            for &s in &allocated.block(b).succs {
                let next = match &entry[s.index()] {
                    Some(cur) => cur.meet(&out),
                    None => out.clone(),
                };
                if entry[s.index()].as_ref() != Some(&next) {
                    entry[s.index()] = Some(next);
                    changed = true;
                }
            }
        }
    }

    // Violation pass over reachable blocks with the fixpoint entry states.
    let mut violations = Vec::new();
    for &b in &rpo {
        if let Some(inp) = entry[b.index()].clone() {
            run_block(&aligner, b, &events[b.index()], inp, Some(&mut violations));
        }
    }
    if violations.is_empty() {
        Ok(stats)
    } else {
        Err(CheckError::Violations(violations))
    }
}

/// Run one block's events over an entry state; returns the exit state,
/// recording violations when a sink is supplied.
fn run_block(
    aligner: &Aligner<'_>,
    b: BlockId,
    events: &[Event],
    mut st: AbsState,
    mut violations: Option<&mut Vec<Violation>>,
) -> AbsState {
    let sym_insts = &aligner.rec.symbolic.block(b).insts;
    let alloc_insts = &aligner.allocated.block(b).insts;
    for e in events {
        match *e {
            Event::Deleted { sym } => {
                let Inst::Mov { dst, src } = &sym_insts[sym] else {
                    unreachable!("deleted events are moves by construction");
                };
                step_deleted_move(aligner, &mut st, *dst, *src);
            }
            Event::Pair { sym, alloc } => {
                step_pair(
                    aligner,
                    &mut st,
                    &sym_insts[sym],
                    &alloc_insts[alloc],
                    b,
                    alloc,
                    violations.as_deref_mut(),
                );
            }
        }
    }
    st
}

/// Transfer of a deleted trivial move `dst = src`: `dst` now shares
/// whatever storage holds `src`.
fn step_deleted_move(aligner: &Aligner<'_>, st: &mut AbsState, dst: Reg, src: Reg) {
    let Some(vd) = aligner.is_class_vreg(dst) else {
        return; // e.g. a float-class `mov v, v` — outside this analysis
    };
    st.kill(vd.0);
    match (aligner.is_class_vreg(src), src.as_phys()) {
        (Some(vs), _) => {
            for s in st.regs.iter_mut().chain(st.slots.iter_mut()) {
                if s.contains(vs.0) && *s != VSet::Univ {
                    s.insert(vd.0);
                }
            }
        }
        (None, Some(p)) => {
            if p.index() < st.regs.len() {
                st.regs[p.index()].insert(vd.0);
            }
        }
        _ => {}
    }
}

/// Transfer (and use-check) of a paired instruction.
fn step_pair(
    aligner: &Aligner<'_>,
    st: &mut AbsState,
    sym: &Inst,
    alloc: &Inst,
    b: BlockId,
    ai: usize,
    mut violations: Option<&mut Vec<Violation>>,
) {
    // Use checks against the pre-state: every class-vreg use must read a
    // register that provably holds it.
    let sym_uses = sym.uses();
    let alloc_uses = alloc.uses();
    for (s, a) in sym_uses.iter().zip(&alloc_uses) {
        if let (Some(v), Some(p)) = (aligner.is_class_vreg(*s), a.as_phys()) {
            if !st.regs[p.index()].contains(v.0) {
                if let Some(sink) = violations.as_deref_mut() {
                    sink.push(Violation {
                        block: b,
                        inst: ai,
                        kind: ViolationKind::WrongValue { preg: p, vreg: v },
                    });
                }
            }
        }
    }

    // Instruction-specific state transfer.
    match (sym, alloc) {
        (Inst::SpillLoad { dst, slot }, Inst::SpillLoad { dst: adst, .. }) => {
            // The reload defines `dst` as the slot's contents: the target
            // register now holds `dst` (by definition) plus every vreg the
            // slot provably held — their values coincide from here on.
            if let (Some(v), Some(p)) = (aligner.is_class_vreg(*dst), adst.as_phys()) {
                st.kill(v.0);
                let mut set = st.slots[slot.index()].clone();
                set.insert(v.0);
                st.regs[p.index()] = set;
            }
            return;
        }
        (Inst::SpillStore { src, slot }, Inst::SpillStore { src: asrc, .. }) => {
            // The slot now holds exactly what the stored register holds.
            if let Some(p) = asrc.as_phys() {
                let _ = src;
                st.slots[slot.index()] = st.regs[p.index()].clone();
            }
            return;
        }
        (Inst::Call { .. }, Inst::Call { .. }) => {
            for p in &aligner.rec.call_clobbers {
                st.regs[p.index()] = VSet::empty();
            }
            // Fall through to the generic defs (the return value, defined
            // after the clobber).
        }
        _ => {}
    }

    // Generic defs: a class-vreg def lands its value in exactly one
    // register; a physical def makes that register's contents untracked.
    let sym_defs = sym.defs();
    let alloc_defs = alloc.defs();
    for (s, a) in sym_defs.iter().zip(&alloc_defs) {
        match (aligner.is_class_vreg(*s), a.as_phys()) {
            (Some(v), Some(p)) => {
                st.kill(v.0);
                st.regs[p.index()] = VSet::Set(BTreeSet::from([v.0]));
            }
            (None, Some(p)) if s.as_phys().is_some() => {
                st.regs[p.index()] = VSet::empty();
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// The differential-encoding check.
// ---------------------------------------------------------------------------

/// Statically verify that `f`'s differential field stream decodes to the
/// operands it names on *every* CFG path, by replaying the encoder's own
/// output through the real decoder under a per-block fixpoint.
///
/// # Errors
///
/// [`CheckError::Encode`] if the clean encode itself fails (unrepaired
/// function); [`CheckError::Violations`] if replay decodes any field to
/// the wrong register on some path.
pub fn check_function_encoding(
    f: &Function,
    cfg: &EncodingConfig,
) -> Result<CheckStats, CheckError> {
    let encoded = encode_fields(f, cfg).map_err(CheckError::Encode)?;
    check_encoded_fields(f, cfg, &encoded, None)
}

/// [`check_function_encoding`] over an untrusted field stream and an
/// explicit entry decoder state — the fault-adjudication entry point.
/// Corrupt codes, dropped or duplicated entries, truncated streams, and
/// flipped entry states are all reported as violations, never panics.
///
/// `entry` is the decoder's power-on state for the entry block; `None`
/// models the hardware's unknown power-on (`last_reg` unknown).
///
/// # Errors
///
/// [`CheckError::Violations`] listing every rejected field.
pub fn check_encoded_fields(
    f: &Function,
    cfg: &EncodingConfig,
    encoded: &[Vec<InstFields>],
    entry: Option<&LastReg>,
) -> Result<CheckStats, CheckError> {
    let nb = f.num_blocks();
    let entry_state = match entry.and_then(LastReg::current) {
        Some(v) => DecodeState::Known(v),
        None => DecodeState::Top,
    };
    let mut in_st = vec![DecodeState::Bot; nb];
    in_st[f.entry.index()] = entry_state;

    let rpo = f.reverse_postorder();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if in_st[b.index()] == DecodeState::Bot {
                continue;
            }
            let (out, _, _) = replay_block(f, cfg, encoded, b, in_st[b.index()], false);
            for &s in &f.block(b).succs {
                let next = in_st[s.index()].meet(out);
                if next != in_st[s.index()] {
                    in_st[s.index()] = next;
                    changed = true;
                }
            }
        }
    }

    let mut stats = CheckStats::default();
    let mut violations = Vec::new();
    for &b in &rpo {
        if in_st[b.index()] == DecodeState::Bot {
            continue;
        }
        let (_, s, mut vs) = replay_block(f, cfg, encoded, b, in_st[b.index()], true);
        stats.merge(&s);
        violations.append(&mut vs);
    }
    if violations.is_empty() {
        Ok(stats)
    } else {
        Err(CheckError::Violations(violations))
    }
}

/// Replay one block's field stream through the decoder from an abstract
/// entry state. Returns the abstract exit state, the work counters, and —
/// when `collect` is set — the violations found.
fn replay_block(
    f: &Function,
    cfg: &EncodingConfig,
    encoded: &[Vec<InstFields>],
    b: BlockId,
    inp: DecodeState,
    collect: bool,
) -> (DecodeState, CheckStats, Vec<Violation>) {
    let mut last = match inp {
        DecodeState::Known(v) => LastReg::known(v),
        _ => LastReg::default(),
    };
    let mut stats = CheckStats::default();
    let mut violations = Vec::new();
    let bail = |vs: &mut Vec<Violation>, v: Violation| {
        if collect {
            vs.push(v);
        }
    };
    let stream = encoded.get(b.index());
    for (ii, inst) in f.block(b).insts.iter().enumerate() {
        if let Inst::SetLastReg {
            class,
            value,
            delay,
        } = inst
        {
            if *class == cfg.class {
                last.set(*value, *delay);
            }
            continue;
        }
        stats.insts += 1;
        // Non-panicking `class_accesses_ordered`: a virtual class operand
        // here means unallocated code reached the encoder — a violation,
        // not a crash.
        let mut actual = Vec::new();
        let mut has_virt = false;
        for r in inst.accesses_in(cfg.order) {
            if f.class_of(r) != cfg.class {
                continue;
            }
            match r.as_phys() {
                Some(p) => actual.push(p.number()),
                None => has_virt = true,
            }
        }
        if has_virt {
            bail(
                &mut violations,
                Violation {
                    block: b,
                    inst: ii,
                    kind: ViolationKind::UnallocatedOperand,
                },
            );
            last.clobber();
            continue;
        }
        let codes = stream.and_then(|s| s.get(ii));
        let Some(codes) = codes else {
            bail(
                &mut violations,
                Violation {
                    block: b,
                    inst: ii,
                    kind: ViolationKind::StreamShape {
                        expected: actual.len(),
                        got: 0,
                    },
                },
            );
            last.clobber();
            continue;
        };
        if codes.len() != actual.len() {
            bail(
                &mut violations,
                Violation {
                    block: b,
                    inst: ii,
                    kind: ViolationKind::StreamShape {
                        expected: actual.len(),
                        got: codes.len(),
                    },
                },
            );
            last.clobber();
            continue;
        }
        for (k, &code) in codes.iter().enumerate() {
            stats.fields_replayed += 1;
            match decode_field(cfg, &mut last, code) {
                Some(r) if r == actual[k] => {}
                Some(r) => bail(
                    &mut violations,
                    Violation {
                        block: b,
                        inst: ii,
                        kind: ViolationKind::DecodeMismatch {
                            field: k,
                            decoded: r,
                            expected: actual[k],
                        },
                    },
                ),
                None => bail(
                    &mut violations,
                    Violation {
                        block: b,
                        inst: ii,
                        kind: ViolationKind::DecodeInconsistent { field: k },
                    },
                ),
            }
        }
        if matches!(inst, Inst::Call { .. }) {
            last.clobber();
        }
    }
    let out = if last.has_pending() {
        DecodeState::Top
    } else {
        match last.current() {
            Some(v) => DecodeState::Known(v),
            None => DecodeState::Top,
        }
    };
    (out, stats, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{Allocator, Coalescing, DenseIrc, Ospill, ReferenceIrc};
    use crate::irc::AllocConfig;
    use dra_adjgraph::DiffParams;
    use dra_encoding::insert_set_last_reg;
    use dra_ir::{BinOp, Cond, FunctionBuilder};

    fn diamond(width: usize) -> Function {
        let mut b = FunctionBuilder::new("diamond");
        let vs: Vec<_> = (0..width).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Cond::Lt, vs[0].into(), vs[1].into(), t, e);
        b.switch_to(t);
        b.bin(BinOp::Add, vs[0], vs[0].into(), vs[1].into());
        b.br(j);
        b.switch_to(e);
        b.bin(BinOp::Sub, vs[0], vs[0].into(), vs[2].into());
        b.br(j);
        b.switch_to(j);
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        b.ret(Some(s.into()));
        b.finish()
    }

    fn engines() -> Vec<Box<dyn Allocator>> {
        vec![
            Box::new(DenseIrc),
            Box::new(ReferenceIrc),
            Box::new(Ospill),
            Box::new(Coalescing),
        ]
    }

    #[test]
    fn accepts_every_engine_on_a_diamond() {
        let f = diamond(6);
        let cfg = AllocConfig::differential(DiffParams::new(8, 4));
        for eng in engines() {
            let a = eng.allocate(&f, &cfg).unwrap();
            let stats = check_allocation(&a.func, &a.record)
                .unwrap_or_else(|e| panic!("{} rejected: {e}", eng.name()));
            assert!(stats.insts > 0, "{}", eng.name());
        }
    }

    #[test]
    fn accepts_spilling_allocations() {
        let f = diamond(10);
        let cfg = AllocConfig::baseline(4);
        for eng in engines() {
            let a = eng.allocate(&f, &cfg).unwrap();
            check_allocation(&a.func, &a.record)
                .unwrap_or_else(|e| panic!("{} rejected: {e}", eng.name()));
        }
    }

    #[test]
    fn rejects_corrupted_use_register() {
        // Redirect one use to a different (in-range) register: the
        // location no longer holds the expected vreg on any path.
        let f = diamond(6);
        let cfg = AllocConfig::baseline(8);
        let a = DenseIrc.allocate(&f, &cfg).unwrap();
        let mut broken = a.func.clone();
        let mut done = false;
        'outer: for blk in &mut broken.blocks {
            for inst in &mut blk.insts {
                if let Inst::Bin { lhs, .. } = inst {
                    let p = lhs.expect_phys();
                    *lhs = Reg::Phys(PReg((p.number() + 1) % 8));
                    done = true;
                    break 'outer;
                }
            }
        }
        assert!(done, "no Bin instruction found to corrupt");
        match check_allocation(&broken, &a.record) {
            Err(CheckError::Violations(vs)) => {
                assert!(vs
                    .iter()
                    .any(|v| matches!(v.kind, ViolationKind::WrongValue { .. })));
            }
            other => panic!("corrupt use not rejected: {other:?}"),
        }
    }

    #[test]
    fn rejects_corrupted_def_register() {
        // Moving a def to another register strands every later use.
        let f = diamond(6);
        let cfg = AllocConfig::baseline(8);
        let a = DenseIrc.allocate(&f, &cfg).unwrap();
        let mut broken = a.func.clone();
        let mut done = false;
        for inst in &mut broken.blocks[0].insts {
            if let Inst::MovImm { dst, .. } = inst {
                let p = dst.expect_phys();
                *dst = Reg::Phys(PReg((p.number() + 1) % 8));
                done = true;
                break;
            }
        }
        assert!(done);
        assert!(matches!(
            check_allocation(&broken, &a.record),
            Err(CheckError::Violations(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let f = diamond(4);
        let cfg = AllocConfig::baseline(8);
        let a = DenseIrc.allocate(&f, &cfg).unwrap();
        let mut broken = a.func.clone();
        if let Inst::MovImm { dst, .. } = &mut broken.blocks[0].insts[0] {
            *dst = Reg::Phys(PReg(200));
        } else {
            panic!("unexpected first instruction");
        }
        assert!(matches!(
            check_allocation(&broken, &a.record),
            Err(CheckError::RegOutOfRange { .. })
        ));
    }

    #[test]
    fn remapped_allocation_still_accepted() {
        // A global register permutation is exactly what remapping does;
        // the checker's alignment is number-agnostic and the dataflow
        // stays consistent.
        let f = diamond(6);
        let cfg = AllocConfig::baseline(8);
        let a = DenseIrc.allocate(&f, &cfg).unwrap();
        let mut remapped = a.func.clone();
        remapped.map_all_regs(|r| match r.as_phys() {
            Some(p) => Reg::Phys(PReg((p.number() + 3) % 8)),
            None => r,
        });
        check_allocation(&remapped, &a.record).unwrap();
    }

    #[test]
    fn inconsistent_remap_rejected() {
        // Permuting only SOME occurrences (def stays, use moves) is the
        // bug class remapping could introduce; the dataflow catches it
        // even though each number is individually in range.
        let f = diamond(6);
        let cfg = AllocConfig::baseline(8);
        let a = DenseIrc.allocate(&f, &cfg).unwrap();
        let mut broken = a.func.clone();
        let last = broken.blocks.len() - 1;
        let mut done = false;
        for inst in &mut broken.blocks[last].insts {
            if let Inst::Bin { rhs, .. } = inst {
                let p = rhs.expect_phys();
                *rhs = Reg::Phys(PReg((p.number() + 1) % 8));
                done = true;
                break;
            }
        }
        assert!(done);
        assert!(matches!(
            check_allocation(&broken, &a.record),
            Err(CheckError::Violations(_))
        ));
    }

    #[test]
    fn encoding_replay_accepts_repaired_function() {
        let f = diamond(6);
        let acfg = AllocConfig::differential(DiffParams::new(8, 4));
        let a = DenseIrc.allocate(&f, &acfg).unwrap();
        let mut func = a.func;
        let ecfg = EncodingConfig::new(DiffParams::new(8, 4));
        insert_set_last_reg(&mut func, &ecfg);
        let stats = check_function_encoding(&func, &ecfg).unwrap();
        assert!(stats.fields_replayed > 0);
    }

    #[test]
    fn encoding_replay_rejects_corrupt_field() {
        let f = diamond(6);
        let acfg = AllocConfig::differential(DiffParams::new(8, 4));
        let a = DenseIrc.allocate(&f, &acfg).unwrap();
        let mut func = a.func;
        let ecfg = EncodingConfig::new(DiffParams::new(8, 4));
        insert_set_last_reg(&mut func, &ecfg);
        let mut encoded = encode_fields(&func, &ecfg).unwrap();
        let mut done = false;
        'outer: for blk in &mut encoded {
            for codes in blk.iter_mut() {
                if let Some(c) = codes.first_mut() {
                    *c = (*c + 1) % 4;
                    done = true;
                    break 'outer;
                }
            }
        }
        assert!(done);
        assert!(matches!(
            check_encoded_fields(&func, &ecfg, &encoded, None),
            Err(CheckError::Violations(_))
        ));
    }

    #[test]
    fn encoding_replay_rejects_truncated_stream() {
        let f = diamond(4);
        let acfg = AllocConfig::differential(DiffParams::new(8, 4));
        let a = DenseIrc.allocate(&f, &acfg).unwrap();
        let mut func = a.func;
        let ecfg = EncodingConfig::new(DiffParams::new(8, 4));
        insert_set_last_reg(&mut func, &ecfg);
        let mut encoded = encode_fields(&func, &ecfg).unwrap();
        encoded[0].truncate(1);
        match check_encoded_fields(&func, &ecfg, &encoded, None) {
            Err(CheckError::Violations(vs)) => {
                assert!(vs
                    .iter()
                    .any(|v| matches!(v.kind, ViolationKind::StreamShape { .. })));
            }
            other => panic!("truncation not rejected: {other:?}"),
        }
    }
}
