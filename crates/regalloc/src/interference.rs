//! Interference graph construction.
//!
//! Nodes are liveness *entities* (virtual registers, then physical
//! registers — see [`dra_ir::liveness`]). Edges connect co-live values; a
//! move's source is excluded from interfering with its destination at the
//! move itself so the pair remains coalescible (Chaitin's refinement).

use dra_ir::liveness::{reg_to_entity, Liveness, MAX_PREGS};
use dra_ir::{Function, Inst, PReg, RegClass};
use std::collections::HashSet;

/// One move instruction's endpoints, as entity ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MoveRef {
    /// Entity of the move destination.
    pub dst: u32,
    /// Entity of the move source.
    pub src: u32,
}

/// An undirected interference graph over entities, plus the move list.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    n: usize,
    vreg_count: u32,
    adj: Vec<HashSet<u32>>,
    /// All register-to-register moves of the allocated class.
    pub moves: Vec<MoveRef>,
    /// Spill metric per entity: Σ freq of blocks containing uses/defs.
    pub use_def_weight: Vec<f64>,
}

impl InterferenceGraph {
    /// Build the graph for the registers of `class` in `f`.
    ///
    /// `call_clobbers` lists physical registers treated as defined by every
    /// `Call` — values live across a call then interfere with them, forcing
    /// the allocator to keep such values in callee-saved registers or spill
    /// them, as on a real machine.
    pub fn build(
        f: &Function,
        liveness: &Liveness,
        class: RegClass,
        call_clobbers: &[PReg],
    ) -> InterferenceGraph {
        let vreg_count = f.vreg_count;
        let n = vreg_count as usize + MAX_PREGS;
        let mut g = InterferenceGraph {
            n,
            vreg_count,
            adj: vec![HashSet::new(); n],
            moves: Vec::new(),
            use_def_weight: vec![0.0; n],
        };
        let in_class = |f: &Function, r: dra_ir::Reg| match r {
            dra_ir::Reg::Virt(v) => f.vreg_class(v) == class,
            dra_ir::Reg::Phys(_) => class == RegClass::Int,
        };

        for (b, blk) in f.iter_blocks() {
            // Entities live after each instruction, walked backwards.
            let mut live: HashSet<u32> = liveness
                .block_live_out(b)
                .iter()
                .map(|e| e as u32)
                .collect();
            for inst in blk.insts.iter().rev() {
                let defs: Vec<u32> = inst
                    .defs()
                    .into_iter()
                    .filter(|&r| in_class(f, r))
                    .map(|r| reg_to_entity(r, vreg_count) as u32)
                    .collect();
                let uses: Vec<u32> = inst
                    .uses()
                    .into_iter()
                    .filter(|&r| in_class(f, r))
                    .map(|r| reg_to_entity(r, vreg_count) as u32)
                    .collect();

                for &e in defs.iter().chain(uses.iter()) {
                    g.use_def_weight[e as usize] += blk.freq;
                }

                // Moves: src does not interfere with dst across the move.
                let mut move_src: Option<u32> = None;
                if let Inst::Mov { .. } = inst {
                    if let (Some(&d), Some(&s)) = (defs.first(), uses.first()) {
                        g.moves.push(MoveRef { dst: d, src: s });
                        move_src = Some(s);
                    }
                }

                // Call clobbers act as additional defs.
                let mut all_defs = defs.clone();
                if matches!(inst, Inst::Call { .. }) && class == RegClass::Int {
                    for p in call_clobbers {
                        all_defs.push(reg_to_entity((*p).into(), vreg_count) as u32);
                    }
                }

                for &d in &all_defs {
                    for &l in &live {
                        if Some(l) == move_src {
                            continue;
                        }
                        g.add_edge(d, l);
                    }
                }
                // Defs interfere with each other (same program point).
                for i in 0..all_defs.len() {
                    for j in i + 1..all_defs.len() {
                        g.add_edge(all_defs[i], all_defs[j]);
                    }
                }

                for &d in &defs {
                    live.remove(&d);
                }
                for &u in &uses {
                    live.insert(u);
                }
            }
        }
        g
    }

    /// Number of entities (nodes).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The analyzed function's virtual-register count.
    pub fn vreg_count(&self) -> u32 {
        self.vreg_count
    }

    /// Is `e` a precolored (physical-register) entity?
    pub fn is_precolored(&self, e: u32) -> bool {
        e >= self.vreg_count
    }

    /// The physical register number of a precolored entity.
    ///
    /// # Panics
    ///
    /// Panics if `e` is a virtual-register entity.
    pub fn preg_number(&self, e: u32) -> u8 {
        assert!(self.is_precolored(e), "entity {e} is virtual");
        (e - self.vreg_count) as u8
    }

    /// Add an undirected edge (self-edges ignored).
    pub fn add_edge(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        self.adj[a as usize].insert(b);
        self.adj[b as usize].insert(a);
    }

    /// Do `a` and `b` interfere?
    pub fn interferes(&self, a: u32, b: u32) -> bool {
        self.adj[a as usize].contains(&b)
    }

    /// Neighbors of `e`.
    pub fn neighbors(&self, e: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj[e as usize].iter().copied()
    }

    /// Degree of `e`.
    pub fn degree(&self, e: u32) -> usize {
        self.adj[e as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BinOp, FunctionBuilder, Liveness, Reg, VReg};

    fn entity(v: VReg, f: &Function) -> u32 {
        reg_to_entity(v.into(), f.vreg_count) as u32
    }

    #[test]
    fn overlapping_values_interfere() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov_imm(y, 2);
        b.bin(BinOp::Add, z, x.into(), y.into());
        b.ret(Some(z.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        assert!(g.interferes(entity(x, &f), entity(y, &f)));
        assert!(!g.interferes(entity(x, &f), entity(z, &f)), "x dies at z's def");
    }

    #[test]
    fn move_operands_do_not_interfere() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into()); // y = x; x dead afterwards
        b.ret(Some(y.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        assert!(!g.interferes(entity(x, &f), entity(y, &f)));
        assert_eq!(g.moves.len(), 1);
        assert_eq!(
            g.moves[0],
            MoveRef {
                dst: entity(y, &f),
                src: entity(x, &f)
            }
        );
    }

    #[test]
    fn move_with_live_source_still_interferes_via_later_defs() {
        // y = x; x used later; x must stay distinct from any def while live.
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into());
        b.bin(BinOp::Add, z, x.into(), y.into());
        b.ret(Some(z.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        // x live across y's def, but it's the move source: no edge from the
        // move itself. However y and x are both live at z's def? No: both
        // die there. x-y interference would only appear if y were redefined
        // while x lives.
        assert!(!g.interferes(entity(x, &f), entity(y, &f)));
    }

    #[test]
    fn call_clobbers_create_precolored_interference() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.call(0, vec![], None);
        b.ret(Some(x.into())); // x live across the call
        let f = b.finish();
        let l = Liveness::compute(&f);
        let clob = [PReg(0), PReg(1)];
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &clob);
        let xe = entity(x, &f);
        let p0 = reg_to_entity(PReg(0).into(), f.vreg_count) as u32;
        let p1 = reg_to_entity(PReg(1).into(), f.vreg_count) as u32;
        assert!(g.interferes(xe, p0));
        assert!(g.interferes(xe, p1));
        assert!(g.is_precolored(p0));
        assert_eq!(g.preg_number(p0), 0);
    }

    #[test]
    fn value_not_live_across_call_untouched_by_clobbers() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.store(x.into(), x.into(), 0); // x dead before the call
        b.call(0, vec![], None);
        b.ret(None);
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[PReg(0)]);
        let xe = entity(x, &f);
        let p0 = reg_to_entity(PReg(0).into(), f.vreg_count) as u32;
        assert!(!g.interferes(xe, p0));
    }

    #[test]
    fn use_def_weights_scale_with_freq() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.ret(Some(x.into()));
        let mut f = b.finish();
        f.blocks[0].freq = 7.0;
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        // One def + one use, each weighted 7.
        assert_eq!(g.use_def_weight[entity(x, &f) as usize], 14.0);
    }

    #[test]
    fn different_class_not_in_graph() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let fl = b.new_vreg_of(RegClass::Float);
        b.mov_imm(x, 1);
        b.mov_imm(fl, 2);
        b.bin(BinOp::Add, x, x.into(), x.into());
        b.push(dra_ir::Inst::Bin {
            op: BinOp::Add,
            dst: Reg::Virt(fl),
            lhs: fl.into(),
            rhs: fl.into(),
        });
        b.ret(Some(x.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        assert_eq!(g.degree(entity(fl, &f)), 0, "float vreg absent from int graph");
        assert_eq!(g.use_def_weight[entity(fl, &f) as usize], 0.0);
    }
}
