//! Interference graph construction.
//!
//! Nodes are liveness *entities* (virtual registers, then physical
//! registers — see [`dra_ir::liveness`]). Edges connect co-live values; a
//! move's source is excluded from interfering with its destination at the
//! move itself so the pair remains coalescible (Chaitin's refinement).
//!
//! # Representation
//!
//! The graph is a **hybrid**: a triangular [`BitMatrix`] answers
//! `interferes(a, b)` in O(1), and per-node adjacency vectors (`Vec<u32>`,
//! built append-only and deduplicated *through* the matrix) give O(degree)
//! neighbor iteration. Degrees are tracked incrementally as edges land.
//! Compared with the `Vec<HashSet<u32>>` this replaced, membership and
//! insertion are single word operations, neighbor walks are contiguous
//! loads, and the whole structure costs `n(n+1)/2` bits plus `2·E` u32s
//! instead of per-node hash tables.
//!
//! The node count is sized to the entities the function can actually
//! reference — `vreg_count` plus the *used* physical registers (the
//! highest-numbered one appearing in the body or the clobber list) — not
//! the full `MAX_PREGS` window, so 2-register functions no longer carry
//! 64 physical-register nodes.

use dra_ir::bitset::BitMatrix;
use dra_ir::liveness::{reg_to_entity, Liveness};
use dra_ir::{Function, Inst, PReg, Reg, RegClass};

/// One move instruction's endpoints, as entity ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MoveRef {
    /// Entity of the move destination.
    pub dst: u32,
    /// Entity of the move source.
    pub src: u32,
}

/// An undirected interference graph over entities, plus the move list.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    n: usize,
    vreg_count: u32,
    bits: BitMatrix,
    adj: Vec<Vec<u32>>,
    degree: Vec<u32>,
    /// All register-to-register moves of the allocated class.
    pub moves: Vec<MoveRef>,
    /// Spill metric per entity: Σ freq of blocks containing uses/defs.
    pub use_def_weight: Vec<f64>,
}

/// `1 +` the highest physical-register number the graph must model: any
/// appearing in the function body plus the call-clobber list.
fn used_preg_limit(f: &Function, call_clobbers: &[PReg]) -> usize {
    let mut max: Option<u8> = call_clobbers.iter().map(|p| p.number()).max();
    for inst in f.iter_insts() {
        for r in inst.accesses() {
            if let Reg::Phys(p) = r {
                max = Some(max.map_or(p.number(), |m| m.max(p.number())));
            }
        }
    }
    max.map_or(0, |m| m as usize + 1)
}

impl InterferenceGraph {
    /// Build the graph for the registers of `class` in `f`.
    ///
    /// `call_clobbers` lists physical registers treated as defined by every
    /// `Call` — values live across a call then interfere with them, forcing
    /// the allocator to keep such values in callee-saved registers or spill
    /// them, as on a real machine.
    pub fn build(
        f: &Function,
        liveness: &Liveness,
        class: RegClass,
        call_clobbers: &[PReg],
    ) -> InterferenceGraph {
        let vreg_count = f.vreg_count;
        let n = vreg_count as usize + used_preg_limit(f, call_clobbers);
        // All backing storage comes from the per-thread arena (fresh
        // allocations when reuse is off or the pool is dry); see
        // [`crate::scratch`].
        let mut g = InterferenceGraph {
            n,
            vreg_count,
            bits: crate::scratch::take_matrix(n),
            adj: crate::scratch::take_adj(n),
            degree: crate::scratch::take_u32_zeroed(n),
            moves: crate::scratch::take_moves(),
            use_def_weight: crate::scratch::take_f64_zeroed(n),
        };

        // Scratch buffers reused across blocks and instructions.
        let mut live = dra_ir::scratch::take_set(liveness.num_entities);
        let mut defs: Vec<u32> = crate::scratch::take_u32();
        let mut uses: Vec<u32> = crate::scratch::take_u32();
        let mut all_defs: Vec<u32> = crate::scratch::take_u32();

        for (b, blk) in f.iter_blocks() {
            // Entities live after each instruction, walked backwards.
            live.copy_from(liveness.block_live_out(b));
            for inst in blk.insts.iter().rev() {
                defs.clear();
                uses.clear();
                defs.extend(
                    inst.defs()
                        .into_iter()
                        .filter(|&r| f.class_of(r) == class)
                        .map(|r| g.entity_checked(r)),
                );
                uses.extend(
                    inst.uses()
                        .into_iter()
                        .filter(|&r| f.class_of(r) == class)
                        .map(|r| g.entity_checked(r)),
                );

                for &e in defs.iter().chain(uses.iter()) {
                    g.use_def_weight[e as usize] += blk.freq;
                }

                // Moves: src does not interfere with dst across the move.
                let mut move_src: Option<u32> = None;
                if let Inst::Mov { .. } = inst {
                    if let (Some(&d), Some(&s)) = (defs.first(), uses.first()) {
                        g.moves.push(MoveRef { dst: d, src: s });
                        move_src = Some(s);
                    }
                }

                // Call clobbers act as additional defs.
                all_defs.clear();
                all_defs.extend_from_slice(&defs);
                if matches!(inst, Inst::Call { .. }) && class == RegClass::Int {
                    for p in call_clobbers {
                        all_defs.push(g.entity_checked((*p).into()));
                    }
                }

                for &d in &all_defs {
                    for l in live.iter() {
                        let l = l as u32;
                        if Some(l) == move_src {
                            continue;
                        }
                        g.add_edge(d, l);
                    }
                }
                // Defs interfere with each other (same program point).
                for i in 0..all_defs.len() {
                    for j in i + 1..all_defs.len() {
                        g.add_edge(all_defs[i], all_defs[j]);
                    }
                }

                for &d in &defs {
                    live.remove(d as usize);
                }
                for &u in &uses {
                    live.insert(u as usize);
                }
            }
        }
        dra_ir::scratch::put_set(live);
        crate::scratch::put_u32(defs);
        crate::scratch::put_u32(uses);
        crate::scratch::put_u32(all_defs);
        g
    }

    /// Return this graph's backing storage to the per-thread arena.
    ///
    /// Consumers that drop a graph whole (rather than adopting its parts
    /// via [`InterferenceGraph::into_parts`]) should call this in compile
    /// hot paths; dropping is always safe, just slower.
    pub fn recycle(self) {
        crate::scratch::put_matrix(self.bits);
        crate::scratch::put_adj(self.adj);
        crate::scratch::put_u32(self.degree);
        crate::scratch::put_moves(self.moves);
        crate::scratch::put_f64(self.use_def_weight);
    }

    /// Map `r` to its entity id, asserting it fits the sized node range.
    fn entity_checked(&self, r: Reg) -> u32 {
        let e = reg_to_entity(r, self.vreg_count);
        assert!(
            e < self.n,
            "entity {e} ({r}) out of range for graph sized {}",
            self.n
        );
        e as u32
    }

    /// Number of entities (nodes): `vreg_count + preg_limit`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Physical registers modeled by the graph: entities
    /// `vreg_count .. vreg_count + preg_limit` are precolored. This is the
    /// *used* register window, not `MAX_PREGS`.
    pub fn preg_limit(&self) -> usize {
        self.n - self.vreg_count as usize
    }

    /// The analyzed function's virtual-register count.
    pub fn vreg_count(&self) -> u32 {
        self.vreg_count
    }

    /// Is `e` a precolored (physical-register) entity?
    pub fn is_precolored(&self, e: u32) -> bool {
        e >= self.vreg_count
    }

    /// The physical register number of a precolored entity.
    ///
    /// # Panics
    ///
    /// Panics if `e` is a virtual-register entity.
    pub fn preg_number(&self, e: u32) -> u8 {
        assert!(self.is_precolored(e), "entity {e} is virtual");
        (e - self.vreg_count) as u8
    }

    /// Add an undirected edge (self-edges ignored, duplicates deduped
    /// through the bit-matrix).
    pub fn add_edge(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "edge ({a},{b}) out of range for graph sized {}",
            self.n
        );
        if self.bits.set(a as usize, b as usize) {
            self.adj[a as usize].push(b);
            self.adj[b as usize].push(a);
            self.degree[a as usize] += 1;
            self.degree[b as usize] += 1;
        }
    }

    /// Do `a` and `b` interfere? O(1) bit-matrix probe.
    pub fn interferes(&self, a: u32, b: u32) -> bool {
        if (a as usize) >= self.n || (b as usize) >= self.n {
            return false;
        }
        self.bits.contains(a as usize, b as usize)
    }

    /// Neighbors of `e`, in edge-insertion order.
    pub fn neighbors(&self, e: u32) -> impl Iterator<Item = u32> + '_ {
        self.adjacency(e).iter().copied()
    }

    /// Neighbor slice of `e` (empty for out-of-range entities).
    pub fn adjacency(&self, e: u32) -> &[u32] {
        self.adj.get(e as usize).map_or(&[], |v| v.as_slice())
    }

    /// Degree of `e`.
    pub fn degree(&self, e: u32) -> usize {
        self.degree.get(e as usize).map_or(0, |&d| d as usize)
    }

    /// The O(1)-membership edge matrix.
    pub fn bit_matrix(&self) -> &BitMatrix {
        &self.bits
    }

    /// Decompose into `(bit-matrix, adjacency lists, degrees)` so a
    /// consumer (the IRC worklists) can take ownership without copying.
    pub fn into_parts(self) -> (BitMatrix, Vec<Vec<u32>>, Vec<u32>, Vec<MoveRef>, Vec<f64>) {
        (self.bits, self.adj, self.degree, self.moves, self.use_def_weight)
    }
}

/// The `Vec<HashSet<u32>>` build this module replaced, kept as the testing
/// and benchmarking oracle: the property suite pins the bit-matrix build
/// equal to it (edges, degrees, moves, weights), and the `irc_build`
/// criterion bench measures the speedup against it.
pub mod reference {
    use super::MoveRef;
    use dra_ir::liveness::{reg_to_entity, Liveness, MAX_PREGS};
    use dra_ir::{Function, Inst, PReg, RegClass};
    use std::collections::HashSet;

    /// Hash-set adjacency graph over the full `vreg_count + MAX_PREGS`
    /// entity window (the historical sizing).
    pub struct RefGraph {
        /// Per-entity neighbor sets.
        pub adj: Vec<HashSet<u32>>,
        /// Moves of the allocated class.
        pub moves: Vec<MoveRef>,
        /// Σ freq of blocks containing uses/defs, per entity.
        pub use_def_weight: Vec<f64>,
    }

    impl RefGraph {
        /// Do `a` and `b` interfere?
        pub fn interferes(&self, a: u32, b: u32) -> bool {
            self.adj[a as usize].contains(&b)
        }

        /// Degree of `e`.
        pub fn degree(&self, e: u32) -> usize {
            self.adj[e as usize].len()
        }
    }

    /// The pre-bitset construction algorithm, preserved verbatim.
    pub fn build(
        f: &Function,
        liveness: &Liveness,
        class: RegClass,
        call_clobbers: &[PReg],
    ) -> RefGraph {
        let vreg_count = f.vreg_count;
        let n = vreg_count as usize + MAX_PREGS;
        let mut g = RefGraph {
            adj: vec![HashSet::new(); n],
            moves: Vec::new(),
            use_def_weight: vec![0.0; n],
        };
        let add_edge = |adj: &mut Vec<HashSet<u32>>, a: u32, b: u32| {
            if a != b {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        };

        for (b, blk) in f.iter_blocks() {
            let mut live: HashSet<u32> = liveness
                .block_live_out(b)
                .iter()
                .map(|e| e as u32)
                .collect();
            for inst in blk.insts.iter().rev() {
                let defs: Vec<u32> = inst
                    .defs()
                    .into_iter()
                    .filter(|&r| f.class_of(r) == class)
                    .map(|r| reg_to_entity(r, vreg_count) as u32)
                    .collect();
                let uses: Vec<u32> = inst
                    .uses()
                    .into_iter()
                    .filter(|&r| f.class_of(r) == class)
                    .map(|r| reg_to_entity(r, vreg_count) as u32)
                    .collect();

                for &e in defs.iter().chain(uses.iter()) {
                    g.use_def_weight[e as usize] += blk.freq;
                }

                let mut move_src: Option<u32> = None;
                if let Inst::Mov { .. } = inst {
                    if let (Some(&d), Some(&s)) = (defs.first(), uses.first()) {
                        g.moves.push(MoveRef { dst: d, src: s });
                        move_src = Some(s);
                    }
                }

                let mut all_defs = defs.clone();
                if matches!(inst, Inst::Call { .. }) && class == RegClass::Int {
                    for p in call_clobbers {
                        all_defs.push(reg_to_entity((*p).into(), vreg_count) as u32);
                    }
                }

                for &d in &all_defs {
                    for &l in &live {
                        if Some(l) == move_src {
                            continue;
                        }
                        add_edge(&mut g.adj, d, l);
                    }
                }
                for i in 0..all_defs.len() {
                    for j in i + 1..all_defs.len() {
                        add_edge(&mut g.adj, all_defs[i], all_defs[j]);
                    }
                }

                for &d in &defs {
                    live.remove(&d);
                }
                for &u in &uses {
                    live.insert(u);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BinOp, FunctionBuilder, Liveness, Reg, VReg};

    fn entity(v: VReg, f: &Function) -> u32 {
        reg_to_entity(v.into(), f.vreg_count) as u32
    }

    #[test]
    fn overlapping_values_interfere() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov_imm(y, 2);
        b.bin(BinOp::Add, z, x.into(), y.into());
        b.ret(Some(z.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        assert!(g.interferes(entity(x, &f), entity(y, &f)));
        assert!(!g.interferes(entity(x, &f), entity(z, &f)), "x dies at z's def");
    }

    #[test]
    fn move_operands_do_not_interfere() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into()); // y = x; x dead afterwards
        b.ret(Some(y.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        assert!(!g.interferes(entity(x, &f), entity(y, &f)));
        assert_eq!(g.moves.len(), 1);
        assert_eq!(
            g.moves[0],
            MoveRef {
                dst: entity(y, &f),
                src: entity(x, &f)
            }
        );
    }

    #[test]
    fn move_with_live_source_still_interferes_via_later_defs() {
        // y = x; x used later; x must stay distinct from any def while live.
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into());
        b.bin(BinOp::Add, z, x.into(), y.into());
        b.ret(Some(z.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        // x live across y's def, but it's the move source: no edge from the
        // move itself. However y and x are both live at z's def? No: both
        // die there. x-y interference would only appear if y were redefined
        // while x lives.
        assert!(!g.interferes(entity(x, &f), entity(y, &f)));
    }

    #[test]
    fn call_clobbers_create_precolored_interference() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.call(0, vec![], None);
        b.ret(Some(x.into())); // x live across the call
        let f = b.finish();
        let l = Liveness::compute(&f);
        let clob = [PReg(0), PReg(1)];
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &clob);
        let xe = entity(x, &f);
        let p0 = reg_to_entity(PReg(0).into(), f.vreg_count) as u32;
        let p1 = reg_to_entity(PReg(1).into(), f.vreg_count) as u32;
        assert!(g.interferes(xe, p0));
        assert!(g.interferes(xe, p1));
        assert!(g.is_precolored(p0));
        assert_eq!(g.preg_number(p0), 0);
    }

    #[test]
    fn value_not_live_across_call_untouched_by_clobbers() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.store(x.into(), x.into(), 0); // x dead before the call
        b.call(0, vec![], None);
        b.ret(None);
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[PReg(0)]);
        let xe = entity(x, &f);
        let p0 = reg_to_entity(PReg(0).into(), f.vreg_count) as u32;
        assert!(!g.interferes(xe, p0));
    }

    #[test]
    fn use_def_weights_scale_with_freq() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.ret(Some(x.into()));
        let mut f = b.finish();
        f.blocks[0].freq = 7.0;
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        // One def + one use, each weighted 7.
        assert_eq!(g.use_def_weight[entity(x, &f) as usize], 14.0);
    }

    #[test]
    fn different_class_not_in_graph() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let fl = b.new_vreg_of(RegClass::Float);
        b.mov_imm(x, 1);
        b.mov_imm(fl, 2);
        b.bin(BinOp::Add, x, x.into(), x.into());
        b.push(dra_ir::Inst::Bin {
            op: BinOp::Add,
            dst: Reg::Virt(fl),
            lhs: fl.into(),
            rhs: fl.into(),
        });
        b.ret(Some(x.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        assert_eq!(g.degree(entity(fl, &f)), 0, "float vreg absent from int graph");
        assert_eq!(g.use_def_weight[entity(fl, &f) as usize], 0.0);
    }

    #[test]
    fn graph_sized_to_used_registers() {
        // No physical registers anywhere: the graph is exactly the vregs.
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into());
        b.ret(Some(y.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[]);
        assert_eq!(g.num_nodes(), f.vreg_count as usize);
        assert_eq!(g.preg_limit(), 0);

        // A clobber list widens the window to cover it.
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &[PReg(5)]);
        assert_eq!(g.preg_limit(), 6);
        assert_eq!(g.num_nodes(), f.vreg_count as usize + 6);
    }

    #[test]
    fn float_class_build_excludes_bare_pregs() {
        // Bare physical registers are Int by convention
        // (`Function::class_of`); a float-class graph must neither weight
        // them nor route call clobbers into them.
        let mut b = FunctionBuilder::new("f");
        let fl = b.new_vreg_of(RegClass::Float);
        let fl2 = b.new_vreg_of(RegClass::Float);
        b.mov_imm(fl, 1);
        b.push(dra_ir::Inst::Mov {
            dst: Reg::Virt(fl2),
            src: Reg::Phys(PReg(3)),
        });
        b.call(0, vec![], None);
        b.push(dra_ir::Inst::Bin {
            op: BinOp::Add,
            dst: Reg::Virt(fl),
            lhs: fl.into(),
            rhs: fl2.into(),
        });
        b.ret(Some(fl.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let g = InterferenceGraph::build(&f, &l, RegClass::Float, &[PReg(0), PReg(1)]);
        let p3 = reg_to_entity(Reg::Phys(PReg(3)), f.vreg_count) as u32;
        let p0 = reg_to_entity(Reg::Phys(PReg(0)), f.vreg_count) as u32;
        assert_eq!(g.use_def_weight[p3 as usize], 0.0, "bare preg is Int-class");
        assert_eq!(g.degree(p0), 0, "clobbers only apply to the Int graph");
        // The float move from a preg source is not a float-class move.
        assert!(g.moves.is_empty(), "cross-class mov is not coalescible");
        // The float values themselves still interfere across the call.
        assert!(g.interferes(entity(fl, &f), entity(fl2, &f)));
    }

    #[test]
    fn matches_reference_build_on_clobbered_call() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into());
        b.call(0, vec![], None);
        b.bin(BinOp::Add, y, y.into(), x.into());
        b.ret(Some(y.into()));
        let f = b.finish();
        let l = Liveness::compute(&f);
        let clob = [PReg(0), PReg(2)];
        let g = InterferenceGraph::build(&f, &l, RegClass::Int, &clob);
        let r = reference::build(&f, &l, RegClass::Int, &clob);
        assert_eq!(g.moves, r.moves);
        for e in 0..g.num_nodes() as u32 {
            assert_eq!(g.degree(e), r.degree(e), "degree of {e}");
            let mut ns: Vec<u32> = g.neighbors(e).collect();
            ns.sort_unstable();
            let mut rs: Vec<u32> = r.adj[e as usize].iter().copied().collect();
            rs.sort_unstable();
            assert_eq!(ns, rs, "neighbors of {e}");
            assert_eq!(g.use_def_weight[e as usize], r.use_def_weight[e as usize]);
        }
    }
}
