//! Spill code insertion.
//!
//! The classic rewrite: a spilled value gets a frame slot; every use is
//! preceded by a reload into a fresh short-lived temporary and every def is
//! followed by a store from a fresh temporary. The fresh temporaries have
//! tiny live ranges, so the next allocation round's pressure strictly
//! drops.

use dra_ir::{Function, Inst, Reg, SpillSlot, VReg};
use std::collections::HashMap;

/// Rewrite `f` so that each register in `spilled` lives in a fresh spill
/// slot, with reloads before uses and stores after defs.
///
/// Returns the number of spill instructions inserted.
pub fn rewrite_spills(f: &mut Function, spilled: &[VReg]) -> usize {
    if spilled.is_empty() {
        return 0;
    }
    let mut slot_of: HashMap<VReg, SpillSlot> = HashMap::new();
    for &v in spilled {
        let slot = SpillSlot(f.spill_slots);
        f.spill_slots += 1;
        slot_of.insert(v, slot);
    }

    let mut inserted = 0;
    let classes: Vec<_> = spilled.iter().map(|&v| f.vreg_class(v)).collect();
    let class_of: HashMap<VReg, dra_ir::RegClass> =
        spilled.iter().copied().zip(classes).collect();

    for bi in 0..f.blocks.len() {
        let old = std::mem::take(&mut f.blocks[bi].insts);
        let mut new_insts = Vec::with_capacity(old.len());
        for mut inst in old {
            // Temporaries for this instruction, one per distinct spilled
            // register used and/or defined.
            let uses: Vec<VReg> = inst
                .uses()
                .iter()
                .filter_map(|r| r.as_virt())
                .filter(|v| slot_of.contains_key(v))
                .collect();
            let defs: Vec<VReg> = inst
                .defs()
                .iter()
                .filter_map(|r| r.as_virt())
                .filter(|v| slot_of.contains_key(v))
                .collect();
            if uses.is_empty() && defs.is_empty() {
                new_insts.push(inst);
                continue;
            }
            let mut temp_of: HashMap<VReg, VReg> = HashMap::new();
            for v in uses.iter().chain(defs.iter()) {
                temp_of
                    .entry(*v)
                    .or_insert_with(|| f.new_vreg_of(class_of[v]));
            }
            // Reloads before.
            let mut seen = Vec::new();
            for v in &uses {
                if seen.contains(v) {
                    continue;
                }
                seen.push(*v);
                new_insts.push(Inst::SpillLoad {
                    dst: Reg::Virt(temp_of[v]),
                    slot: slot_of[v],
                });
                inserted += 1;
            }
            inst.map_regs(|r| match r.as_virt().and_then(|v| temp_of.get(&v)) {
                Some(&t) => Reg::Virt(t),
                None => r,
            });
            new_insts.push(inst);
            // Stores after.
            let mut seen = Vec::new();
            for v in &defs {
                if seen.contains(v) {
                    continue;
                }
                seen.push(*v);
                new_insts.push(Inst::SpillStore {
                    src: Reg::Virt(temp_of[v]),
                    slot: slot_of[v],
                });
                inserted += 1;
            }
        }
        f.blocks[bi].insts = new_insts;
    }
    f.recompute_cfg();
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BinOp, FunctionBuilder, Liveness};

    #[test]
    fn use_gets_reload_def_gets_store() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        b.bin_imm(BinOp::Add, y, x.into(), 2);
        b.ret(Some(y.into()));
        let mut f = b.finish();
        let n = rewrite_spills(&mut f, &[x]);
        assert_eq!(n, 2, "one store after def, one reload before use");
        let insts: Vec<String> = f.iter_insts().map(|i| i.to_string()).collect();
        assert!(insts[1].contains("spill"), "{insts:?}");
        assert!(insts[2].contains("reload"), "{insts:?}");
        assert_eq!(f.spill_slots, 1);
        // The original vreg no longer appears.
        assert!(f
            .iter_insts()
            .all(|i| i.accesses().iter().all(|r| r.as_virt() != Some(x))));
    }

    #[test]
    fn spilling_reduces_pressure() {
        let mut b = FunctionBuilder::new("f");
        let vs: Vec<_> = (0..6).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let before = Liveness::compute(&f).max_pressure(&f);
        rewrite_spills(&mut f, &[vs[0], vs[1], vs[2]]);
        let after = Liveness::compute(&f).max_pressure(&f);
        assert!(after < before, "pressure {before} -> {after}");
    }

    #[test]
    fn repeated_use_in_one_inst_reloads_once() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 3);
        b.bin(BinOp::Mul, y, x.into(), x.into());
        b.ret(Some(y.into()));
        let mut f = b.finish();
        let n = rewrite_spills(&mut f, &[x]);
        assert_eq!(n, 2, "store + single reload for x*x");
    }

    #[test]
    fn use_and_def_in_same_inst_share_temp() {
        // x = x + 1 with x spilled: reload, add, store.
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 0);
        b.bin_imm(BinOp::Add, x, x.into(), 1);
        b.ret(Some(x.into()));
        let mut f = b.finish();
        rewrite_spills(&mut f, &[x]);
        // Find the add; its src and dst temp must be the same vreg.
        let add = f
            .iter_insts()
            .find_map(|i| match i {
                Inst::BinImm { dst, src, .. } => Some((*dst, *src)),
                _ => None,
            })
            .unwrap();
        assert_eq!(add.0, add.1);
    }

    #[test]
    fn empty_spill_list_is_noop() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.ret(Some(x.into()));
        let mut f = b.finish();
        let before = f.clone();
        assert_eq!(rewrite_spills(&mut f, &[]), 0);
        assert_eq!(f, before);
    }

    #[test]
    fn distinct_spills_get_distinct_slots() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov_imm(y, 2);
        b.bin(BinOp::Add, x, x.into(), y.into());
        b.ret(Some(x.into()));
        let mut f = b.finish();
        rewrite_spills(&mut f, &[x, y]);
        assert_eq!(f.spill_slots, 2);
        let mut slots: Vec<u32> = f
            .iter_insts()
            .filter_map(|i| match i {
                Inst::SpillLoad { slot, .. } | Inst::SpillStore { slot, .. } => Some(slot.0),
                _ => None,
            })
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots, vec![0, 1]);
    }
}
