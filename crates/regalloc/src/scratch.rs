//! Per-thread buffer pools for the allocator's hot structures.
//!
//! The interference graph and the dense IRC engine rebuild large indexed
//! arrays (bit-matrix, adjacency lists, degree/weight vectors, CSR move
//! lists) for every function — and again for every spill round. At corpus
//! scale that allocation churn dominates; these pools recycle the buffers
//! across compiles on the same worker thread.
//!
//! The global switch is [`dra_ir::scratch::set_reuse`] — one flag governs
//! every arena in the workspace. Ownership rules are the same as in
//! `dra_ir::scratch` (and DESIGN.md §13): pools are thread-local, every
//! taken buffer is fully re-initialized, and results are bit-identical
//! with reuse on or off.

use crate::interference::MoveRef;
use dra_ir::bitset::BitMatrix;
use dra_ir::scratch::reuse_enabled;
use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

// Per-kind carcass caps: generous enough that one batch worker's steady
// state never drops a buffer, small enough that an outlier function
// cannot pin unbounded memory.
const CAP_SMALL: usize = 8;
const CAP_VECS: usize = 32;

#[derive(Default)]
struct Pool {
    matrices: Vec<BitMatrix>,
    adjs: Vec<Vec<Vec<u32>>>,
    u32s: Vec<Vec<u32>>,
    f64s: Vec<Vec<f64>>,
    moves: Vec<Vec<MoveRef>>,
}

fn with_pool<T>(f: impl FnOnce(&mut Pool) -> T) -> T {
    POOL.with(|p| f(&mut p.borrow_mut()))
}

/// Take an empty triangular bit-matrix over `0..n`.
pub fn take_matrix(n: usize) -> BitMatrix {
    if !reuse_enabled() {
        return BitMatrix::new(n);
    }
    with_pool(|p| match p.matrices.pop() {
        Some(mut m) => {
            m.reset(n);
            m
        }
        None => BitMatrix::new(n),
    })
}

/// Return a bit-matrix to the pool.
pub fn put_matrix(m: BitMatrix) {
    if !reuse_enabled() {
        return;
    }
    with_pool(|p| {
        if p.matrices.len() < CAP_SMALL {
            p.matrices.push(m);
        }
    });
}

/// Take an adjacency-list spine of exactly `n` empty rows; recycled rows
/// keep their capacity, which is where most of the win comes from.
pub fn take_adj(n: usize) -> Vec<Vec<u32>> {
    if !reuse_enabled() {
        return vec![Vec::new(); n];
    }
    with_pool(|p| match p.adjs.pop() {
        Some(mut a) => {
            a.truncate(n);
            for row in a.iter_mut() {
                row.clear();
            }
            a.resize_with(n, Vec::new);
            a
        }
        None => vec![Vec::new(); n],
    })
}

/// Return an adjacency-list spine to the pool.
pub fn put_adj(a: Vec<Vec<u32>>) {
    if !reuse_enabled() {
        return;
    }
    with_pool(|p| {
        if p.adjs.len() < CAP_SMALL {
            p.adjs.push(a);
        }
    });
}

/// Take an empty `Vec<u32>`.
pub fn take_u32() -> Vec<u32> {
    if !reuse_enabled() {
        return Vec::new();
    }
    with_pool(|p| p.u32s.pop().unwrap_or_default())
}

/// Take a `Vec<u32>` of `n` zeros.
pub fn take_u32_zeroed(n: usize) -> Vec<u32> {
    let mut v = take_u32();
    v.clear();
    v.resize(n, 0);
    v
}

/// Return a `Vec<u32>` to the pool (cleared on take, not here).
pub fn put_u32(mut v: Vec<u32>) {
    if !reuse_enabled() {
        return;
    }
    v.clear();
    with_pool(|p| {
        if p.u32s.len() < CAP_VECS {
            p.u32s.push(v);
        }
    });
}

/// Take a `Vec<f64>` of `n` zeros.
pub fn take_f64_zeroed(n: usize) -> Vec<f64> {
    let mut v = if !reuse_enabled() {
        Vec::new()
    } else {
        with_pool(|p| p.f64s.pop().unwrap_or_default())
    };
    v.clear();
    v.resize(n, 0.0);
    v
}

/// Return a `Vec<f64>` to the pool.
pub fn put_f64(mut v: Vec<f64>) {
    if !reuse_enabled() {
        return;
    }
    v.clear();
    with_pool(|p| {
        if p.f64s.len() < CAP_SMALL {
            p.f64s.push(v);
        }
    });
}

/// Take an empty move list.
pub fn take_moves() -> Vec<MoveRef> {
    if !reuse_enabled() {
        return Vec::new();
    }
    with_pool(|p| p.moves.pop().unwrap_or_default())
}

/// Return a move list to the pool.
pub fn put_moves(mut v: Vec<MoveRef>) {
    if !reuse_enabled() {
        return;
    }
    v.clear();
    with_pool(|p| {
        if p.moves.len() < CAP_SMALL {
            p.moves.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_come_back_fresh() {
        let mut m = take_matrix(10);
        m.set(1, 2);
        put_matrix(m);
        let m2 = take_matrix(20);
        assert_eq!(m2.dim(), 20);
        assert!(m2.is_empty());

        let mut a = take_adj(3);
        a[0].push(7);
        put_adj(a);
        let a2 = take_adj(5);
        assert_eq!(a2.len(), 5);
        assert!(a2.iter().all(|r| r.is_empty()));

        put_u32(vec![1, 2, 3]);
        assert!(take_u32().is_empty());
        assert_eq!(take_u32_zeroed(4), vec![0; 4]);
        assert_eq!(take_f64_zeroed(2), vec![0.0; 2]);
    }
}
