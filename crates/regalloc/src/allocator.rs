//! The pluggable [`Allocator`] trait (DESIGN.md §12).
//!
//! Every allocation engine in this crate — the dense IRC engine, the
//! frozen reference engine, optimal spilling, and differential coalesce —
//! is exposed behind one trait so downstream consumers (the low-end
//! pipeline, the symbolic checker, the property tests) handle a single
//! uniform artifact: an [`Allocation`], which bundles the allocated
//! function with the [`AllocationRecord`] the checker replays.
//!
//! The record is captured *inside* each engine at the moment of the final
//! successful coloring round — after every spill rewrite, before color
//! substitution — so the symbolic function and the vreg → color assignment
//! are exactly the pair the engine's own rewrite consumed. The checker
//! re-derives the rewrite from that pair and abstract-interprets the
//! result; see [`crate::checker`].

use crate::coalesce::{coalesce_allocate_recorded, CoalesceConfig, CoalesceStats};
use crate::irc::{self, AllocConfig, AllocError, AllocStats};
use crate::ospill::{ospill_allocate_recorded, OspillConfig, OspillStats};
use dra_ir::{Function, PReg, Program, RegClass};

/// The checker-facing snapshot of one function's allocation: the symbolic
/// function entering the final coloring round plus the assignment that
/// round produced. Substituting `assignment` into `symbolic` (and deleting
/// the moves that become trivial) reproduces the allocated function.
#[derive(Clone, Debug)]
pub struct AllocationRecord {
    /// The function after all spill rewriting, before color substitution.
    pub symbolic: Function,
    /// `assignment[v]` is the color of `VReg(v)`, `None` for vregs of
    /// another class or vregs dead/unreferenced in the final round.
    pub assignment: Vec<Option<u8>>,
    /// Register class that was allocated.
    pub class: RegClass,
    /// Color count (the paper's `RegN`).
    pub k: u16,
    /// Physical registers the allocation treated as call-clobbered.
    pub call_clobbers: Vec<PReg>,
}

/// Per-engine statistics, unified for trait consumers.
#[derive(Clone, Debug, PartialEq)]
pub enum AllocatorStats {
    /// Stats of a plain IRC run (dense or reference engine).
    Irc(AllocStats),
    /// Stats of the optimal-spill pipeline.
    Ospill(OspillStats),
    /// Stats of differential coalesce.
    Coalesce(CoalesceStats),
}

impl AllocatorStats {
    /// Total values sent to memory, whichever engine produced the stats.
    pub fn spilled(&self) -> usize {
        match self {
            AllocatorStats::Irc(s) => s.spilled_vregs,
            AllocatorStats::Ospill(s) => s.pressure_spills + s.coloring_spills,
            AllocatorStats::Coalesce(s) => s.pressure_spills + s.coloring_spills,
        }
    }

    /// Moves removed by coalescing, whichever engine produced the stats.
    pub fn moves_coalesced(&self) -> usize {
        match self {
            AllocatorStats::Irc(s) => s.moves_coalesced,
            AllocatorStats::Ospill(s) => s.moves_coalesced,
            AllocatorStats::Coalesce(s) => s.moves_coalesced,
        }
    }

    /// Fold `other` into `self` with the same per-field rules the
    /// engine-specific `*_allocate_program` aggregators use (`rounds` is a
    /// max, everything else sums). Both sides must come from the same
    /// engine kind.
    ///
    /// # Panics
    ///
    /// Panics if `self` and `other` are from different engines — the
    /// aggregation would be meaningless.
    pub fn merge(&mut self, other: &AllocatorStats) {
        match (self, other) {
            (AllocatorStats::Irc(t), AllocatorStats::Irc(s)) => merge_irc(t, s),
            (AllocatorStats::Ospill(t), AllocatorStats::Ospill(s)) => {
                t.pressure_spills += s.pressure_spills;
                t.coloring_spills += s.coloring_spills;
                t.moves_coalesced += s.moves_coalesced;
            }
            (AllocatorStats::Coalesce(t), AllocatorStats::Coalesce(s)) => {
                t.pressure_spills += s.pressure_spills;
                t.coloring_spills += s.coloring_spills;
                t.moves_coalesced += s.moves_coalesced;
                t.final_cost += s.final_cost;
                merge_irc(&mut t.irc, &s.irc);
            }
            (t, s) => panic!("cannot merge allocator stats of different kinds: {t:?} vs {s:?}"),
        }
    }
}

fn merge_irc(t: &mut AllocStats, s: &AllocStats) {
    t.rounds = t.rounds.max(s.rounds);
    t.spilled_vregs += s.spilled_vregs;
    t.moves_coalesced += s.moves_coalesced;
    t.liveness_nanos += s.liveness_nanos;
    t.build_nanos += s.build_nanos;
    t.color_nanos += s.color_nanos;
    t.simplify_steps += s.simplify_steps;
    t.coalesce_steps += s.coalesce_steps;
    t.freeze_steps += s.freeze_steps;
    t.spill_selects += s.spill_selects;
}

/// The uniform artifact of [`Allocator::allocate`]: the allocated function,
/// the checker snapshot, and the engine's statistics.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// The fully allocated (physical) function.
    pub func: Function,
    /// Snapshot for [`crate::checker::check_allocation`].
    pub record: AllocationRecord,
    /// Engine statistics.
    pub stats: AllocatorStats,
}

/// A register-allocation engine.
///
/// Implementations derive their engine-specific configuration from the
/// common [`AllocConfig`]; fields an engine does not consume (e.g.
/// `spill_metric` for optimal spilling, which fixes its own metric) are
/// ignored, matching the engine's standalone entry point.
pub trait Allocator {
    /// Short stable name, used in telemetry and reports.
    fn name(&self) -> &'static str;

    /// Allocate `f` in place. When `record` is true, also return the
    /// [`AllocationRecord`] snapshot for the checker (always `Some` on
    /// success with `record == true`).
    ///
    /// # Errors
    ///
    /// [`AllocError`] when the engine fails to converge.
    fn allocate_fn(
        &self,
        f: &mut Function,
        cfg: &AllocConfig,
        record: bool,
    ) -> Result<(AllocatorStats, Option<AllocationRecord>), AllocError>;

    /// Allocate a copy of `f`, returning the uniform [`Allocation`]
    /// artifact (always with a record).
    ///
    /// # Errors
    ///
    /// Same as [`Allocator::allocate_fn`].
    fn allocate(&self, f: &Function, cfg: &AllocConfig) -> Result<Allocation, AllocError> {
        let mut work = f.clone();
        let (stats, rec) = self.allocate_fn(&mut work, cfg, true)?;
        let record = rec.expect("allocate_fn must return a record when record=true");
        Ok(Allocation {
            func: work,
            record,
            stats,
        })
    }
}

/// The dense worklist IRC engine ([`crate::irc`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseIrc;

impl Allocator for DenseIrc {
    fn name(&self) -> &'static str {
        "irc-dense"
    }

    fn allocate_fn(
        &self,
        f: &mut Function,
        cfg: &AllocConfig,
        record: bool,
    ) -> Result<(AllocatorStats, Option<AllocationRecord>), AllocError> {
        irc::irc_allocate_recorded(f, cfg, record).map(|(s, r)| (AllocatorStats::Irc(s), r))
    }
}

/// The frozen reference IRC engine ([`crate::irc::reference`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceIrc;

impl Allocator for ReferenceIrc {
    fn name(&self) -> &'static str {
        "irc-reference"
    }

    fn allocate_fn(
        &self,
        f: &mut Function,
        cfg: &AllocConfig,
        record: bool,
    ) -> Result<(AllocatorStats, Option<AllocationRecord>), AllocError> {
        irc::reference::irc_allocate_recorded(f, cfg, record)
            .map(|(s, r)| (AllocatorStats::Irc(s), r))
    }
}

/// The optimal-spill pipeline ([`crate::ospill`]). `spill_metric` is fixed
/// by the engine (global coverage); the rest of the [`AllocConfig`] maps
/// field-for-field onto [`OspillConfig`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Ospill;

impl Allocator for Ospill {
    fn name(&self) -> &'static str {
        "ospill"
    }

    fn allocate_fn(
        &self,
        f: &mut Function,
        cfg: &AllocConfig,
        record: bool,
    ) -> Result<(AllocatorStats, Option<AllocationRecord>), AllocError> {
        let ocfg = OspillConfig {
            k: cfg.k,
            params: cfg.params,
            strategy: cfg.strategy,
            call_clobbers: cfg.call_clobbers.clone(),
            class: cfg.class,
            max_rounds: cfg.max_rounds,
        };
        ospill_allocate_recorded(f, &ocfg, record).map(|(s, r)| (AllocatorStats::Ospill(s), r))
    }
}

/// Differential coalesce ([`crate::coalesce`]). Evaluation knobs
/// (`move_cost`, `eval_limit`, `eval`) take their [`CoalesceConfig::new`]
/// defaults; `params`, `class`, and `call_clobbers` come from the
/// [`AllocConfig`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Coalescing;

impl Allocator for Coalescing {
    fn name(&self) -> &'static str {
        "coalesce"
    }

    fn allocate_fn(
        &self,
        f: &mut Function,
        cfg: &AllocConfig,
        record: bool,
    ) -> Result<(AllocatorStats, Option<AllocationRecord>), AllocError> {
        let ccfg = CoalesceConfig {
            class: cfg.class,
            call_clobbers: cfg.call_clobbers.clone(),
            ..CoalesceConfig::new(cfg.params)
        };
        coalesce_allocate_recorded(f, &ccfg, record).map(|(s, r)| (AllocatorStats::Coalesce(s), r))
    }
}

/// Allocate every function of `p` with one engine, aggregating stats with
/// the same rules as the engine-specific `*_allocate_program` wrappers and
/// collecting one [`AllocationRecord`] per function when `record` is set.
///
/// # Errors
///
/// Propagates the first [`AllocError`] from any function.
pub fn allocate_program(
    alloc: &dyn Allocator,
    p: &mut Program,
    cfg: &AllocConfig,
    record: bool,
) -> Result<(AllocatorStats, Vec<Option<AllocationRecord>>), AllocError> {
    let mut total: Option<AllocatorStats> = None;
    let mut records = Vec::with_capacity(p.funcs.len());
    for f in &mut p.funcs {
        let (s, r) = alloc.allocate_fn(f, cfg, record)?;
        match &mut total {
            Some(t) => t.merge(&s),
            None => total = Some(s),
        }
        records.push(r);
    }
    // An empty program still needs stats of the right kind: run the merge
    // base case through an empty function-less default by kind name.
    let total = total.unwrap_or(AllocatorStats::Irc(AllocStats::default()));
    Ok((total, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_adjgraph::DiffParams;
    use dra_ir::{BinOp, FunctionBuilder};

    fn sample(width: usize) -> Function {
        let mut b = FunctionBuilder::new("sample");
        let vs: Vec<_> = (0..width).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        b.ret(Some(s.into()));
        b.finish()
    }

    fn engines() -> Vec<Box<dyn Allocator>> {
        vec![
            Box::new(DenseIrc),
            Box::new(ReferenceIrc),
            Box::new(Ospill),
            Box::new(Coalescing),
        ]
    }

    #[test]
    fn every_engine_produces_a_record() {
        let f = sample(6);
        let cfg = AllocConfig::differential(DiffParams::new(8, 4));
        for eng in engines() {
            let a = eng.allocate(&f, &cfg).unwrap_or_else(|e| {
                panic!("{} failed: {e}", eng.name());
            });
            assert!(a.func.is_fully_physical(), "{}", eng.name());
            assert_eq!(
                a.record.assignment.len(),
                a.record.symbolic.vreg_count as usize,
                "{}",
                eng.name()
            );
            assert_eq!(a.record.k, 8, "{}", eng.name());
            // Every class vreg referenced by the symbolic function has a
            // color below k.
            for i in a.record.symbolic.iter_insts() {
                for r in i.accesses() {
                    if let Some(v) = r.as_virt() {
                        if a.record.symbolic.vreg_class(v) == a.record.class {
                            let c = a.record.assignment[v.index()]
                                .unwrap_or_else(|| panic!("{}: {v} unassigned", eng.name()));
                            assert!((c as u16) < a.record.k, "{}", eng.name());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn program_aggregation_matches_standalone() {
        let mut p = Program::single(sample(6));
        p.funcs.push(sample(4));
        let cfg = AllocConfig::baseline(4);
        let mut p2 = p.clone();
        let (stats, recs) = allocate_program(&DenseIrc, &mut p2, &cfg, true).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.is_some()));
        let expected = irc::irc_allocate_program(&mut p, &cfg).unwrap();
        match stats {
            AllocatorStats::Irc(s) => {
                assert_eq!(s.rounds, expected.rounds);
                assert_eq!(s.spilled_vregs, expected.spilled_vregs);
                assert_eq!(s.moves_coalesced, expected.moves_coalesced);
            }
            other => panic!("unexpected stats kind {other:?}"),
        }
    }
}
