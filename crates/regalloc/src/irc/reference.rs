//! The set-based IRC engine, preserved verbatim as the oracle for the
//! dense indexed engine in the parent module.
//!
//! This is the implementation the crate shipped before the dense
//! rewrite: `BTreeSet` worklists, `HashSet` membership tests, chain-walk
//! aliasing. It is kept compilable and correct — not fast — so that
//! `tests/proptest_irc_equiv.rs` can assert the dense engine produces
//! **bit-identical** allocations (same colors, same spills, same
//! coalesces, same work counters) on arbitrary programs, and so
//! `benches/irc_color.rs` can measure the speedup against the real
//! former implementation rather than a synthetic stand-in.
//!
//! Mirrors `interference::reference` (the seed's graph build kept as an
//! oracle). Behavioral changes belong in the parent module *and* here
//! only if the contract itself changes; otherwise this file stays
//! frozen.

use super::{overload_coverage, AllocConfig, AllocError, AllocStats, SelectStrategy, SpillMetric};
use crate::interference::{InterferenceGraph, MoveRef};
use crate::spill::rewrite_spills;
use dra_adjgraph::{build_vreg_adjacency, AdjacencyIndex, DiffParams};
use dra_ir::bitset::BitMatrix;
use dra_ir::{Function, Liveness, PReg, Reg, RegClass, VReg};
use std::collections::{BTreeSet, HashSet};

/// Allocate registers for `f` in place with the set-based engine. Same
/// contract as [`super::irc_allocate`], including the work counters.
///
/// # Errors
///
/// [`AllocError::DidNotConverge`] if spill rewriting exceeds
/// `cfg.max_rounds`.
pub fn irc_allocate(f: &mut Function, cfg: &AllocConfig) -> Result<AllocStats, AllocError> {
    irc_allocate_recorded(f, cfg, false).map(|(stats, _)| stats)
}

/// [`irc_allocate`] with optional
/// [`AllocationRecord`](crate::allocator::AllocationRecord) capture; mirrors
/// [`super::irc_allocate_recorded`] so the equivalence suite can assert
/// both engines produce bit-identical records, not just identical code.
///
/// # Errors
///
/// Same as [`irc_allocate`].
pub fn irc_allocate_recorded(
    f: &mut Function,
    cfg: &AllocConfig,
    record: bool,
) -> Result<(AllocStats, Option<crate::allocator::AllocationRecord>), AllocError> {
    let mut stats = AllocStats::default();
    // Vregs created at or beyond this watermark are spill temporaries from
    // earlier rounds; re-spilling them makes no progress, so they carry an
    // effectively infinite spill metric.
    let temp_watermark = f.vreg_count;
    loop {
        if stats.rounds >= cfg.max_rounds {
            return Err(AllocError::DidNotConverge {
                max_rounds: cfg.max_rounds,
            });
        }
        stats.rounds += 1;
        let t0 = std::time::Instant::now();
        let liveness = Liveness::compute(f);
        let t1 = std::time::Instant::now();
        stats.liveness_nanos += (t1 - t0).as_nanos() as u64;
        let ig = InterferenceGraph::build(f, &liveness, cfg.class, &cfg.call_clobbers);
        let adjacency = match cfg.strategy {
            SelectStrategy::Differential => Some(build_vreg_adjacency(f, cfg.class).index()),
            SelectStrategy::Lowest | SelectStrategy::Biased => None,
        };
        let t2 = std::time::Instant::now();
        stats.build_nanos += (t2 - t1).as_nanos() as u64;
        let mut state = IrcState::new(f, ig, adjacency.as_ref(), cfg);
        state.temp_watermark = temp_watermark;
        if cfg.spill_metric == SpillMetric::GlobalCoverage {
            state.coverage = overload_coverage(f, &liveness, cfg);
        }
        state.run();
        stats.simplify_steps += state.simplify_steps;
        stats.coalesce_steps += state.coalesce_steps;
        stats.freeze_steps += state.freeze_steps;
        stats.spill_selects += state.spill_selects;
        if state.spilled_nodes.is_empty() {
            let rec = record.then(|| crate::allocator::AllocationRecord {
                symbolic: f.clone(),
                assignment: (0..state.vreg_count)
                    .map(|v| {
                        (state.vreg_classes[v as usize] == cfg.class)
                            .then(|| state.color[state.get_alias(v) as usize])
                            .flatten()
                    })
                    .collect(),
                class: cfg.class,
                k: cfg.k,
                call_clobbers: cfg.call_clobbers.clone(),
            });
            stats.moves_coalesced = apply_allocation(f, &state, cfg);
            stats.color_nanos += t2.elapsed().as_nanos() as u64;
            return Ok((stats, rec));
        }
        let to_spill: Vec<VReg> = state
            .spilled_nodes
            .iter()
            .map(|&e| VReg(e))
            .collect();
        stats.spilled_vregs += to_spill.len();
        rewrite_spills(f, &to_spill);
        stats.color_nanos += t2.elapsed().as_nanos() as u64;
    }
}

/// Rewrite `f` using the colors in `state`; returns moves deleted.
fn apply_allocation(f: &mut Function, state: &IrcState<'_>, cfg: &AllocConfig) -> usize {
    // Substitute colors for virtual registers of the allocated class.
    for b in &mut f.blocks {
        for i in &mut b.insts {
            i.map_regs(|r| match r {
                Reg::Virt(v) if state.vreg_classes[v.index()] == cfg.class => {
                    let c = state.color[state.get_alias(v.0) as usize]
                        .expect("colored node");
                    Reg::Phys(PReg(c))
                }
                other => other,
            });
        }
    }
    // Delete now-trivial moves (dst == src): these are the coalesced ones.
    let mut removed = 0;
    for b in &mut f.blocks {
        b.insts.retain(|i| {
            if let dra_ir::Inst::Mov { dst, src } = i {
                if dst == src {
                    removed += 1;
                    return false;
                }
            }
            true
        });
    }
    f.recompute_cfg();
    removed
}

/// The worklist state of one build/select round (set-based layout).
struct IrcState<'a> {
    k: usize,
    strategy: SelectStrategy,
    params: DiffParams,
    vreg_count: u32,
    vreg_classes: Vec<RegClass>,

    // Graph.
    adj_bits: BitMatrix,
    adj_list: Vec<Vec<u32>>,
    edges: Vec<(u32, u32)>,
    degree: Vec<usize>,
    spill_weight: Vec<f64>,

    // Node sets (an entity is in exactly one at any time).
    simplify_worklist: BTreeSet<u32>,
    freeze_worklist: BTreeSet<u32>,
    spill_worklist: BTreeSet<u32>,
    spilled_nodes: BTreeSet<u32>,
    coalesced_nodes: BTreeSet<u32>,
    colored_nodes: BTreeSet<u32>,
    select_stack: Vec<u32>,
    on_stack: HashSet<u32>,

    // Moves.
    move_list: Vec<BTreeSet<usize>>,
    moves: Vec<MoveRef>,
    worklist_moves: BTreeSet<usize>,
    active_moves: BTreeSet<usize>,
    frozen_moves: BTreeSet<usize>,
    constrained_moves: BTreeSet<usize>,
    coalesced_moves: BTreeSet<usize>,

    alias: Vec<u32>,
    color: Vec<Option<u8>>,

    /// Vregs >= this are spill temporaries (never profitable to spill).
    temp_watermark: u32,
    /// Overloaded-point coverage per vreg (GlobalCoverage metric only).
    coverage: Vec<u32>,

    adjacency: Option<&'a AdjacencyIndex>,

    // Work counters (`irc.*` telemetry).
    simplify_steps: u64,
    coalesce_steps: u64,
    freeze_steps: u64,
    spill_selects: u64,
}

impl<'a> IrcState<'a> {
    fn new(
        f: &Function,
        ig: InterferenceGraph,
        adjacency: Option<&'a AdjacencyIndex>,
        cfg: &AllocConfig,
    ) -> IrcState<'a> {
        let n = ig.num_nodes();
        let vreg_count = ig.vreg_count();
        // Adopt the build's graph wholesale: bit-matrix, adjacency lists,
        // and per-node degrees are already in the shape the worklists need.
        let (adj_bits, mut adj_list, degrees, moves, use_def_weight) = ig.into_parts();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (a, ns) in adj_list.iter().enumerate() {
            for &b in ns {
                if (a as u32) < b {
                    edges.push((a as u32, b));
                }
            }
        }
        let mut degree: Vec<usize> = degrees.into_iter().map(|d| d as usize).collect();
        // Precolored entities: the used physical registers. Registers >= k
        // are still precolored (with their own numbers) so that
        // interference with them is honored, but they are not allocatable
        // colors. They carry effectively infinite degree and no adjacency
        // list (never simplified, never walked).
        let mut color = vec![None; n];
        for e in vreg_count as usize..n {
            color[e] = Some((e - vreg_count as usize) as u8);
            degree[e] = usize::MAX / 2;
            adj_list[e].clear();
        }

        let mut st = IrcState {
            k: cfg.k as usize,
            strategy: cfg.strategy,
            params: cfg.params,
            vreg_count,
            vreg_classes: f.vreg_classes.clone(),
            adj_bits,
            adj_list,
            edges,
            degree,
            spill_weight: use_def_weight,
            simplify_worklist: BTreeSet::new(),
            freeze_worklist: BTreeSet::new(),
            spill_worklist: BTreeSet::new(),
            spilled_nodes: BTreeSet::new(),
            coalesced_nodes: BTreeSet::new(),
            colored_nodes: BTreeSet::new(),
            select_stack: Vec::new(),
            on_stack: HashSet::new(),
            move_list: vec![BTreeSet::new(); n],
            moves,
            worklist_moves: BTreeSet::new(),
            active_moves: BTreeSet::new(),
            frozen_moves: BTreeSet::new(),
            constrained_moves: BTreeSet::new(),
            coalesced_moves: BTreeSet::new(),
            alias: (0..n as u32).collect(),
            color,
            temp_watermark: u32::MAX,
            coverage: Vec::new(),
            adjacency,
            simplify_steps: 0,
            coalesce_steps: 0,
            freeze_steps: 0,
            spill_selects: 0,
        };

        for (mi, m) in st.moves.clone().into_iter().enumerate() {
            st.move_list[m.dst as usize].insert(mi);
            st.move_list[m.src as usize].insert(mi);
            st.worklist_moves.insert(mi);
        }

        // Initial worklists: only class-matching vregs participate. Values
        // never used or defined would pollute worklists; weight > 0 or any
        // interference/move involvement marks a referenced node.
        for v in 0..vreg_count {
            if st.vreg_classes[v as usize] != cfg.class {
                continue;
            }
            let referenced = st.spill_weight[v as usize] > 0.0
                || !st.adj_list[v as usize].is_empty()
                || !st.move_list[v as usize].is_empty();
            if !referenced {
                continue;
            }
            if st.degree[v as usize] >= st.k {
                st.spill_worklist.insert(v);
            } else if st.move_related(v) {
                st.freeze_worklist.insert(v);
            } else {
                st.simplify_worklist.insert(v);
            }
        }
        st
    }

    /// Is `e` a precolored (physical-register) entity?
    #[inline]
    fn is_precolored(&self, e: u32) -> bool {
        e >= self.vreg_count
    }

    /// Add an edge during coalescing (combine), deduped via the bit-matrix.
    fn add_edge_init(&mut self, a: u32, b: u32) {
        if a == b || !self.adj_bits.set(a as usize, b as usize) {
            return;
        }
        self.edges.push((a, b));
        if !self.is_precolored(a) {
            self.adj_list[a as usize].push(b);
            self.degree[a as usize] += 1;
        }
        if !self.is_precolored(b) {
            self.adj_list[b as usize].push(a);
            self.degree[b as usize] += 1;
        }
    }

    fn run(&mut self) {
        loop {
            if let Some(&n) = self.simplify_worklist.iter().next() {
                self.simplify(n);
            } else if let Some(&m) = self.worklist_moves.iter().next() {
                self.coalesce(m);
            } else if let Some(&n) = self.freeze_worklist.iter().next() {
                self.freeze(n);
            } else if !self.spill_worklist.is_empty() {
                self.select_spill();
            } else {
                break;
            }
        }
        self.assign_colors();
        if self.strategy == SelectStrategy::Differential && self.spilled_nodes.is_empty() {
            self.refine_colors();
        }
    }

    /// Iterative recoloring (differential select only); see the dense
    /// engine for the rationale.
    fn refine_colors(&mut self) {
        let Some(adj) = self.adjacency else { return };
        // `adj_list` is asymmetric after coalescing; rebuild the full
        // symmetric interference neighborhood from the undirected edge
        // list with aliases resolved.
        let mut nbr: std::collections::HashMap<u32, BTreeSet<u32>> =
            std::collections::HashMap::new();
        for &(a, b) in &self.edges {
            let ra = self.get_alias(a);
            let rb = self.get_alias(b);
            if ra != rb {
                nbr.entry(ra).or_default().insert(rb);
                nbr.entry(rb).or_default().insert(ra);
            }
        }
        // Hottest (highest incident adjacency weight) nodes move first.
        let mut nodes: Vec<u32> = self.colored_nodes.iter().copied().collect();
        nodes.sort_by(|&a, &b| {
            adj.incident_weight(b)
                .partial_cmp(&adj.incident_weight(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let empty = BTreeSet::new();
        for _pass in 0..8 {
            let mut improved = false;
            for &n in &nodes {
                let mut ok: BTreeSet<u8> = (0..self.k as u8).collect();
                for &wa in nbr.get(&n).unwrap_or(&empty) {
                    if self.colored_nodes.contains(&wa) || self.is_precolored(wa) {
                        if let Some(c) = self.color[wa as usize] {
                            ok.remove(&c);
                        }
                    }
                }
                let current = self.color[n as usize].expect("colored");
                ok.insert(current);
                let eval = |c: u8| {
                    adj.node_cost(
                        n,
                        |node| {
                            let a = self.get_alias(node);
                            if a == n || node == n {
                                Some(c)
                            } else {
                                self.color[a as usize]
                            }
                        },
                        self.params,
                    )
                };
                let cur_cost = eval(current);
                let mut best = current;
                let mut best_cost = cur_cost;
                for &c in &ok {
                    if c == current {
                        continue;
                    }
                    let cost = eval(c);
                    if cost < best_cost {
                        best_cost = cost;
                        best = c;
                    }
                }
                if best != current {
                    self.color[n as usize] = Some(best);
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        // Re-propagate to coalesced aliases.
        for &n in &self.coalesced_nodes.clone() {
            let a = self.get_alias(n);
            self.color[n as usize] = self.color[a as usize];
        }
    }

    fn adjacent(&self, n: u32) -> Vec<u32> {
        self.adj_list[n as usize]
            .iter()
            .copied()
            .filter(|w| !self.on_stack.contains(w) && !self.coalesced_nodes.contains(w))
            .collect()
    }

    fn node_moves(&self, n: u32) -> Vec<usize> {
        self.move_list[n as usize]
            .iter()
            .copied()
            .filter(|m| self.active_moves.contains(m) || self.worklist_moves.contains(m))
            .collect()
    }

    fn move_related(&self, n: u32) -> bool {
        !self.node_moves(n).is_empty()
    }

    fn simplify(&mut self, n: u32) {
        self.simplify_steps += 1;
        self.simplify_worklist.remove(&n);
        self.select_stack.push(n);
        self.on_stack.insert(n);
        for m in self.adjacent(n) {
            self.decrement_degree(m);
        }
    }

    fn decrement_degree(&mut self, m: u32) {
        if self.is_precolored(m) {
            return;
        }
        let d = self.degree[m as usize];
        self.degree[m as usize] = d.saturating_sub(1);
        if d == self.k {
            let mut nodes = self.adjacent(m);
            nodes.push(m);
            self.enable_moves(&nodes);
            self.spill_worklist.remove(&m);
            if self.move_related(m) {
                self.freeze_worklist.insert(m);
            } else {
                self.simplify_worklist.insert(m);
            }
        }
    }

    fn enable_moves(&mut self, nodes: &[u32]) {
        for &n in nodes {
            for m in self.node_moves(n) {
                if self.active_moves.remove(&m) {
                    self.worklist_moves.insert(m);
                }
            }
        }
    }

    fn get_alias(&self, n: u32) -> u32 {
        let mut cur = n;
        while self.coalesced_nodes.contains(&cur) {
            cur = self.alias[cur as usize];
        }
        cur
    }

    fn add_work_list(&mut self, u: u32) {
        if !self.is_precolored(u)
            && !self.move_related(u)
            && self.degree[u as usize] < self.k
        {
            self.freeze_worklist.remove(&u);
            self.simplify_worklist.insert(u);
        }
    }

    fn ok(&self, t: u32, r: u32) -> bool {
        self.degree[t as usize] < self.k
            || self.is_precolored(t)
            || self.adj_bits.contains(t as usize, r as usize)
    }

    fn conservative(&self, nodes: &[u32]) -> bool {
        let mut k_count = 0;
        let mut seen = HashSet::new();
        for &n in nodes {
            if seen.insert(n) && self.degree[n as usize] >= self.k {
                k_count += 1;
            }
        }
        k_count < self.k
    }

    fn coalesce(&mut self, m: usize) {
        self.coalesce_steps += 1;
        self.worklist_moves.remove(&m);
        let mv = self.moves[m];
        let x = self.get_alias(mv.dst);
        let y = self.get_alias(mv.src);
        let (u, v) = if self.is_precolored(y) {
            (y, x)
        } else {
            (x, y)
        };
        if u == v {
            self.coalesced_moves.insert(m);
            self.add_work_list(u);
        } else if self.is_precolored(v) || self.adj_bits.contains(u as usize, v as usize) {
            self.constrained_moves.insert(m);
            self.add_work_list(u);
            self.add_work_list(v);
        } else {
            // Colors >= k exist on precolored nodes whose number exceeds
            // the allocatable range; never coalesce into those.
            let u_uncolorable =
                self.is_precolored(u) && (self.color[u as usize].unwrap() as usize) >= self.k;
            let george = self.is_precolored(u)
                && self.adjacent(v).iter().all(|&t| self.ok(t, u));
            let briggs = !self.is_precolored(u) && {
                let mut all = self.adjacent(u);
                all.extend(self.adjacent(v));
                self.conservative(&all)
            };
            if !u_uncolorable && (george || briggs) {
                self.coalesced_moves.insert(m);
                self.combine(u, v);
                self.add_work_list(u);
            } else {
                self.active_moves.insert(m);
            }
        }
    }

    fn combine(&mut self, u: u32, v: u32) {
        if self.freeze_worklist.contains(&v) {
            self.freeze_worklist.remove(&v);
        } else {
            self.spill_worklist.remove(&v);
        }
        self.coalesced_nodes.insert(v);
        self.alias[v as usize] = u;
        let v_moves = self.move_list[v as usize].clone();
        self.move_list[u as usize].extend(v_moves);
        self.enable_moves(&[v]);
        for t in self.adjacent(v) {
            self.add_edge_init(t, u);
            self.decrement_degree(t);
        }
        if self.degree[u as usize] >= self.k && self.freeze_worklist.contains(&u) {
            self.freeze_worklist.remove(&u);
            self.spill_worklist.insert(u);
        }
    }

    fn freeze(&mut self, u: u32) {
        self.freeze_steps += 1;
        self.freeze_worklist.remove(&u);
        self.simplify_worklist.insert(u);
        self.freeze_moves(u);
    }

    fn freeze_moves(&mut self, u: u32) {
        for m in self.node_moves(u) {
            let mv = self.moves[m];
            let (x, y) = (mv.dst, mv.src);
            let v = if self.get_alias(y) == self.get_alias(u) {
                self.get_alias(x)
            } else {
                self.get_alias(y)
            };
            self.active_moves.remove(&m);
            self.frozen_moves.insert(m);
            if !self.is_precolored(v)
                && self.node_moves(v).is_empty()
                && self.degree[v as usize] < self.k
            {
                self.freeze_worklist.remove(&v);
                self.simplify_worklist.insert(v);
            }
        }
    }

    fn select_spill(&mut self) {
        self.spill_selects += 1;
        // Lowest spill metric first: cheap, high-degree values go to memory.
        let &m = self
            .spill_worklist
            .iter()
            .min_by(|&&a, &&b| {
                let ma = self.spill_metric(a);
                let mb = self.spill_metric(b);
                ma.partial_cmp(&mb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty spill worklist");
        self.spill_worklist.remove(&m);
        self.simplify_worklist.insert(m);
        self.freeze_moves(m);
    }

    fn spill_metric(&self, e: u32) -> f64 {
        if e >= self.temp_watermark && e < self.vreg_count {
            // Spill temporary: choosing it again would loop forever.
            return f64::MAX / 4.0;
        }
        let deg = self.degree[e as usize].max(1) as f64;
        if let Some(&cover) = self.coverage.get(e as usize) {
            // Global metric: coverage of over-pressure points dominates,
            // degree breaks ties — cheap, wide-coverage ranges first.
            return self.spill_weight[e as usize] / (deg + 4.0 * cover as f64);
        }
        self.spill_weight[e as usize] / deg
    }

    fn assign_colors(&mut self) {
        while let Some(n) = self.select_stack.pop() {
            self.on_stack.remove(&n);
            let mut ok_colors: BTreeSet<u8> = (0..self.k as u8).collect();
            for &w in &self.adj_list[n as usize] {
                let wa = self.get_alias(w);
                if self.colored_nodes.contains(&wa) || self.is_precolored(wa) {
                    if let Some(c) = self.color[wa as usize] {
                        ok_colors.remove(&c);
                    }
                }
            }
            if ok_colors.is_empty() {
                self.spilled_nodes.insert(n);
            } else {
                self.colored_nodes.insert(n);
                let c = self.choose_color(n, &ok_colors);
                self.color[n as usize] = Some(c);
            }
        }
        for &n in &self.coalesced_nodes.clone() {
            let a = self.get_alias(n);
            self.color[n as usize] = self.color[a as usize];
        }
    }

    /// The select-stage hook: baseline takes the lowest color;
    /// differential select (Section 6) scores each candidate against the
    /// adjacency graph and takes the cheapest.
    fn choose_color(&self, n: u32, ok: &BTreeSet<u8>) -> u8 {
        match self.strategy {
            SelectStrategy::Lowest => *ok.iter().next().expect("nonempty"),
            SelectStrategy::Biased => {
                // A color already assigned to a move partner lets the
                // remaining move coalesce away at zero cost.
                for &m in &self.move_list[n as usize] {
                    let mv = self.moves[m];
                    let other = if self.get_alias(mv.dst) == self.get_alias(n) {
                        self.get_alias(mv.src)
                    } else {
                        self.get_alias(mv.dst)
                    };
                    if self.colored_nodes.contains(&other) || self.is_precolored(other) {
                        if let Some(c) = self.color[other as usize] {
                            if ok.contains(&c) {
                                return c;
                            }
                        }
                    }
                }
                *ok.iter().next().expect("nonempty")
            }
            SelectStrategy::Differential => {
                let g = self.adjacency.expect("adjacency graph present");
                let mut best = *ok.iter().next().expect("nonempty");
                let mut best_cost = f64::INFINITY;
                for &c in ok {
                    let cost = g.node_cost(
                        n,
                        |node| {
                            let a = self.get_alias(node);
                            if a == n || node == n {
                                Some(c)
                            } else if self.is_precolored(a)
                                || self.colored_nodes.contains(&a)
                            {
                                self.color[a as usize]
                            } else {
                                None
                            }
                        },
                        self.params,
                    );
                    if cost < best_cost {
                        best_cost = cost;
                        best = c;
                    }
                }
                best
            }
        }
    }
}

/// Allocate a whole program in place with the set-based engine.
///
/// # Errors
///
/// Propagates the first [`AllocError`] from any function.
pub fn irc_allocate_program(
    p: &mut dra_ir::Program,
    cfg: &AllocConfig,
) -> Result<AllocStats, AllocError> {
    let mut total = AllocStats::default();
    for f in &mut p.funcs {
        let s = irc_allocate(f, cfg)?;
        total.rounds = total.rounds.max(s.rounds);
        total.spilled_vregs += s.spilled_vregs;
        total.moves_coalesced += s.moves_coalesced;
        total.liveness_nanos += s.liveness_nanos;
        total.build_nanos += s.build_nanos;
        total.color_nanos += s.color_nanos;
        total.simplify_steps += s.simplify_steps;
        total.coalesce_steps += s.coalesce_steps;
        total.freeze_steps += s.freeze_steps;
        total.spill_selects += s.spill_selects;
    }
    Ok(total)
}
