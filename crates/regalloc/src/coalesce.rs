//! Differential coalesce (Section 7) — approach 3.
//!
//! Runs on top of the optimal-spilling pipeline: after the spill phase
//! guarantees pressure ≤ `RegN`, the program still contains moves (from the
//! source program and from live-range splitting). The paper's algorithm
//! (Figure 9) repeatedly:
//!
//! 1. tries every remaining coalescible move,
//! 2. for each, *tentatively* merges the two live ranges, rebuilds and
//!    simplifies the interference graph, runs **differential select**, and
//!    records the total cost (differential-encoding cost plus the cost of
//!    the remaining moves — a `set_last_reg` is priced like a move),
//! 3. commits the single coalescence with the biggest cost reduction,
//! 4. stops when nothing improves the cost or every candidate would make
//!    the graph uncolorable.
//!
//! The final differential-select coloring is then applied.

use crate::dense::ColorSet;
use crate::interference::InterferenceGraph;
use crate::irc::{irc_allocate_recorded, AllocConfig, AllocError, AllocStats, SelectStrategy, SpillMetric};
use crate::ospill::reduce_pressure;
use dra_adjgraph::{build_vreg_adjacency, AdjacencyGraph, AdjacencyIndex, DiffParams};
use dra_ir::{Function, Inst, Liveness, PReg, Program, Reg, RegClass, VReg};

/// How each coalesce candidate is evaluated (ablation D3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoalesceEval {
    /// The paper's Figure 9: tentatively merge, rebuild + simplify + run
    /// differential select, score the complete assignment. `O(moves²)`
    /// colorings overall.
    #[default]
    Full,
    /// Incremental: score a candidate by the adjacency-cost delta of
    /// recoloring the merged node under the *current* base coloring, plus
    /// the move weight saved. One coloring per committed merge instead of
    /// one per candidate.
    Incremental,
}

/// Configuration for differential coalesce.
#[derive(Clone, Debug)]
pub struct CoalesceConfig {
    /// Differential parameters; `params.reg_n()` is the color count.
    pub params: DiffParams,
    /// Register class being allocated.
    pub class: RegClass,
    /// Physical registers clobbered by calls.
    pub call_clobbers: Vec<PReg>,
    /// Relative cost of one move (and one `set_last_reg`) in the objective;
    /// the paper treats them as equal.
    pub move_cost: f64,
    /// Upper bound on candidate evaluations per round — the full
    /// rebuild-and-select evaluation is `O(moves²)` overall (Section 7), so
    /// very move-heavy functions are truncated to the best `eval_limit`
    /// candidates by a cheap pre-score.
    pub eval_limit: usize,
    /// Safety cap on spill rounds if coloring unexpectedly fails.
    pub max_rounds: u32,
    /// Candidate evaluation strategy (ablation D3).
    pub eval: CoalesceEval,
}

impl CoalesceConfig {
    /// Defaults for the given differential parameters.
    pub fn new(params: DiffParams) -> Self {
        CoalesceConfig {
            params,
            class: RegClass::Int,
            call_clobbers: Vec::new(),
            move_cost: 1.0,
            eval_limit: 48,
            max_rounds: 64,
            eval: CoalesceEval::Full,
        }
    }
}

/// Statistics from a differential-coalesce allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoalesceStats {
    /// Live ranges spilled by the pressure phase.
    pub pressure_spills: usize,
    /// Extra spills forced during coloring (normally 0).
    pub coloring_spills: usize,
    /// Moves committed (coalesced away) by the differential loop.
    pub moves_coalesced: usize,
    /// Final differential cost of the chosen assignment.
    pub final_cost: f64,
    /// Stats of the final IRC coloring pass (work counters + phase
    /// timings; `moves_coalesced`/`spilled_vregs` are already folded into
    /// the fields above).
    pub irc: AllocStats,
}

/// The [`AllocConfig`] for the final IRC coloring pass. Built once per
/// `coalesce_allocate`/`coalesce_allocate_program` call — this is where
/// `call_clobbers` gets cloned, so the program-level wrapper pays for it
/// once instead of once per function.
fn irc_config(cfg: &CoalesceConfig) -> AllocConfig {
    AllocConfig {
        k: cfg.params.reg_n(),
        params: cfg.params,
        strategy: SelectStrategy::Differential,
        call_clobbers: cfg.call_clobbers.clone(),
        class: cfg.class,
        spill_metric: SpillMetric::GlobalCoverage,
        max_rounds: cfg.max_rounds,
    }
}

/// Allocate `f` with differential coalesce.
///
/// # Errors
///
/// [`AllocError::DidNotConverge`] if repeated fallback spilling exceeds
/// `cfg.max_rounds`.
pub fn coalesce_allocate(
    f: &mut Function,
    cfg: &CoalesceConfig,
) -> Result<CoalesceStats, AllocError> {
    coalesce_allocate_with(f, cfg, &irc_config(cfg), false).map(|(stats, _)| stats)
}

/// [`coalesce_allocate`] with optional
/// [`AllocationRecord`](crate::allocator::AllocationRecord) capture. The
/// record is taken by the final IRC pass, i.e. *after* the Figure 9
/// coalescing loop has merged vregs and deleted their moves — the
/// checker verifies the final substitution; vreg-level merges are
/// validated upstream by the simulator equivalence suite.
///
/// # Errors
///
/// Same as [`coalesce_allocate`].
pub fn coalesce_allocate_recorded(
    f: &mut Function,
    cfg: &CoalesceConfig,
    record: bool,
) -> Result<(CoalesceStats, Option<crate::allocator::AllocationRecord>), AllocError> {
    coalesce_allocate_with(f, cfg, &irc_config(cfg), record)
}

/// [`coalesce_allocate`] with the final-pass IRC configuration supplied
/// by the caller (so batch drivers amortize its construction).
fn coalesce_allocate_with(
    f: &mut Function,
    cfg: &CoalesceConfig,
    irc_cfg: &AllocConfig,
    record: bool,
) -> Result<(CoalesceStats, Option<crate::allocator::AllocationRecord>), AllocError> {
    let k = cfg.params.reg_n();
    let mut stats = CoalesceStats {
        pressure_spills: reduce_pressure(f, cfg.class, k as usize, 512).len(),
        ..CoalesceStats::default()
    };

    // The differential coalesce loop (Figure 9).
    loop {
        let view = GraphView::of(f, cfg);
        let best = best_coalesce(&view, cfg);
        view.recycle();
        match best {
            Some((dst, src)) => {
                commit_coalesce(f, dst, src);
                stats.moves_coalesced += 1;
            }
            None => break,
        }
    }

    // Final coloring: hand the merged function to iterated register
    // coalescing with the differential select stage. IRC both removes any
    // remaining profitable moves and handles residual spills far better
    // than a plain simplify/select pass.
    let (irc_stats, rec) = irc_allocate_recorded(f, irc_cfg, record)?;
    stats.coloring_spills += irc_stats.spilled_vregs;
    stats.moves_coalesced += irc_stats.moves_coalesced;
    stats.irc = irc_stats;
    stats.final_cost = dra_adjgraph::build_preg_adjacency(f, cfg.class, k)
        .assignment_cost(|n| Some(n as u8), cfg.params);
    Ok((stats, rec))
}

/// Allocate a whole program with differential coalesce.
///
/// # Errors
///
/// Propagates the first [`AllocError`] from any function.
pub fn coalesce_allocate_program(
    p: &mut Program,
    cfg: &CoalesceConfig,
) -> Result<CoalesceStats, AllocError> {
    let irc_cfg = irc_config(cfg);
    let mut total = CoalesceStats::default();
    for f in &mut p.funcs {
        let (s, _) = coalesce_allocate_with(f, cfg, &irc_cfg, false)?;
        total.pressure_spills += s.pressure_spills;
        total.coloring_spills += s.coloring_spills;
        total.moves_coalesced += s.moves_coalesced;
        total.final_cost += s.final_cost;
        total.irc.rounds = total.irc.rounds.max(s.irc.rounds);
        total.irc.spilled_vregs += s.irc.spilled_vregs;
        total.irc.moves_coalesced += s.irc.moves_coalesced;
        total.irc.liveness_nanos += s.irc.liveness_nanos;
        total.irc.build_nanos += s.irc.build_nanos;
        total.irc.color_nanos += s.irc.color_nanos;
        total.irc.simplify_steps += s.irc.simplify_steps;
        total.irc.coalesce_steps += s.irc.coalesce_steps;
        total.irc.freeze_steps += s.irc.freeze_steps;
        total.irc.spill_selects += s.irc.spill_selects;
    }
    Ok(total)
}

/// One round of the differential coalesce loop: pick the cheapest
/// profitable move to merge, or `None` when no candidate improves on the
/// base coloring (or the base graph is uncolorable).
fn best_coalesce(view: &GraphView, cfg: &CoalesceConfig) -> Option<(VReg, VReg)> {
    let candidates = view.coalesce_candidates(cfg.eval_limit);
    if candidates.is_empty() {
        return None;
    }
    // Base graph uncolorable: fall through to spilling in the caller.
    let base_cost = view.color_cost(None, cfg)?;
    let mut best: Option<(VReg, VReg, f64)> = None;
    match cfg.eval {
        CoalesceEval::Full => {
            for &(dst, src) in &candidates {
                if let Some(cost) = view.color_cost(Some((dst, src)), cfg) {
                    // Coalescing removes one move of weight
                    // `move_cost` * frequency; the cost function
                    // already includes remaining move weight, so
                    // `cost` is directly comparable.
                    if cost < base_cost - 1e-9
                        && best.is_none_or(|(_, _, bc)| cost < bc)
                    {
                        best = Some((dst, src, cost));
                    }
                }
            }
        }
        CoalesceEval::Incremental => {
            // One base coloring; per-candidate O(degree) delta.
            let (colors, _) = view.try_color(None, cfg)?;
            for &(dst, src) in &candidates {
                let Some(cd) = colors[dst.index()] else { continue };
                let assign_base = |node: u32| {
                    if node >= view.vreg_count {
                        Some((node - view.vreg_count) as u8)
                    } else {
                        colors[node as usize]
                    }
                };
                let assign_merged = |node: u32| {
                    if node == src.0 {
                        Some(cd)
                    } else {
                        assign_base(node)
                    }
                };
                let before = view.adj_index.node_cost(src.0, assign_base, cfg.params);
                let after = view.adj_index.node_cost(src.0, assign_merged, cfg.params);
                let move_w = view
                    .moves
                    .iter()
                    .find(|(d, s, _)| (*d, *s) == (dst, src))
                    .map(|&(_, _, w)| w)
                    .unwrap_or(cfg.move_cost);
                let delta = after - before - move_w;
                let score = base_cost + delta;
                if delta < -1e-9 && best.is_none_or(|(_, _, bc)| score < bc) {
                    best = Some((dst, src, score));
                }
            }
        }
    }
    best.map(|(dst, src, _)| (dst, src))
}

/// Physically merge `src` into `dst`: rewrite uses and drop trivial moves.
fn commit_coalesce(f: &mut Function, dst: VReg, src: VReg) {
    for b in &mut f.blocks {
        for i in &mut b.insts {
            i.map_regs(|r| {
                if r.as_virt() == Some(src) {
                    Reg::Virt(dst)
                } else {
                    r
                }
            });
        }
        b.insts.retain(|i| {
            !matches!(i, Inst::Mov { dst: d, src: s } if d == s)
        });
    }
    f.recompute_cfg();
}


/// A snapshot of interference + adjacency for tentative evaluations.
struct GraphView {
    ig: InterferenceGraph,
    adj: AdjacencyGraph,
    adj_index: AdjacencyIndex,
    vreg_count: u32,
    class_vregs: Vec<u32>,
    moves: Vec<(VReg, VReg, f64)>, // dst, src, weight
}

impl GraphView {
    fn of(f: &Function, cfg: &CoalesceConfig) -> GraphView {
        let liveness = Liveness::compute(f);
        let ig = InterferenceGraph::build(f, &liveness, cfg.class, &cfg.call_clobbers);
        let adj = build_vreg_adjacency(f, cfg.class);
        let adj_index = adj.index();
        let class_vregs: Vec<u32> = (0..f.vreg_count)
            .filter(|&v| f.vreg_classes[v as usize] == cfg.class)
            .filter(|&v| ig.use_def_weight[v as usize] > 0.0 || ig.degree(v) > 0)
            .collect();
        // Move list with block frequencies as weights.
        let mut moves = Vec::new();
        for (_, blk) in f.iter_blocks() {
            for i in &blk.insts {
                if let Inst::Mov { dst, src } = i {
                    if let (Some(d), Some(s)) = (dst.as_virt(), src.as_virt()) {
                        if f.vreg_class(d) == cfg.class && d != s {
                            moves.push((d, s, blk.freq * cfg.move_cost));
                        }
                    }
                }
            }
        }
        liveness.recycle();
        GraphView {
            ig,
            adj,
            adj_index,
            vreg_count: f.vreg_count,
            class_vregs,
            moves,
        }
    }

    /// Return the pooled buffers inside the interference graph and the
    /// adjacency index to their thread-local arenas. The `adj` BTreeMap
    /// has no pooled parts and simply drops.
    fn recycle(self) {
        self.ig.recycle();
        self.adj_index.recycle();
    }

    /// Non-interfering move pairs, best `limit` by a cheap pre-score
    /// (weight of the move — heavier moves are worth more to remove).
    fn coalesce_candidates(&self, limit: usize) -> Vec<(VReg, VReg)> {
        let mut cands: Vec<(VReg, VReg, f64)> = self
            .moves
            .iter()
            .filter(|(d, s, _)| !self.ig.interferes(d.0, s.0))
            .map(|&(d, s, w)| (d, s, w))
            .collect();
        cands.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        cands.truncate(limit);
        cands.into_iter().map(|(d, s, _)| (d, s)).collect()
    }

    /// Run simplify + differential select on the (optionally merged) graph;
    /// returns the total objective — differential cost plus remaining move
    /// weight — or `None` when uncolorable.
    fn color_cost(&self, merge: Option<(VReg, VReg)>, cfg: &CoalesceConfig) -> Option<f64> {
        let (colors, diff_cost) = self.try_color(merge, cfg)?;
        let _ = colors;
        // Moves whose endpoints got the same color vanish for free; the
        // rest stay. The merged move (if any) is gone by construction.
        let mut remaining = 0.0;
        for &(d, s, w) in &self.moves {
            if let Some((md, ms)) = merge {
                if (d, s) == (md, ms) {
                    continue;
                }
            }
            let alias = |v: VReg| -> u32 {
                if let Some((md, ms)) = merge {
                    if v == ms {
                        return md.0;
                    }
                }
                v.0
            };
            let (ca, cb) = (colors_at(&colors, alias(d)), colors_at(&colors, alias(s)));
            if ca.is_some() && ca == cb {
                continue;
            }
            remaining += w;
        }
        Some(diff_cost + remaining)
    }

    /// Chaitin-Briggs simplify with optimistic push, then differential
    /// select. Returns per-vreg colors and the differential cost.
    fn try_color(
        &self,
        merge: Option<(VReg, VReg)>,
        cfg: &CoalesceConfig,
    ) -> Option<(Vec<Option<u8>>, f64)> {
        let k = cfg.params.reg_n() as usize;
        let alias = |v: u32| -> u32 {
            if let Some((d, s)) = merge {
                if v == s.0 {
                    return d.0;
                }
            }
            v
        };

        // Effective node set after aliasing: a membership array plus an
        // ascending id list (the iteration order the old sorted set had).
        let mut node_set = vec![false; self.vreg_count as usize];
        for &v in &self.class_vregs {
            node_set[alias(v) as usize] = true;
        }
        let nodes: Vec<u32> = (0..self.vreg_count)
            .filter(|&v| node_set[v as usize])
            .collect();
        // Distinct effective neighbors of `v`, gathered into a reused
        // scratch with epoch-marked dedup. Order is irrelevant to every
        // consumer (degree counts, saturating decrements, color-mask
        // removal), so losing the old set's sortedness changes nothing.
        let mut mark = vec![0u32; self.ig.num_nodes()];
        let mut epoch = 0u32;
        let mut gather = |v: u32, out: &mut Vec<u32>| {
            epoch += 1;
            out.clear();
            mark[v as usize] = epoch; // excludes a == v, like the old filter
            let second = match merge {
                Some((d, s)) if v == d.0 => Some(s.0),
                _ => None,
            };
            for orig in std::iter::once(v).chain(second) {
                for n in self.ig.neighbors(orig) {
                    let a = if n < self.vreg_count { alias(n) } else { n };
                    if mark[a as usize] != epoch {
                        mark[a as usize] = epoch;
                        out.push(a);
                    }
                }
            }
        };

        // Simplify: repeatedly remove min-degree node (optimistic when all
        // are >= k). Degrees live in a dense per-vreg array; like the map
        // it replaces, popped nodes keep their (now meaningless) entries
        // and keep absorbing saturating decrements.
        let mut deg = vec![0usize; self.vreg_count as usize];
        let mut scratch: Vec<u32> = Vec::new();
        for &v in &nodes {
            gather(v, &mut scratch);
            deg[v as usize] = scratch
                .iter()
                .filter(|&&n| n >= self.vreg_count || node_set[n as usize])
                .count();
        }
        let mut remaining = crate::dense::OrderedIndexSet::new(self.vreg_count as usize);
        for &v in &nodes {
            remaining.insert(v);
        }
        let mut stack = Vec::with_capacity(nodes.len());
        while !remaining.is_empty() {
            // Prefer a node with degree < k; otherwise push optimistically
            // the one with the lowest spill attractiveness. One ascending
            // pass: first sub-k node wins, else the first strict minimum —
            // exactly the old `find(..).or_else(min_by_key(..))` pair.
            let mut found = None;
            let mut min: Option<(u32, usize)> = None;
            for v in remaining.iter() {
                let d = deg[v as usize];
                if d < k {
                    found = Some(v);
                    break;
                }
                if min.is_none_or(|(_, md)| d < md) {
                    min = Some((v, d));
                }
            }
            let next = found.or(min.map(|(v, _)| v)).expect("nonempty");
            remaining.remove(next);
            stack.push(next);
            gather(next, &mut scratch);
            for &n in &scratch {
                if n < self.vreg_count && node_set[n as usize] {
                    deg[n as usize] = deg[n as usize].saturating_sub(1);
                }
            }
        }

        // Select with the differential chooser.
        let mut colors: Vec<Option<u8>> = vec![None; self.vreg_count as usize];
        while let Some(v) = stack.pop() {
            let mut ok = ColorSet::below(k as u8);
            gather(v, &mut scratch);
            for &n in &scratch {
                if n >= self.vreg_count {
                    // Precolored physical register.
                    ok.remove((n - self.vreg_count) as u8);
                } else if let Some(c) = colors[n as usize] {
                    ok.remove(c);
                }
            }
            if ok.is_empty() {
                return None;
            }
            // Differential select on the adjacency graph.
            let mut best = ok.first().expect("nonempty");
            let mut best_cost = f64::INFINITY;
            for c in ok.iter() {
                let cost = self.adj_index.node_cost(
                    v,
                    |node| {
                        let a = if node < self.vreg_count {
                            alias(node)
                        } else {
                            node
                        };
                        if a == v {
                            Some(c)
                        } else if a >= self.vreg_count {
                            Some((a - self.vreg_count) as u8)
                        } else {
                            colors[a as usize]
                        }
                    },
                    cfg.params,
                );
                if cost < best_cost {
                    best_cost = cost;
                    best = c;
                }
            }
            colors[v as usize] = Some(best);
        }
        // Propagate to merged node.
        if let Some((d, s)) = merge {
            colors[s.index()] = colors[d.index()];
        }

        // Total differential cost of the assignment.
        let diff_cost = self.adj.assignment_cost(
            |node| {
                if node >= self.vreg_count {
                    Some((node - self.vreg_count) as u8)
                } else {
                    colors[alias(node) as usize]
                }
            },
            cfg.params,
        );
        Some((colors, diff_cost))
    }


}

fn colors_at(colors: &[Option<u8>], v: u32) -> Option<u8> {
    colors.get(v as usize).copied().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BinOp, FunctionBuilder};

    fn movey_function() -> Function {
        let mut b = FunctionBuilder::new("movey");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into());
        b.mov(z, y.into());
        b.ret(Some(z.into()));
        b.finish()
    }

    #[test]
    fn chains_of_moves_coalesce() {
        let mut f = movey_function();
        let cfg = CoalesceConfig::new(DiffParams::new(8, 8));
        let stats = coalesce_allocate(&mut f, &cfg).unwrap();
        assert!(f.is_fully_physical());
        assert_eq!(f.count_insts(|i| i.is_move()), 0, "all moves gone:\n{f}");
        assert!(stats.moves_coalesced >= 1);
    }

    #[test]
    fn allocation_valid_under_pressure() {
        let mut b = FunctionBuilder::new("f");
        let vs: Vec<_> = (0..9).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let cfg = CoalesceConfig::new(DiffParams::direct(4));
        let stats = coalesce_allocate(&mut f, &cfg).unwrap();
        assert!(f.is_fully_physical());
        assert!(stats.pressure_spills > 0);
        for i in f.iter_insts() {
            for r in i.accesses() {
                assert!(r.expect_phys().number() < 4);
            }
        }
    }

    #[test]
    fn final_cost_reported() {
        let mut f = movey_function();
        let cfg = CoalesceConfig::new(DiffParams::lowend_12_8());
        let stats = coalesce_allocate(&mut f, &cfg).unwrap();
        assert!(stats.final_cost >= 0.0);
    }

    #[test]
    fn program_level_wrapper() {
        let mut p = Program::single(movey_function());
        let cfg = CoalesceConfig::new(DiffParams::new(8, 8));
        let stats = coalesce_allocate_program(&mut p, &cfg).unwrap();
        assert!(p.funcs[0].is_fully_physical());
        assert!(stats.moves_coalesced >= 1);
    }

    #[test]
    fn interfering_move_not_coalesced() {
        // y = x but both later used together: merging would be unsound.
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into());
        b.bin_imm(BinOp::Add, y, y.into(), 5); // y diverges from x
        b.bin(BinOp::Add, z, x.into(), y.into());
        b.ret(Some(z.into()));
        let mut f = b.finish();
        let cfg = CoalesceConfig::new(DiffParams::new(8, 8));
        coalesce_allocate(&mut f, &cfg).unwrap();
        // The x->y move must survive with distinct registers.
        let mv = f
            .iter_insts()
            .find_map(|i| match i {
                Inst::Mov { dst, src } => Some((dst.expect_phys(), src.expect_phys())),
                _ => None,
            })
            .expect("move survives");
        assert_ne!(mv.0, mv.1);
    }
}

#[cfg(test)]
mod eval_tests {
    use super::*;
    use dra_ir::FunctionBuilder;

    fn movey() -> Function {
        let mut b = FunctionBuilder::new("movey");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into());
        b.mov(z, y.into());
        b.ret(Some(z.into()));
        b.finish()
    }

    #[test]
    fn incremental_eval_also_coalesces() {
        let mut f = movey();
        let cfg = CoalesceConfig {
            eval: CoalesceEval::Incremental,
            ..CoalesceConfig::new(DiffParams::new(8, 8))
        };
        let stats = coalesce_allocate(&mut f, &cfg).unwrap();
        assert!(f.is_fully_physical());
        assert_eq!(f.count_insts(|i| i.is_move()), 0, "moves gone:\n{f}");
        assert!(stats.moves_coalesced >= 1);
    }

    #[test]
    fn incremental_matches_full_on_simple_input() {
        let run = |eval: CoalesceEval| {
            let mut f = movey();
            let cfg = CoalesceConfig {
                eval,
                ..CoalesceConfig::new(DiffParams::lowend_12_8())
            };
            let s = coalesce_allocate(&mut f, &cfg).unwrap();
            (s.moves_coalesced, f.count_insts(|i| i.is_move()))
        };
        let full = run(CoalesceEval::Full);
        let inc = run(CoalesceEval::Incremental);
        assert_eq!(full.1, inc.1, "both eliminate every move here");
    }
}
