//! Iterated register coalescing (George & Appel, TOPLAS 1996).
//!
//! This is the paper's *baseline* allocator for the low-end evaluation
//! ("we replace gcc's register allocation phase by implementing iterated
//! register allocation", Section 10.1) and the host of **differential
//! select** (Section 6): the select stage consults a pluggable
//! [`SelectStrategy`] that, given the set of legal colors for the node
//! being popped, picks the one minimizing differential-encoding cost on
//! the adjacency graph.
//!
//! The implementation follows the worklist formulation in Appel's *Modern
//! Compiler Implementation*, including precolored nodes, Briggs'
//! conservative coalescing and George's test against precolored nodes —
//! but on **dense indexed** state rather than the textbook's sets:
//!
//! * one [`NodeState`] per entity replaces the seven node sets plus
//!   `on_stack`/`coalesced_nodes` (membership test = state compare);
//! * the ordered node/move worklists are [`OrderedIndexSet`] bitsets
//!   with O(1) insert/remove and the same lowest-index-first pop order
//!   the `BTreeSet`s had;
//! * per-node move lists live in one CSR `Vec<u32>` (plus a small
//!   overlay for lists merged by `combine`), and one [`MoveState`] per
//!   move replaces the five move sets;
//! * `get_alias` is a path-compressed union-find walk;
//! * the select stage's legal-color set is a 256-bit [`ColorSet`] mask.
//!
//! Every pop, tie-break, and iteration order is preserved, so the engine
//! produces allocations **bit-identical** to the original set-based
//! implementation — kept as [`reference`] and enforced by
//! `tests/proptest_irc_equiv.rs`. See DESIGN.md §8 ("Dense IRC engine")
//! for the state machine and its invariants.

pub mod reference;

use crate::dense::{ColorSet, OrderedIndexSet};
use crate::interference::{InterferenceGraph, MoveRef};
use crate::spill::rewrite_spills;
use dra_adjgraph::{build_vreg_adjacency, AdjacencyIndex, DiffParams};
use dra_ir::bitset::BitMatrix;
use dra_ir::{Function, Liveness, PReg, Reg, RegClass, VReg};
use std::cell::Cell;

/// How the spill stage scores eviction candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillMetric {
    /// Chaitin's classic `spill_cost / degree`.
    WeightOverDegree,
    /// Global coverage: `spill_cost / overloaded_points_covered` — prefer
    /// values whose eviction relieves many over-pressure points (the
    /// greedy stand-in for Appel & George's ILP-optimal spilling).
    GlobalCoverage,
}

/// How the select stage picks among legal colors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectStrategy {
    /// Pick the lowest-numbered legal color (classic baseline).
    Lowest,
    /// Briggs' biased coloring (the prior art Section 6 builds on): prefer
    /// a color already held by a move partner, so the move later coalesces
    /// for free; otherwise lowest.
    Biased,
    /// Differential select (Section 6): pick the legal color with minimal
    /// adjacency-graph cost under the configured [`DiffParams`].
    Differential,
}

/// Configuration of one allocation run.
#[derive(Clone, Debug)]
pub struct AllocConfig {
    /// Number of allocatable registers (colors), the paper's `RegN`.
    pub k: u16,
    /// Differential parameters used by [`SelectStrategy::Differential`].
    pub params: DiffParams,
    /// Color-selection strategy.
    pub strategy: SelectStrategy,
    /// Physical registers clobbered by calls.
    pub call_clobbers: Vec<PReg>,
    /// Register class being allocated.
    pub class: RegClass,
    /// Spill-candidate scoring.
    pub spill_metric: SpillMetric,
    /// Safety cap on spill-rewrite rounds.
    pub max_rounds: u32,
}

impl AllocConfig {
    /// A baseline configuration with `k` registers and direct encoding.
    pub fn baseline(k: u16) -> Self {
        AllocConfig {
            k,
            params: DiffParams::direct(k),
            strategy: SelectStrategy::Lowest,
            call_clobbers: Vec::new(),
            class: RegClass::Int,
            spill_metric: SpillMetric::WeightOverDegree,
            max_rounds: 24,
        }
    }

    /// A differential-select configuration.
    pub fn differential(params: DiffParams) -> Self {
        AllocConfig {
            k: params.reg_n(),
            params,
            strategy: SelectStrategy::Differential,
            call_clobbers: Vec::new(),
            class: RegClass::Int,
            spill_metric: SpillMetric::WeightOverDegree,
            max_rounds: 24,
        }
    }
}

/// Statistics of a finished allocation.
///
/// The `*_nanos` fields are wall-clock phase timings summed over all
/// rounds. Unlike the work counters they vary run to run; like
/// `RemapStats::search_nanos` they are reported for profiling only and
/// excluded from every determinism comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AllocStats {
    /// Build/select rounds executed (1 = no spilling needed).
    pub rounds: u32,
    /// Virtual registers sent to memory over all rounds.
    pub spilled_vregs: usize,
    /// Move instructions removed by coalescing in the final round.
    pub moves_coalesced: usize,
    /// Wall-clock ns in liveness analysis, all rounds.
    pub liveness_nanos: u64,
    /// Wall-clock ns building the interference graph (and, for
    /// differential select, the vreg adjacency index), all rounds.
    pub build_nanos: u64,
    /// Wall-clock ns in simplify/coalesce/select plus the final rewrite
    /// (or the spill rewrite of a failed round), all rounds.
    pub color_nanos: u64,
    /// Simplify-stage pops (nodes pushed on the select stack), all rounds
    /// (`irc.simplify` telemetry).
    pub simplify_steps: u64,
    /// Coalesce-stage move considerations, all rounds (`irc.coalesce`).
    pub coalesce_steps: u64,
    /// Freeze-stage pops, all rounds (`irc.freeze`).
    pub freeze_steps: u64,
    /// Spill-candidate selections, all rounds (`irc.spill`).
    pub spill_selects: u64,
}

/// Errors the allocator can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// Spilling failed to converge within `max_rounds`.
    DidNotConverge {
        /// The configured round cap.
        max_rounds: u32,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::DidNotConverge { max_rounds } => {
                write!(f, "register allocation did not converge in {max_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocate registers for `f` in place: on success every `class` operand is
/// physical with number `< k`, spill code has been inserted for spilled
/// values, and coalesced moves have been deleted.
///
/// # Errors
///
/// [`AllocError::DidNotConverge`] if spill rewriting exceeds
/// `cfg.max_rounds` (pathological inputs only: each round strictly reduces
/// the maximum register pressure).
pub fn irc_allocate(f: &mut Function, cfg: &AllocConfig) -> Result<AllocStats, AllocError> {
    irc_allocate_recorded(f, cfg, false).map(|(stats, _)| stats)
}

/// [`irc_allocate`] that can additionally capture an
/// [`AllocationRecord`](crate::allocator::AllocationRecord) for the
/// symbolic checker: a snapshot of the function *entering* the final
/// (successful) round — after every spill rewrite, before color
/// substitution — plus the vreg → color assignment of that round. The
/// snapshot/assignment pair is exactly what [`apply_allocation`] consumed,
/// so [`crate::checker::check_allocation`] can re-derive the rewrite and
/// verify it independently.
///
/// # Errors
///
/// Same as [`irc_allocate`].
pub fn irc_allocate_recorded(
    f: &mut Function,
    cfg: &AllocConfig,
    record: bool,
) -> Result<(AllocStats, Option<crate::allocator::AllocationRecord>), AllocError> {
    let mut stats = AllocStats::default();
    // Vregs created at or beyond this watermark are spill temporaries from
    // earlier rounds; re-spilling them makes no progress, so they carry an
    // effectively infinite spill metric.
    let temp_watermark = f.vreg_count;
    loop {
        if stats.rounds >= cfg.max_rounds {
            return Err(AllocError::DidNotConverge {
                max_rounds: cfg.max_rounds,
            });
        }
        stats.rounds += 1;
        let t0 = std::time::Instant::now();
        let liveness = Liveness::compute(f);
        let t1 = std::time::Instant::now();
        stats.liveness_nanos += (t1 - t0).as_nanos() as u64;
        let ig = InterferenceGraph::build(f, &liveness, cfg.class, &cfg.call_clobbers);
        let adjacency = match cfg.strategy {
            SelectStrategy::Differential => Some(build_vreg_adjacency(f, cfg.class).index()),
            SelectStrategy::Lowest | SelectStrategy::Biased => None,
        };
        let t2 = std::time::Instant::now();
        stats.build_nanos += (t2 - t1).as_nanos() as u64;
        let mut state = IrcState::new(f, ig, adjacency.as_ref(), cfg);
        state.temp_watermark = temp_watermark;
        if cfg.spill_metric == SpillMetric::GlobalCoverage {
            state.coverage = overload_coverage(f, &liveness, cfg);
        }
        state.run();
        stats.simplify_steps += state.simplify_steps;
        stats.coalesce_steps += state.coalesce_steps;
        stats.freeze_steps += state.freeze_steps;
        stats.spill_selects += state.spill_selects;
        if state.spilled_count == 0 {
            let rec = record.then(|| crate::allocator::AllocationRecord {
                symbolic: f.clone(),
                assignment: (0..state.vreg_count)
                    .map(|v| {
                        (state.vreg_classes[v as usize] == cfg.class)
                            .then(|| state.color[state.get_alias(v) as usize])
                            .flatten()
                    })
                    .collect(),
                class: cfg.class,
                k: cfg.k,
                call_clobbers: cfg.call_clobbers.clone(),
            });
            stats.moves_coalesced = apply_allocation(f, &state, cfg);
            stats.color_nanos += t2.elapsed().as_nanos() as u64;
            state.recycle();
            if let Some(idx) = adjacency {
                idx.recycle();
            }
            liveness.recycle();
            return Ok((stats, rec));
        }
        let to_spill: Vec<VReg> = (0..state.vreg_count)
            .filter(|&e| state.node_state[e as usize] == NodeState::Spilled)
            .map(VReg)
            .collect();
        stats.spilled_vregs += to_spill.len();
        state.recycle();
        if let Some(idx) = adjacency {
            idx.recycle();
        }
        liveness.recycle();
        rewrite_spills(f, &to_spill);
        stats.color_nanos += t2.elapsed().as_nanos() as u64;
    }
}

/// Rewrite `f` using the colors in `state`; returns moves deleted.
fn apply_allocation(f: &mut Function, state: &IrcState<'_>, cfg: &AllocConfig) -> usize {
    // Substitute colors for virtual registers of the allocated class.
    for b in &mut f.blocks {
        for i in &mut b.insts {
            i.map_regs(|r| match r {
                Reg::Virt(v) if state.vreg_classes[v.index()] == cfg.class => {
                    let c = state.color[state.get_alias(v.0) as usize]
                        .expect("colored node");
                    Reg::Phys(PReg(c))
                }
                other => other,
            });
        }
    }
    // Delete now-trivial moves (dst == src): these are the coalesced ones.
    let mut removed = 0;
    for b in &mut f.blocks {
        b.insts.retain(|i| {
            if let dra_ir::Inst::Mov { dst, src } = i {
                if dst == src {
                    removed += 1;
                    return false;
                }
            }
            true
        });
    }
    f.recompute_cfg();
    removed
}

/// Count, per virtual register, how many over-pressure program points its
/// live range covers (pressure measured against `cfg.k`).
fn overload_coverage(f: &Function, liveness: &Liveness, cfg: &AllocConfig) -> Vec<u32> {
    let vc = f.vreg_count as usize;
    let mut cover = crate::scratch::take_u32_zeroed(vc);
    // One reusable candidate buffer for the whole sweep instead of a
    // fresh Vec per program point.
    let mut lv: Vec<usize> = Vec::new();
    for (b, _) in f.iter_blocks() {
        liveness.for_each_inst_reverse(f, b, |_, live| {
            lv.clear();
            lv.extend(
                live.iter()
                    .filter(|&e| e < vc && f.vreg_classes[e] == cfg.class),
            );
            if lv.len() > cfg.k as usize {
                for &v in &lv {
                    cover[v] += 1;
                }
            }
        });
    }
    cover
}

/// Where a node currently lives. A node is in exactly the worklist its
/// state names (the invariant the old code kept implicitly across nine
/// sets); membership tests are a state compare.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeState {
    /// Not participating this round: wrong class, or never referenced.
    Inactive,
    /// A physical register (entity index >= `vreg_count`).
    Precolored,
    /// On `simplify_worklist`.
    Simplify,
    /// On `freeze_worklist`.
    Freeze,
    /// On `spill_worklist`.
    Spill,
    /// Pushed on the select stack.
    OnStack,
    /// Merged into its union-find parent (`alias` chain leads to the
    /// representative).
    Coalesced,
    /// Colored by the select stage.
    Colored,
    /// Marked for memory by the select stage (optimistic push failed).
    Spilled,
}

/// Where a move currently lives; replaces the five move sets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MoveState {
    /// On `worklist_moves`, eligible for coalescing.
    Worklist,
    /// Not yet ready: a coalesce test failed, may be re-enabled.
    Active,
    /// Given up (endpoint frozen). Never reconsidered.
    Frozen,
    /// Endpoints interfere. Never reconsidered.
    Constrained,
    /// Committed: endpoints share a register.
    Coalesced,
    /// Popped from the worklist, decision in flight inside `coalesce`
    /// (the old code's "removed from every set" window).
    Pending,
}

/// Recyclable backing storage for one round's [`IrcState`] — the "IRC
/// node/move arrays" arena. Buffers whose element types are private to
/// this module live here; plain `u32`/`f64` vectors go through
/// [`crate::scratch`]. One arena per thread: `IrcState::new` takes it
/// whole, `IrcState::recycle` puts it back, so successive rounds (and
/// successive functions on the same batch worker) reuse the same
/// capacity. Every field is cleared and re-sized on take, keeping output
/// bit-identical to fresh allocation.
#[derive(Default)]
struct IrcArena {
    vreg_classes: Vec<RegClass>,
    edges: Vec<(u32, u32)>,
    degree: Vec<usize>,
    node_state: Vec<NodeState>,
    color: Vec<Option<u8>>,
    move_state: Vec<MoveState>,
    merged_moves: Vec<Option<Box<[u32]>>>,
    alias: Vec<Cell<u32>>,
    simplify: Option<OrderedIndexSet>,
    freeze: Option<OrderedIndexSet>,
    spill: Option<OrderedIndexSet>,
    wl_moves: Option<OrderedIndexSet>,
}

thread_local! {
    static IRC_ARENA: std::cell::RefCell<IrcArena> =
        std::cell::RefCell::new(IrcArena::default());
}

fn take_irc_arena() -> IrcArena {
    if !dra_ir::scratch::reuse_enabled() {
        return IrcArena::default();
    }
    IRC_ARENA.with(|a| std::mem::take(&mut *a.borrow_mut()))
}

fn put_irc_arena(a: IrcArena) {
    if !dra_ir::scratch::reuse_enabled() {
        return;
    }
    IRC_ARENA.with(|slot| *slot.borrow_mut() = a);
}

/// Reuse a pooled [`OrderedIndexSet`] (or build one) at `capacity`.
fn fresh_oset(slot: Option<OrderedIndexSet>, capacity: usize) -> OrderedIndexSet {
    match slot {
        Some(mut s) => {
            s.reset(capacity);
            s
        }
        None => OrderedIndexSet::new(capacity),
    }
}

/// The worklist state of one build/select round.
///
/// The graph lives in the hybrid representation built by
/// [`InterferenceGraph`]: the triangular bit-matrix (`adj_bits`) answers
/// the Briggs/George membership probes in O(1), the append-only `Vec<u32>`
/// adjacency lists drive neighbor walks, and `edges` records each
/// undirected edge once for the recoloring pass. Ownership transfers from
/// the build via [`InterferenceGraph::into_parts`] — no per-node set is
/// re-materialized here.
struct IrcState<'a> {
    k: usize,
    strategy: SelectStrategy,
    params: DiffParams,
    vreg_count: u32,
    vreg_classes: Vec<RegClass>,

    // Graph.
    adj_bits: BitMatrix,
    adj_list: Vec<Vec<u32>>,
    edges: Vec<(u32, u32)>,
    degree: Vec<usize>,
    spill_weight: Vec<f64>,

    // Node state: one entry per entity, plus the three ordered worklists
    // the engine actually pops from.
    node_state: Vec<NodeState>,
    simplify_worklist: OrderedIndexSet,
    freeze_worklist: OrderedIndexSet,
    spill_worklist: OrderedIndexSet,
    select_stack: Vec<u32>,
    /// Nodes in `NodeState::Spilled` (avoids a rescan per round).
    spilled_count: usize,

    // Moves: CSR layout (`move_off[n]..move_off[n+1]` indexes
    // `move_dat`), ascending move indices per node. `combine` unions two
    // lists; the result goes in `merged_moves[representative]` which
    // shadows the CSR row from then on.
    moves: Vec<MoveRef>,
    move_off: Vec<u32>,
    move_dat: Vec<u32>,
    merged_moves: Vec<Option<Box<[u32]>>>,
    move_state: Vec<MoveState>,
    worklist_moves: OrderedIndexSet,

    /// Union-find parent pointers; `Cell` so `get_alias(&self)` can
    /// path-compress. Compression is invisible: a coalesced node's root
    /// never changes (roots are exactly the non-`Coalesced` states), so
    /// pointing any chain member straight at the current root preserves
    /// every future walk's answer.
    alias: Vec<Cell<u32>>,
    color: Vec<Option<u8>>,

    /// Epoch-marked scratch for `briggs_ok` (replaces a per-call
    /// `HashSet`; the count of distinct high-degree neighbors is
    /// order-independent).
    mark: Vec<u32>,
    mark_epoch: u32,

    /// Vregs >= this are spill temporaries (never profitable to spill).
    temp_watermark: u32,
    /// Overloaded-point coverage per vreg (GlobalCoverage metric only).
    coverage: Vec<u32>,

    adjacency: Option<&'a AdjacencyIndex>,

    // Work counters (`irc.*` telemetry).
    simplify_steps: u64,
    coalesce_steps: u64,
    freeze_steps: u64,
    spill_selects: u64,
}

/// Union of two ascending move-index slices (the dense equivalent of
/// `move_list[u].extend(move_list[v].clone())`).
fn merge_moves(a: &[u32], b: &[u32]) -> Box<[u32]> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out.into_boxed_slice()
}

impl<'a> IrcState<'a> {
    fn new(
        f: &Function,
        ig: InterferenceGraph,
        adjacency: Option<&'a AdjacencyIndex>,
        cfg: &AllocConfig,
    ) -> IrcState<'a> {
        let n = ig.num_nodes();
        let vreg_count = ig.vreg_count();
        // Adopt the build's graph wholesale: bit-matrix, adjacency lists,
        // and per-node degrees are already in the shape the worklists need.
        // Everything else comes from the per-thread arena, fully
        // re-initialized.
        let mut ar = take_irc_arena();
        let (adj_bits, mut adj_list, degrees, moves, use_def_weight) = ig.into_parts();
        let mut edges = std::mem::take(&mut ar.edges);
        edges.clear();
        for (a, ns) in adj_list.iter().enumerate() {
            for &b in ns {
                if (a as u32) < b {
                    edges.push((a as u32, b));
                }
            }
        }
        let mut degree = std::mem::take(&mut ar.degree);
        degree.clear();
        degree.extend(degrees.iter().map(|&d| d as usize));
        crate::scratch::put_u32(degrees);
        // Precolored entities: the used physical registers. Registers >= k
        // are still precolored (with their own numbers) so that
        // interference with them is honored, but they are not allocatable
        // colors. They carry effectively infinite degree and no adjacency
        // list (never simplified, never walked).
        let mut color = std::mem::take(&mut ar.color);
        color.clear();
        color.resize(n, None);
        let mut node_state = std::mem::take(&mut ar.node_state);
        node_state.clear();
        node_state.resize(n, NodeState::Inactive);
        for e in vreg_count as usize..n {
            color[e] = Some((e - vreg_count as usize) as u8);
            degree[e] = usize::MAX / 2;
            adj_list[e].clear();
            node_state[e] = NodeState::Precolored;
        }

        // CSR move lists: one slot per (node, move) incidence, ascending
        // move indices per node (counting sort over `mi`). A self-move
        // (dst == src) takes one slot, like its single set entry did.
        let mut move_off = crate::scratch::take_u32();
        move_off.resize(n + 1, 0);
        for m in &moves {
            move_off[m.dst as usize + 1] += 1;
            if m.src != m.dst {
                move_off[m.src as usize + 1] += 1;
            }
        }
        for i in 0..n {
            move_off[i + 1] += move_off[i];
        }
        let mut move_dat = crate::scratch::take_u32();
        move_dat.resize(move_off[n] as usize, 0);
        let mut cursor = crate::scratch::take_u32();
        cursor.extend_from_slice(&move_off[..n]);
        for (mi, m) in moves.iter().enumerate() {
            move_dat[cursor[m.dst as usize] as usize] = mi as u32;
            cursor[m.dst as usize] += 1;
            if m.src != m.dst {
                move_dat[cursor[m.src as usize] as usize] = mi as u32;
                cursor[m.src as usize] += 1;
            }
        }
        crate::scratch::put_u32(cursor);
        let mut worklist_moves = fresh_oset(ar.wl_moves.take(), moves.len());
        for mi in 0..moves.len() {
            worklist_moves.insert(mi as u32);
        }

        let mut vreg_classes = std::mem::take(&mut ar.vreg_classes);
        vreg_classes.clear();
        vreg_classes.extend_from_slice(&f.vreg_classes);
        let mut move_state = std::mem::take(&mut ar.move_state);
        move_state.clear();
        move_state.resize(moves.len(), MoveState::Worklist);
        let mut merged_moves = std::mem::take(&mut ar.merged_moves);
        merged_moves.clear();
        merged_moves.resize(n, None);
        let mut alias = std::mem::take(&mut ar.alias);
        alias.clear();
        alias.extend((0..n as u32).map(Cell::new));
        let mut mark = crate::scratch::take_u32();
        mark.resize(n, 0);
        let mut select_stack = crate::scratch::take_u32();
        select_stack.clear();

        let mut st = IrcState {
            k: cfg.k as usize,
            strategy: cfg.strategy,
            params: cfg.params,
            vreg_count,
            vreg_classes,
            adj_bits,
            adj_list,
            edges,
            degree,
            spill_weight: use_def_weight,
            node_state,
            simplify_worklist: fresh_oset(ar.simplify.take(), vreg_count as usize),
            freeze_worklist: fresh_oset(ar.freeze.take(), vreg_count as usize),
            spill_worklist: fresh_oset(ar.spill.take(), vreg_count as usize),
            select_stack,
            spilled_count: 0,
            move_state,
            moves,
            move_off,
            move_dat,
            merged_moves,
            worklist_moves,
            alias,
            color,
            mark,
            mark_epoch: 0,
            temp_watermark: u32::MAX,
            coverage: Vec::new(),
            adjacency,
            simplify_steps: 0,
            coalesce_steps: 0,
            freeze_steps: 0,
            spill_selects: 0,
        };

        // Initial worklists: only class-matching vregs participate. Values
        // never used or defined would pollute worklists; weight > 0 or any
        // interference/move involvement marks a referenced node.
        for v in 0..vreg_count {
            if st.vreg_classes[v as usize] != cfg.class {
                continue;
            }
            let referenced = st.spill_weight[v as usize] > 0.0
                || !st.adj_list[v as usize].is_empty()
                || !st.moves_of(v).is_empty();
            if !referenced {
                continue;
            }
            if st.degree[v as usize] >= st.k {
                st.node_state[v as usize] = NodeState::Spill;
                st.spill_worklist.insert(v);
            } else if st.move_related(v) {
                st.node_state[v as usize] = NodeState::Freeze;
                st.freeze_worklist.insert(v);
            } else {
                st.node_state[v as usize] = NodeState::Simplify;
                st.simplify_worklist.insert(v);
            }
        }
        st
    }

    /// Return every backing buffer to its pool: the graph parts to
    /// [`crate::scratch`], the typed node/move arrays to the per-thread
    /// [`IrcArena`]. Called at the end of each round; the next round (or
    /// the next function on this worker) then builds its state
    /// allocation-free.
    fn recycle(self) {
        crate::scratch::put_matrix(self.adj_bits);
        crate::scratch::put_adj(self.adj_list);
        crate::scratch::put_moves(self.moves);
        crate::scratch::put_f64(self.spill_weight);
        crate::scratch::put_u32(self.move_off);
        crate::scratch::put_u32(self.move_dat);
        crate::scratch::put_u32(self.mark);
        crate::scratch::put_u32(self.select_stack);
        crate::scratch::put_u32(self.coverage);
        put_irc_arena(IrcArena {
            vreg_classes: self.vreg_classes,
            edges: self.edges,
            degree: self.degree,
            node_state: self.node_state,
            color: self.color,
            move_state: self.move_state,
            merged_moves: self.merged_moves,
            alias: self.alias,
            simplify: Some(self.simplify_worklist),
            freeze: Some(self.freeze_worklist),
            spill: Some(self.spill_worklist),
            wl_moves: Some(self.worklist_moves),
        });
    }

    /// Is `e` a precolored (physical-register) entity?
    #[inline]
    fn is_precolored(&self, e: u32) -> bool {
        e >= self.vreg_count
    }

    /// Is `w` still in the graph? The old `adjacent()` filter: everything
    /// except stacked and merged-away nodes counts as a live neighbor.
    #[inline]
    fn in_graph(&self, w: u32) -> bool {
        !matches!(
            self.node_state[w as usize],
            NodeState::OnStack | NodeState::Coalesced
        )
    }

    /// The move indices touching `n`, ascending.
    #[inline]
    fn moves_of(&self, n: u32) -> &[u32] {
        match &self.merged_moves[n as usize] {
            Some(b) => b,
            None => {
                let s = self.move_off[n as usize] as usize;
                let e = self.move_off[n as usize + 1] as usize;
                &self.move_dat[s..e]
            }
        }
    }

    /// `moves_of(n)[i]`, re-borrowed per call so loop bodies can mutate
    /// move state while walking the list by index. Sound as a snapshot:
    /// the only functions that replace a node's list (`combine`) are
    /// never called while such a walk is in flight.
    #[inline]
    fn nth_move(&self, n: u32, i: usize) -> usize {
        self.moves_of(n)[i] as usize
    }

    /// Does move `m` still count for move-relatedness (old
    /// `node_moves` filter: active or worklist)?
    #[inline]
    fn move_is_live(&self, m: usize) -> bool {
        matches!(self.move_state[m], MoveState::Active | MoveState::Worklist)
    }

    fn move_related(&self, n: u32) -> bool {
        self.moves_of(n).iter().any(|&m| self.move_is_live(m as usize))
    }

    /// Add an edge during coalescing (combine), deduped via the bit-matrix.
    fn add_edge_init(&mut self, a: u32, b: u32) {
        if a == b || !self.adj_bits.set(a as usize, b as usize) {
            return;
        }
        self.edges.push((a, b));
        if !self.is_precolored(a) {
            self.adj_list[a as usize].push(b);
            self.degree[a as usize] += 1;
        }
        if !self.is_precolored(b) {
            self.adj_list[b as usize].push(a);
            self.degree[b as usize] += 1;
        }
    }

    fn run(&mut self) {
        loop {
            if let Some(n) = self.simplify_worklist.peek_min() {
                self.simplify(n);
            } else if let Some(m) = self.worklist_moves.peek_min() {
                self.coalesce(m as usize);
            } else if let Some(n) = self.freeze_worklist.peek_min() {
                self.freeze(n);
            } else if !self.spill_worklist.is_empty() {
                self.select_spill();
            } else {
                break;
            }
        }
        self.assign_colors();
        if self.strategy == SelectStrategy::Differential && self.spilled_count == 0 {
            self.refine_colors();
        }
    }

    /// Iterative recoloring (differential select only): once every node is
    /// colored, each node's adjacency cost can be evaluated against *fully
    /// assigned* neighbors — unlike during the select sweep, where
    /// later-colored neighbors were still blank. Greedily move nodes to
    /// their cheapest legal color until a fixpoint; total cost decreases
    /// monotonically, so this terminates.
    fn refine_colors(&mut self) {
        let Some(adj) = self.adjacency else { return };
        // `adj_list` is asymmetric after coalescing (edges of a merged
        // node transferred to its representative only for neighbors still
        // in the graph at combine time — nodes already on the select
        // stack keep the edge on their side alone). Recoloring needs the
        // *full* symmetric interference neighborhood, so rebuild it from
        // the undirected edge list with aliases resolved. Indexed by
        // entity — no hash iteration anywhere in this pass. Duplicate
        // entries are harmless (the list only drives color removal).
        let mut nbr: Vec<Vec<u32>> = vec![Vec::new(); self.adj_list.len()];
        for i in 0..self.edges.len() {
            let (a, b) = self.edges[i];
            let ra = self.get_alias(a);
            let rb = self.get_alias(b);
            if ra != rb {
                nbr[ra as usize].push(rb);
                nbr[rb as usize].push(ra);
            }
        }
        // Hottest (highest incident adjacency weight) nodes move first:
        // their choices constrain everyone else, so they deserve first
        // pick of the cheap colors. Stable sort over the ascending scan
        // keeps ties in index order, like the sorted set scan it replaces.
        let mut nodes: Vec<u32> = (0..self.vreg_count)
            .filter(|&v| self.node_state[v as usize] == NodeState::Colored)
            .collect();
        nodes.sort_by(|&a, &b| {
            adj.incident_weight(b)
                .partial_cmp(&adj.incident_weight(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for _pass in 0..8 {
            let mut improved = false;
            for &n in &nodes {
                let mut ok = ColorSet::below(self.k as u8);
                for &wa in &nbr[n as usize] {
                    if self.node_state[wa as usize] == NodeState::Colored
                        || self.is_precolored(wa)
                    {
                        if let Some(c) = self.color[wa as usize] {
                            ok.remove(c);
                        }
                    }
                }
                let current = self.color[n as usize].expect("colored");
                ok.insert(current);
                let eval = |c: u8| {
                    adj.node_cost(
                        n,
                        |node| {
                            let a = self.get_alias(node);
                            if a == n || node == n {
                                Some(c)
                            } else {
                                self.color[a as usize]
                            }
                        },
                        self.params,
                    )
                };
                let cur_cost = eval(current);
                let mut best = current;
                let mut best_cost = cur_cost;
                for c in ok.iter() {
                    if c == current {
                        continue;
                    }
                    let cost = eval(c);
                    if cost < best_cost {
                        best_cost = cost;
                        best = c;
                    }
                }
                if best != current {
                    self.color[n as usize] = Some(best);
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        // Re-propagate to coalesced aliases.
        for n in 0..self.vreg_count {
            if self.node_state[n as usize] == NodeState::Coalesced {
                let a = self.get_alias(n);
                self.color[n as usize] = self.color[a as usize];
            }
        }
    }

    fn simplify(&mut self, n: u32) {
        self.simplify_steps += 1;
        self.simplify_worklist.remove(n);
        self.select_stack.push(n);
        self.node_state[n as usize] = NodeState::OnStack;
        // Walking the list by index with a lazy `in_graph` check equals
        // the old collect-then-iterate: `decrement_degree` never changes
        // an on-stack/coalesced verdict and never touches `adj_list[n]`.
        for i in 0..self.adj_list[n as usize].len() {
            let m = self.adj_list[n as usize][i];
            if self.in_graph(m) {
                self.decrement_degree(m);
            }
        }
    }

    fn decrement_degree(&mut self, m: u32) {
        if self.is_precolored(m) {
            return;
        }
        let d = self.degree[m as usize];
        self.degree[m as usize] = d.saturating_sub(1);
        if d == self.k {
            // EnableMoves({m} ∪ Adjacent(m)) — neighbors first, then m,
            // the order the collected slice had.
            for i in 0..self.adj_list[m as usize].len() {
                let w = self.adj_list[m as usize][i];
                if self.in_graph(w) {
                    self.enable_moves_for(w);
                }
            }
            self.enable_moves_for(m);
            if self.node_state[m as usize] == NodeState::Spill {
                self.spill_worklist.remove(m);
            }
            if self.move_related(m) {
                debug_assert!(matches!(
                    self.node_state[m as usize],
                    NodeState::Spill | NodeState::Freeze
                ));
                self.node_state[m as usize] = NodeState::Freeze;
                self.freeze_worklist.insert(m);
            } else {
                debug_assert!(matches!(
                    self.node_state[m as usize],
                    NodeState::Spill | NodeState::Simplify
                ));
                self.node_state[m as usize] = NodeState::Simplify;
                self.simplify_worklist.insert(m);
            }
        }
    }

    /// Re-enable `n`'s deferred moves (old `EnableMoves` body for one
    /// node): every `Active` move returns to the worklist. Reads the CSR
    /// row directly — no filtered collection.
    fn enable_moves_for(&mut self, n: u32) {
        for i in 0..self.moves_of(n).len() {
            let m = self.nth_move(n, i);
            if self.move_state[m] == MoveState::Active {
                self.move_state[m] = MoveState::Worklist;
                self.worklist_moves.insert(m as u32);
            }
        }
    }

    /// Union-find root of `n` with path compression. Roots are exactly
    /// the nodes not in [`NodeState::Coalesced`]; before select they are
    /// uncolored (or precolored) representatives.
    fn get_alias(&self, n: u32) -> u32 {
        if self.node_state[n as usize] != NodeState::Coalesced {
            return n;
        }
        let mut root = self.alias[n as usize].get();
        while self.node_state[root as usize] == NodeState::Coalesced {
            root = self.alias[root as usize].get();
        }
        let mut cur = n;
        while cur != root {
            let next = self.alias[cur as usize].get();
            self.alias[cur as usize].set(root);
            cur = next;
        }
        root
    }

    fn add_work_list(&mut self, u: u32) {
        if !self.is_precolored(u)
            && !self.move_related(u)
            && self.degree[u as usize] < self.k
        {
            debug_assert!(matches!(
                self.node_state[u as usize],
                NodeState::Freeze | NodeState::Simplify
            ));
            if self.node_state[u as usize] == NodeState::Freeze {
                self.freeze_worklist.remove(u);
            }
            self.node_state[u as usize] = NodeState::Simplify;
            self.simplify_worklist.insert(u);
        }
    }

    fn ok(&self, t: u32, r: u32) -> bool {
        self.degree[t as usize] < self.k
            || self.is_precolored(t)
            || self.adj_bits.contains(t as usize, r as usize)
    }

    /// George's test: every live neighbor of `v` is ok against `u`.
    fn george_ok(&self, u: u32, v: u32) -> bool {
        self.adj_list[v as usize]
            .iter()
            .all(|&t| !self.in_graph(t) || self.ok(t, u))
    }

    /// Briggs' conservative test over the combined neighborhoods: fewer
    /// than k *distinct* live neighbors of significant degree. Dedup via
    /// the epoch-marked scratch (count is order-independent).
    fn briggs_ok(&mut self, u: u32, v: u32) -> bool {
        self.mark_epoch += 1;
        let epoch = self.mark_epoch;
        let mut k_count = 0;
        for node in [u, v] {
            for i in 0..self.adj_list[node as usize].len() {
                let t = self.adj_list[node as usize][i];
                if !self.in_graph(t) || self.mark[t as usize] == epoch {
                    continue;
                }
                self.mark[t as usize] = epoch;
                if self.degree[t as usize] >= self.k {
                    k_count += 1;
                }
            }
        }
        k_count < self.k
    }

    fn coalesce(&mut self, m: usize) {
        self.coalesce_steps += 1;
        self.worklist_moves.remove(m as u32);
        self.move_state[m] = MoveState::Pending;
        let mv = self.moves[m];
        let x = self.get_alias(mv.dst);
        let y = self.get_alias(mv.src);
        let (u, v) = if self.is_precolored(y) {
            (y, x)
        } else {
            (x, y)
        };
        if u == v {
            self.move_state[m] = MoveState::Coalesced;
            self.add_work_list(u);
        } else if self.is_precolored(v) || self.adj_bits.contains(u as usize, v as usize) {
            self.move_state[m] = MoveState::Constrained;
            self.add_work_list(u);
            self.add_work_list(v);
        } else {
            // Colors >= k exist on precolored nodes whose number exceeds
            // the allocatable range; never coalesce into those.
            let u_uncolorable =
                self.is_precolored(u) && (self.color[u as usize].unwrap() as usize) >= self.k;
            let george = self.is_precolored(u) && self.george_ok(u, v);
            let briggs = !self.is_precolored(u) && self.briggs_ok(u, v);
            if !u_uncolorable && (george || briggs) {
                self.move_state[m] = MoveState::Coalesced;
                self.combine(u, v);
                self.add_work_list(u);
            } else {
                self.move_state[m] = MoveState::Active;
            }
        }
        debug_assert_ne!(self.move_state[m], MoveState::Pending);
    }

    fn combine(&mut self, u: u32, v: u32) {
        if self.node_state[v as usize] == NodeState::Freeze {
            self.freeze_worklist.remove(v);
        } else {
            debug_assert_eq!(self.node_state[v as usize], NodeState::Spill);
            self.spill_worklist.remove(v);
        }
        self.node_state[v as usize] = NodeState::Coalesced;
        self.alias[v as usize].set(u);
        let merged = merge_moves(self.moves_of(u), self.moves_of(v));
        self.merged_moves[u as usize] = Some(merged);
        self.enable_moves_for(v);
        for i in 0..self.adj_list[v as usize].len() {
            let t = self.adj_list[v as usize][i];
            if !self.in_graph(t) {
                continue;
            }
            self.add_edge_init(t, u);
            self.decrement_degree(t);
        }
        if self.degree[u as usize] >= self.k && self.node_state[u as usize] == NodeState::Freeze {
            self.freeze_worklist.remove(u);
            self.node_state[u as usize] = NodeState::Spill;
            self.spill_worklist.insert(u);
        }
    }

    fn freeze(&mut self, u: u32) {
        self.freeze_steps += 1;
        self.freeze_worklist.remove(u);
        self.node_state[u as usize] = NodeState::Simplify;
        self.simplify_worklist.insert(u);
        self.freeze_moves(u);
    }

    fn freeze_moves(&mut self, u: u32) {
        for i in 0..self.moves_of(u).len() {
            let m = self.nth_move(u, i);
            // Lazily re-checking liveness per move equals the old
            // snapshot of `node_moves(u)`: the loop body only retires the
            // move it is currently processing.
            if !self.move_is_live(m) {
                continue;
            }
            let mv = self.moves[m];
            let (x, y) = (mv.dst, mv.src);
            let v = if self.get_alias(y) == self.get_alias(u) {
                self.get_alias(x)
            } else {
                self.get_alias(y)
            };
            // Only active moves retire to frozen; a worklist move stays
            // queued (the old code inserted it into `frozen_moves` too,
            // but never consulted that set — worklist membership won).
            if self.move_state[m] == MoveState::Active {
                self.move_state[m] = MoveState::Frozen;
            }
            if !self.is_precolored(v)
                && !self.move_related(v)
                && self.degree[v as usize] < self.k
            {
                debug_assert!(matches!(
                    self.node_state[v as usize],
                    NodeState::Freeze | NodeState::Simplify
                ));
                if self.node_state[v as usize] == NodeState::Freeze {
                    self.freeze_worklist.remove(v);
                }
                self.node_state[v as usize] = NodeState::Simplify;
                self.simplify_worklist.insert(v);
            }
        }
    }

    fn select_spill(&mut self) {
        self.spill_selects += 1;
        // Lowest spill metric first: cheap, high-degree values go to
        // memory. Ascending scan, strict-improvement replacement — the
        // first minimal element wins ties, like `Iterator::min_by` did.
        let mut best: Option<(u32, f64)> = None;
        for n in self.spill_worklist.iter() {
            let metric = self.spill_metric(n);
            match best {
                Some((_, bm)) if !(metric < bm) => {}
                _ => best = Some((n, metric)),
            }
        }
        let m = best.expect("nonempty spill worklist").0;
        self.spill_worklist.remove(m);
        self.node_state[m as usize] = NodeState::Simplify;
        self.simplify_worklist.insert(m);
        self.freeze_moves(m);
    }

    fn spill_metric(&self, e: u32) -> f64 {
        if e >= self.temp_watermark && e < self.vreg_count {
            // Spill temporary: choosing it again would loop forever.
            return f64::MAX / 4.0;
        }
        let deg = self.degree[e as usize].max(1) as f64;
        if let Some(&cover) = self.coverage.get(e as usize) {
            // Global metric: coverage of over-pressure points dominates,
            // degree breaks ties — cheap, wide-coverage ranges first.
            return self.spill_weight[e as usize] / (deg + 4.0 * cover as f64);
        }
        self.spill_weight[e as usize] / deg
    }

    fn assign_colors(&mut self) {
        while let Some(n) = self.select_stack.pop() {
            let mut ok = ColorSet::below(self.k as u8);
            for i in 0..self.adj_list[n as usize].len() {
                let w = self.adj_list[n as usize][i];
                let wa = self.get_alias(w);
                if self.node_state[wa as usize] == NodeState::Colored || self.is_precolored(wa)
                {
                    if let Some(c) = self.color[wa as usize] {
                        ok.remove(c);
                    }
                }
            }
            if ok.is_empty() {
                self.node_state[n as usize] = NodeState::Spilled;
                self.spilled_count += 1;
            } else {
                self.node_state[n as usize] = NodeState::Colored;
                let c = self.choose_color(n, ok);
                self.color[n as usize] = Some(c);
            }
        }
        for n in 0..self.vreg_count {
            if self.node_state[n as usize] == NodeState::Coalesced {
                let a = self.get_alias(n);
                self.color[n as usize] = self.color[a as usize];
            }
        }
    }

    /// The select-stage hook: baseline takes the lowest color;
    /// differential select (Section 6) scores each candidate against the
    /// adjacency graph and takes the cheapest.
    fn choose_color(&self, n: u32, ok: ColorSet) -> u8 {
        match self.strategy {
            SelectStrategy::Lowest => ok.first().expect("nonempty"),
            SelectStrategy::Biased => {
                // A color already assigned to a move partner lets the
                // remaining move coalesce away at zero cost.
                for &m in self.moves_of(n) {
                    let mv = self.moves[m as usize];
                    let other = if self.get_alias(mv.dst) == self.get_alias(n) {
                        self.get_alias(mv.src)
                    } else {
                        self.get_alias(mv.dst)
                    };
                    if self.node_state[other as usize] == NodeState::Colored
                        || self.is_precolored(other)
                    {
                        if let Some(c) = self.color[other as usize] {
                            if ok.contains(c) {
                                return c;
                            }
                        }
                    }
                }
                ok.first().expect("nonempty")
            }
            SelectStrategy::Differential => {
                let g = self.adjacency.expect("adjacency graph present");
                let mut best = ok.first().expect("nonempty");
                let mut best_cost = f64::INFINITY;
                for c in ok.iter() {
                    let cost = g.node_cost(
                        n,
                        |node| {
                            let a = self.get_alias(node);
                            if a == n || node == n {
                                Some(c)
                            } else if self.is_precolored(a)
                                || self.node_state[a as usize] == NodeState::Colored
                            {
                                self.color[a as usize]
                            } else {
                                None
                            }
                        },
                        self.params,
                    );
                    if cost < best_cost {
                        best_cost = cost;
                        best = c;
                    }
                }
                best
            }
        }
    }
}

/// Convenience wrapper: allocate a whole program in place.
///
/// # Errors
///
/// Propagates the first [`AllocError`] from any function.
pub fn irc_allocate_program(
    p: &mut dra_ir::Program,
    cfg: &AllocConfig,
) -> Result<AllocStats, AllocError> {
    let mut total = AllocStats::default();
    for f in &mut p.funcs {
        let s = irc_allocate(f, cfg)?;
        total.rounds = total.rounds.max(s.rounds);
        total.spilled_vregs += s.spilled_vregs;
        total.moves_coalesced += s.moves_coalesced;
        total.liveness_nanos += s.liveness_nanos;
        total.build_nanos += s.build_nanos;
        total.color_nanos += s.color_nanos;
        total.simplify_steps += s.simplify_steps;
        total.coalesce_steps += s.coalesce_steps;
        total.freeze_steps += s.freeze_steps;
        total.spill_selects += s.spill_selects;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BinOp, Cond, FunctionBuilder};

    /// Every operand physical and `< k`; code executes the same way.
    fn assert_allocated(f: &Function, k: u16) {
        assert!(f.is_fully_physical(), "virtual registers remain:\n{f}");
        for i in f.iter_insts() {
            for r in i.accesses() {
                let p = r.expect_phys();
                assert!(
                    (p.number() as u16) < k,
                    "register {p} out of range in `{i}`"
                );
            }
        }
    }

    #[test]
    fn straight_line_no_spills() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov_imm(y, 2);
        b.bin(BinOp::Add, z, x.into(), y.into());
        b.ret(Some(z.into()));
        let mut f = b.finish();
        let stats = irc_allocate(&mut f, &AllocConfig::baseline(4)).unwrap();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.spilled_vregs, 0);
        assert_allocated(&f, 4);
    }

    #[test]
    fn interfering_values_get_distinct_registers() {
        let mut b = FunctionBuilder::new("f");
        let vs: Vec<_> = (0..3).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let s = b.new_vreg();
        b.bin(BinOp::Add, s, vs[0].into(), vs[1].into());
        b.bin(BinOp::Add, s, s.into(), vs[2].into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        irc_allocate(&mut f, &AllocConfig::baseline(4)).unwrap();
        assert_allocated(&f, 4);
        // vs[0], vs[1], vs[2] all live together at the first add: the three
        // first mov_imm destinations must be pairwise distinct.
        let dsts: Vec<u8> = f.blocks[0]
            .insts
            .iter()
            .take(3)
            .flat_map(|i| i.defs())
            .map(|r| r.expect_phys().number())
            .collect();
        assert_eq!(dsts.len(), 3);
        assert_ne!(dsts[0], dsts[1]);
        assert_ne!(dsts[0], dsts[2]);
        assert_ne!(dsts[1], dsts[2]);
    }

    #[test]
    fn high_pressure_forces_spills() {
        let mut b = FunctionBuilder::new("f");
        let vs: Vec<_> = (0..8).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let stats = irc_allocate(&mut f, &AllocConfig::baseline(4)).unwrap();
        assert!(stats.spilled_vregs > 0, "8 live values in 4 registers");
        assert!(stats.rounds > 1);
        assert_allocated(&f, 4);
        assert!(f.count_insts(|i| i.is_spill()) > 0);
    }

    #[test]
    fn moves_get_coalesced() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        let y = b.new_vreg();
        let z = b.new_vreg();
        b.mov_imm(x, 1);
        b.mov(y, x.into());
        b.mov(z, y.into());
        b.ret(Some(z.into()));
        let mut f = b.finish();
        let stats = irc_allocate(&mut f, &AllocConfig::baseline(4)).unwrap();
        assert_eq!(stats.moves_coalesced, 2, "both moves vanish");
        assert_eq!(f.count_insts(|i| i.is_move()), 0);
        assert_allocated(&f, 4);
    }

    #[test]
    fn call_clobbers_respected() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg();
        b.mov_imm(x, 1);
        b.call(0, vec![], None);
        b.ret(Some(x.into()));
        let mut f = b.finish();
        let mut cfg = AllocConfig::baseline(4);
        cfg.call_clobbers = vec![PReg(0), PReg(1)];
        irc_allocate(&mut f, &cfg).unwrap();
        assert_allocated(&f, 4);
        // x lives across the call: it must not sit in r0 or r1.
        let x_loc = f
            .iter_insts()
            .find_map(|i| match i {
                dra_ir::Inst::Ret { value: Some(r) } => Some(r.expect_phys().number()),
                _ => None,
            })
            .unwrap();
        assert!(x_loc >= 2, "x in clobbered r{x_loc}");
    }

    #[test]
    fn loop_allocation_stays_valid() {
        let mut b = FunctionBuilder::new("f");
        let i = b.new_vreg();
        let acc = b.new_vreg();
        let n = b.new_vreg();
        b.mov_imm(i, 0);
        b.mov_imm(acc, 0);
        b.mov_imm(n, 100);
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.br(h);
        b.switch_to(h);
        b.cond_br(Cond::Lt, i.into(), n.into(), body, ex);
        b.switch_to(body);
        b.bin(BinOp::Add, acc, acc.into(), i.into());
        b.bin_imm(BinOp::Add, i, i.into(), 1);
        b.br(h);
        b.switch_to(ex);
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        dra_ir::loops::assign_static_frequencies(&mut f);
        irc_allocate(&mut f, &AllocConfig::baseline(4)).unwrap();
        assert_allocated(&f, 4);
        // Three loop-carried values in 4 registers: no spills expected.
        assert_eq!(f.count_insts(|i| i.is_spill()), 0);
    }

    #[test]
    fn differential_select_produces_valid_allocation() {
        let mut b = FunctionBuilder::new("f");
        let vs: Vec<_> = (0..6).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let cfg = AllocConfig::differential(DiffParams::lowend_12_8());
        irc_allocate(&mut f, &cfg).unwrap();
        assert_allocated(&f, 12);
    }

    #[test]
    fn differential_select_lowers_adjacency_cost() {
        // Compare adjacency cost (post-allocation, register granularity)
        // between baseline-lowest and differential select on the same
        // moderately-pressured function.
        let build = || {
            let mut b = FunctionBuilder::new("f");
            let vs: Vec<_> = (0..10).map(|_| b.new_vreg()).collect();
            for (i, &v) in vs.iter().enumerate() {
                b.mov_imm(v, i as i32);
            }
            let s = b.new_vreg();
            b.mov_imm(s, 0);
            // Access pattern that hops between distant values.
            for k in 0..10 {
                let v = vs[(k * 7) % 10];
                b.bin(BinOp::Add, s, s.into(), v.into());
            }
            b.ret(Some(s.into()));
            b.finish()
        };
        let params = DiffParams::new(12, 4); // tight DiffN stresses select
        let mut base = build();
        let mut cfg = AllocConfig::baseline(12);
        cfg.params = params;
        irc_allocate(&mut base, &cfg).unwrap();
        let base_cost = dra_adjgraph::build_preg_adjacency(&base, RegClass::Int, 12)
            .assignment_cost(|n| Some(n as u8), params);

        let mut diff = build();
        let mut dcfg = AllocConfig::differential(params);
        dcfg.k = 12;
        irc_allocate(&mut diff, &dcfg).unwrap();
        let diff_cost = dra_adjgraph::build_preg_adjacency(&diff, RegClass::Int, 12)
            .assignment_cost(|n| Some(n as u8), params);
        assert!(
            diff_cost <= base_cost,
            "differential select ({diff_cost}) no worse than baseline ({base_cost})"
        );
    }

    #[test]
    fn spilled_code_still_references_valid_slots() {
        let mut b = FunctionBuilder::new("f");
        let vs: Vec<_> = (0..10).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        b.ret(Some(s.into()));
        let mut f = b.finish();
        irc_allocate(&mut f, &AllocConfig::baseline(3)).unwrap();
        for i in f.iter_insts() {
            match i {
                dra_ir::Inst::SpillLoad { slot, .. }
                | dra_ir::Inst::SpillStore { slot, .. } => {
                    assert!(slot.0 < f.spill_slots, "slot out of range");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn program_allocation_covers_all_functions() {
        let mut b1 = FunctionBuilder::new("main");
        let x = b1.new_vreg();
        b1.mov_imm(x, 1);
        b1.call(1, vec![x.into()], Some(x));
        b1.ret(Some(x.into()));
        let mut b2 = FunctionBuilder::new("leaf");
        let p = b2.new_param();
        let y = b2.new_vreg();
        b2.bin_imm(BinOp::Add, y, p.into(), 1);
        b2.ret(Some(y.into()));
        let mut prog = dra_ir::Program {
            funcs: vec![b1.finish(), b2.finish()],
            entry: 0,
        };
        irc_allocate_program(&mut prog, &AllocConfig::baseline(4)).unwrap();
        for f in &prog.funcs {
            assert_allocated(f, 4);
        }
    }

    #[test]
    fn work_counters_cover_all_four_stages() {
        // A program that drives the engine through all four stages with
        // k = 4. Two disjoint near-cliques (a0..a4 and b0..b4) keep both
        // sides of the move `y <- x` surrounded by >= k distinct
        // significant-degree neighbors, so Briggs defers the move
        // (coalesce -> active) twice; spill selection erodes the a-side
        // until x's degree passes through k, which re-enables the move
        // and parks x on the freeze worklist; the retried coalesce still
        // fails against the intact b-side, so x is popped by freeze.
        // Extra uses keep x and y's spill metric above the clique
        // members' so spill selection never freezes the move itself.
        let mut b = FunctionBuilder::new("f");
        let a: Vec<_> = (0..5).map(|_| b.new_vreg()).collect();
        let x = b.new_vreg();
        let y = b.new_vreg();
        let bs: Vec<_> = (0..5).map(|_| b.new_vreg()).collect();
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for (i, &v) in a.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        b.bin(BinOp::Add, s, s.into(), a[4].into()); // a4 dies before x
        b.mov_imm(x, 9);
        b.bin(BinOp::Add, s, s.into(), x.into()); // weight so spill
        b.bin(BinOp::Add, s, s.into(), x.into()); // selection skips x
        for &v in a.iter().take(4) {
            b.bin(BinOp::Add, s, s.into(), v.into()); // a-side dies pre-move
        }
        b.mov(y, x.into()); // x's last use: endpoints don't interfere
        for (i, &v) in bs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        b.bin(BinOp::Add, s, s.into(), bs[4].into());
        for &v in bs.iter().take(4) {
            b.bin(BinOp::Add, s, s.into(), v.into());
        }
        for _ in 0..3 {
            b.bin(BinOp::Add, s, s.into(), y.into()); // y's weight
        }
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let stats = irc_allocate(&mut f, &AllocConfig::baseline(4)).unwrap();
        assert!(stats.simplify_steps > 0, "{stats:?}");
        assert!(stats.coalesce_steps > 0, "{stats:?}");
        assert!(stats.freeze_steps > 0, "{stats:?}");
        assert!(stats.spill_selects > 0, "{stats:?}");
        assert_allocated(&f, 4);
    }

    /// Differential select + refinement runs on indexed state only — no
    /// code path may depend on hash iteration order. Repeated runs on
    /// the same input must agree bit for bit.
    #[test]
    fn differential_allocation_is_deterministic() {
        let build = || {
            let mut b = FunctionBuilder::new("f");
            let vs: Vec<_> = (0..14).map(|_| b.new_vreg()).collect();
            for (i, &v) in vs.iter().enumerate() {
                b.mov_imm(v, i as i32);
            }
            let s = b.new_vreg();
            b.mov_imm(s, 0);
            for k in 0..14 {
                let v = vs[(k * 5) % 14];
                b.bin(BinOp::Add, s, s.into(), v.into());
            }
            b.ret(Some(s.into()));
            b.finish()
        };
        let run = || {
            let mut f = build();
            let stats = irc_allocate(&mut f, &AllocConfig::differential(DiffParams::new(12, 4)))
                .unwrap();
            (f, stats)
        };
        let (f0, s0) = run();
        for _ in 0..5 {
            let (f, s) = run();
            assert_eq!(f0, f, "allocation must not vary run to run");
            assert_eq!(
                (s0.rounds, s0.spilled_vregs, s0.moves_coalesced),
                (s.rounds, s.spilled_vregs, s.moves_coalesced)
            );
        }
    }
}

#[cfg(test)]
mod biased_tests {
    use super::*;
    use dra_ir::FunctionBuilder;

    /// Biased coloring keeps a frozen move's endpoints in one register
    /// when a shared color is legal, so the move dies at rewrite time.
    #[test]
    fn biased_coloring_matches_move_partners() {
        // A move that conservative coalescing may freeze under pressure:
        // both endpoints highly connected.
        let mut b = FunctionBuilder::new("f");
        let vs: Vec<_> = (0..3).map(|_| b.new_vreg()).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.mov_imm(v, i as i32);
        }
        let x = b.new_vreg();
        let y = b.new_vreg();
        b.mov_imm(x, 9);
        b.mov(y, x.into());
        let s = b.new_vreg();
        b.mov_imm(s, 0);
        for &v in &vs {
            b.bin(dra_ir::BinOp::Add, s, s.into(), v.into());
        }
        b.bin(dra_ir::BinOp::Add, s, s.into(), y.into());
        b.ret(Some(s.into()));
        let mut f = b.finish();
        let mut cfg = AllocConfig::baseline(4);
        cfg.strategy = SelectStrategy::Biased;
        irc_allocate(&mut f, &cfg).unwrap();
        assert!(f.is_fully_physical());
        // Either coalescing or bias removed the x -> y move.
        assert_eq!(f.count_insts(|i| i.is_move()), 0, "{f}");
    }

    #[test]
    fn biased_never_worse_than_lowest_on_moves() {
        let build = || {
            let mut b = FunctionBuilder::new("f");
            let vs: Vec<_> = (0..6).map(|_| b.new_vreg()).collect();
            for (i, &v) in vs.iter().enumerate() {
                b.mov_imm(v, i as i32);
            }
            let mut prev = vs[0];
            for _ in 0..4 {
                let n = b.new_vreg();
                b.mov(n, prev.into());
                prev = n;
            }
            let s = b.new_vreg();
            b.mov_imm(s, 0);
            for &v in &vs {
                b.bin(dra_ir::BinOp::Add, s, s.into(), v.into());
            }
            b.bin(dra_ir::BinOp::Add, s, s.into(), prev.into());
            b.ret(Some(s.into()));
            b.finish()
        };
        let run = |strategy: SelectStrategy| {
            let mut f = build();
            let mut cfg = AllocConfig::baseline(8);
            cfg.strategy = strategy;
            irc_allocate(&mut f, &cfg).unwrap();
            f.count_insts(|i| i.is_move())
        };
        assert!(run(SelectStrategy::Biased) <= run(SelectStrategy::Lowest));
    }
}
