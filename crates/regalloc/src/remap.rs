//! Differential remapping (Section 5) — the post-pass approach.
//!
//! After any register allocator has run, the register *numbers* may be
//! permuted freely: a permutation preserves the only constraint a
//! traditional allocator enforces (co-live ranges in distinct registers)
//! while changing the differential-encoding cost. This pass searches the
//! permutation space for a low-cost register vector:
//!
//! * **exhaustive** search for small `RegN` (the paper notes
//!   `O(RegN² · RegN!)` is tractable there), and
//! * the paper's **greedy pairwise-swap descent** restarted from many
//!   random initial register vectors (1000 in the paper) otherwise.
//!
//! # Incremental delta-cost evaluation
//!
//! Both searches move through permutation space one **transposition** at a
//! time: the greedy descent considers pairwise swaps, and Heap's algorithm
//! generates each successive permutation from the previous one by a single
//! swap. A swap of the numbers held by nodes `x` and `y` can only change
//! the violation status of edges incident to `x` or `y`, so a candidate is
//! scored with [`AdjacencyIndex::swap_delta`] in `O(deg(x) + deg(y))`
//! instead of re-walking the whole edge set (`O(E)`). Accumulated
//! floating-point drift is shed by recomputing the exact cost once per
//! descent (outside the swap loop) before results are compared.
//!
//! # Deterministic parallel restarts
//!
//! Restarts are independent, so they run on [`std::thread::scope`] threads
//! ([`RemapConfig::threads`]). Each start's RNG stream is a pure function
//! of `(seed, start index)` and the winner is the lowest-cost result with
//! ties broken toward the **lowest start index**, so the chosen
//! `(permutation, cost)` is bit-identical at any thread count, including
//! the sequential `threads = 1` path. Only the work counters
//! ([`RemapStats::starts_run`], [`RemapStats::evaluations`]) depend on
//! scheduling, because every worker stops early once it holds a zero-cost
//! vector.

use dra_adjgraph::{build_preg_adjacency, AdjacencyGraph, AdjacencyIndex, DiffParams};
use dra_ir::{Function, PReg, Program, Reg, RegClass};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Improvement threshold for incrementally-maintained costs: deltas within
/// this of zero are treated as "no change" so floating-point noise cannot
/// masquerade as an improving swap (which could cycle the descent).
const EPS: f64 = 1e-9;

/// Default per-descent evaluation budget ([`RemapConfig::eval_budget`]).
/// A greedy descent on the evaluation's `RegN = 12` sweeps 66 candidate
/// pairs per improvement step, so this bound allows tens of thousands of
/// improving swaps — orders of magnitude beyond what any real workload
/// descends through — while still guaranteeing termination on adversarial
/// cost surfaces.
pub const DEFAULT_EVAL_BUDGET: u64 = 1_000_000;

/// Configuration of the remapping search.
#[derive(Clone, Debug)]
pub struct RemapConfig {
    /// Differential parameters (`RegN`, `DiffN`).
    pub params: DiffParams,
    /// Register class whose numbers are permuted.
    pub class: RegClass,
    /// Use exhaustive permutation search when `RegN <=` this bound.
    pub exhaustive_limit: u16,
    /// Number of random restarts for the greedy search (the paper uses
    /// 1000, which is the default).
    pub starts: u32,
    /// Registers that must keep their numbers (special-purpose registers,
    /// Section 9.2, or calling-convention anchors, Section 9.3).
    pub pinned: Vec<PReg>,
    /// RNG seed for the random restarts (reproducibility).
    pub seed: u64,
    /// Worker threads for the greedy restarts; `0` means one per available
    /// CPU. The search result is identical at any thread count.
    pub threads: usize,
    /// Evaluation budget: the maximum [`AdjacencyIndex::swap_delta`] calls
    /// one greedy descent (or the whole exhaustive enumeration) may spend
    /// before stopping at its current best. Applied per descent — not
    /// shared across restarts — so the early stop is a pure function of
    /// the input and the result stays bit-identical at any
    /// [`RemapConfig::threads`]. The default never binds on realistic
    /// inputs; it exists so a pathological cost surface degrades to a
    /// bounded search instead of an unbounded one.
    pub eval_budget: u64,
}

impl RemapConfig {
    /// Defaults for the given parameters: exhaustive up to `RegN = 7`, the
    /// paper's 1000 greedy restarts, nothing pinned, one worker thread per
    /// CPU.
    pub fn new(params: DiffParams) -> Self {
        RemapConfig {
            params,
            class: RegClass::Int,
            exhaustive_limit: 7,
            starts: 1000,
            pinned: Vec::new(),
            seed: 0x5eed,
            threads: 0,
            eval_budget: DEFAULT_EVAL_BUDGET,
        }
    }

    /// Paper-fidelity restarts (1000 initial register vectors). This is
    /// the default; the method remains for call sites that want to state
    /// the intent explicitly.
    pub fn with_paper_restarts(mut self) -> Self {
        self.starts = 1000;
        self
    }

    /// Override the worker thread count (`0` = one per available CPU).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Outcome of one remapping run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RemapStats {
    /// Adjacency cost before remapping (identity permutation).
    pub cost_before: f64,
    /// Adjacency cost achieved.
    pub cost_after: f64,
    /// Whether the exhaustive search was used.
    pub exhaustive: bool,
    /// Candidate-swap evaluations performed (`swap_delta` calls). Depends
    /// on thread scheduling when a zero-cost vector is found early.
    pub evaluations: u64,
    /// Greedy restarts actually executed (0 for exhaustive runs; may be
    /// below `RemapConfig::starts` after a zero-cost early exit, and
    /// depends on thread scheduling in that case).
    pub starts_run: u32,
    /// Wall-clock time of the whole remap (graph build + search), ns.
    pub search_nanos: u64,
    /// True when this entry marks a function that *fell back to direct
    /// encoding* instead of being remapped: the pipeline's degradation
    /// lattice replaces the failed differential compilation with a direct
    /// one and records the substitution here (no search ran; every work
    /// counter is zero).
    pub degraded: bool,
}

impl RemapStats {
    /// The marker entry the degradation lattice records for a function
    /// whose differential path failed and was recompiled direct.
    pub fn degraded_marker() -> RemapStats {
        RemapStats {
            cost_before: 0.0,
            cost_after: 0.0,
            exhaustive: false,
            evaluations: 0,
            starts_run: 0,
            search_nanos: 0,
            degraded: true,
        }
    }
}

/// Work counters shared by both search strategies.
#[derive(Clone, Copy, Debug, Default)]
struct SearchCounters {
    evaluations: u64,
    starts_run: u32,
}

/// Remap the register numbers of an allocated function in place.
///
/// # Panics
///
/// Panics if `f` still contains virtual registers of `cfg.class`, or uses
/// physical numbers `>= RegN`.
pub fn remap_function(f: &mut Function, cfg: &RemapConfig) -> RemapStats {
    let t0 = Instant::now();
    let reg_n = cfg.params.reg_n();
    let g = build_preg_adjacency(f, cfg.class, reg_n);
    let identity: Vec<u8> = (0..reg_n as u8).collect();
    let cost_before = perm_cost(&g, &identity, cfg.params);

    // Already perfect — including the no-edges case, e.g. remapping the
    // float class of integer-only code. Nothing to search or rewrite.
    if cost_before == 0.0 {
        return RemapStats {
            cost_before: 0.0,
            cost_after: 0.0,
            exhaustive: false,
            evaluations: 0,
            starts_run: 0,
            search_nanos: t0.elapsed().as_nanos() as u64,
            degraded: false,
        };
    }

    let idx = g.index();
    let (perm, cost_after, exhaustive, counters) = if reg_n <= cfg.exhaustive_limit {
        let (p, c, n) = exhaustive_search(&g, &idx, cfg);
        (p, c, true, n)
    } else {
        let (p, c, n) = greedy_multistart(&g, &idx, cfg);
        (p, c, false, n)
    };

    // Keep the identity if the search could not improve on it.
    let improved = cost_after < cost_before;
    if improved {
        apply_permutation(f, &perm, cfg.class);
    }
    RemapStats {
        cost_before,
        cost_after: if improved { cost_after } else { cost_before },
        exhaustive,
        evaluations: counters.evaluations,
        starts_run: counters.starts_run,
        search_nanos: t0.elapsed().as_nanos() as u64,
        degraded: false,
    }
}

/// Remap every function of a program independently.
pub fn remap_program(p: &mut Program, cfg: &RemapConfig) -> Vec<RemapStats> {
    p.funcs
        .iter_mut()
        .map(|f| remap_function(f, cfg))
        .collect()
}

/// Cost of permutation `rv` on graph `g`: node `i` gets number `rv[i]`.
fn perm_cost(g: &AdjacencyGraph, rv: &[u8], params: DiffParams) -> f64 {
    g.assignment_cost(|n| Some(rv[n as usize]), params)
}

fn apply_permutation(f: &mut Function, rv: &[u8], class: RegClass) {
    // Only physical operands are remapped, and `Function::class_of` — the
    // central bare-PReg-is-integer convention — places every physical
    // register in one class. When that class is not the one being
    // remapped, the rewrite must be a complete no-op (e.g. a float-class
    // remap of integer code).
    if f.class_of(Reg::Phys(PReg(0))) != class {
        return;
    }
    f.map_all_regs(|r| match r {
        Reg::Phys(p) => Reg::Phys(PReg(rv[p.index()])),
        other => other,
    });
}

/// The non-pinned register slots, in increasing order.
fn free_slots(reg_n: usize, pinned_regs: &[PReg]) -> Vec<usize> {
    let mut pinned = vec![false; reg_n];
    for p in pinned_regs {
        pinned[p.index()] = true;
    }
    (0..reg_n).filter(|&i| !pinned[i]).collect()
}

/// All permutations of the free slots via **iterative Heap's algorithm**,
/// scoring each permutation incrementally: Heap's algorithm derives every
/// successive permutation from its predecessor by one transposition, so
/// each visit costs one [`AdjacencyIndex::swap_delta`] instead of a full
/// cost evaluation. Exits early as soon as a zero-cost vector is found —
/// no permutation can beat zero.
fn exhaustive_search(
    g: &AdjacencyGraph,
    idx: &AdjacencyIndex,
    cfg: &RemapConfig,
) -> (Vec<u8>, f64, SearchCounters) {
    let reg_n = cfg.params.reg_n() as usize;
    let params = cfg.params;
    let free = free_slots(reg_n, &cfg.pinned);
    let mut counters = SearchCounters::default();

    let mut rv: Vec<u8> = (0..reg_n as u8).collect();
    let mut cost = perm_cost(g, &rv, params);
    let mut best = rv.clone();
    let mut best_cost = cost;

    let n = free.len();
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n && best_cost > 0.0 && counters.evaluations < cfg.eval_budget {
        if c[i] < i {
            let p = if i % 2 == 0 { 0 } else { c[i] };
            let (sa, sb) = (free[p], free[i]);
            let delta = idx.swap_delta(&rv, sa as u32, sb as u32, params);
            rv.swap(sa, sb);
            cost += delta;
            counters.evaluations += 1;
            if cost < best_cost - EPS {
                // The incremental cost carries rounding drift; settle the
                // new champion's cost exactly before recording it.
                let exact = perm_cost(g, &rv, params);
                if exact < best_cost {
                    best_cost = exact;
                    best.copy_from_slice(&rv);
                }
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best, best_cost, counters)
}

/// Outcome of one greedy descent.
struct StartOutcome {
    rv: Vec<u8>,
    cost: f64,
    evals: u64,
}

/// Derive the RNG seed of restart `start`: a pure function of
/// `(seed, start)` (a SplitMix64 finalizer over the combined words), so
/// any worker thread can regenerate any start's stream independently of
/// how the starts are partitioned.
fn start_seed(seed: u64, start: u32) -> u64 {
    let mut z = seed ^ (u64::from(start) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The initial register vector of restart `start`: the identity for start
/// 0 (the paper's initial RV), a seeded shuffle of the free values
/// otherwise.
fn start_vector(reg_n: usize, free: &[usize], seed: u64, start: u32) -> Vec<u8> {
    let mut rv: Vec<u8> = (0..reg_n as u8).collect();
    if start > 0 {
        let mut rng = SmallRng::seed_from_u64(start_seed(seed, start));
        let mut vals: Vec<u8> = free.iter().map(|&i| i as u8).collect();
        vals.shuffle(&mut rng);
        for (&slot, &v) in free.iter().zip(vals.iter()) {
            rv[slot] = v;
        }
    }
    rv
}

/// One greedy descent (the inner loop of the paper's Figure 7): repeatedly
/// apply the single pairwise swap with the biggest cost reduction until a
/// local minimum. Candidate swaps are scored **only** with
/// [`AdjacencyIndex::swap_delta`]; the full cost is computed once before
/// the loop and once after it (to shed incremental rounding drift).
///
/// `budget` caps the `swap_delta` evaluations of this one descent
/// ([`RemapConfig::eval_budget`]): a surface that keeps producing
/// improving swaps stops at its current (still valid) permutation instead
/// of looping unboundedly. The cutoff depends only on the input, so
/// determinism across thread counts is preserved.
fn descend(
    g: &AdjacencyGraph,
    idx: &AdjacencyIndex,
    free: &[usize],
    params: DiffParams,
    budget: u64,
    mut rv: Vec<u8>,
) -> StartOutcome {
    let mut cost = perm_cost(g, &rv, params);
    let mut evals = 0u64;
    while cost > EPS && evals < budget {
        let mut best_swap: Option<(usize, usize, f64)> = None;
        for a in 0..free.len() {
            for b in a + 1..free.len() {
                let d = idx.swap_delta(&rv, free[a] as u32, free[b] as u32, params);
                evals += 1;
                if d < -EPS && best_swap.is_none_or(|(_, _, bd)| d < bd) {
                    best_swap = Some((free[a], free[b], d));
                }
            }
        }
        match best_swap {
            Some((a, b, d)) => {
                rv.swap(a, b);
                cost += d;
            }
            None => break, // local minimum
        }
    }
    let cost = perm_cost(g, &rv, params);
    StartOutcome { rv, cost, evals }
}

/// The paper's greedy algorithm (Figure 7) over `cfg.starts` random
/// restarts, run on up to `cfg.threads` scoped worker threads.
///
/// Each worker owns a contiguous range of start indices and reports its
/// best `(cost, start, rv)`; the merge takes the lowest cost, breaking
/// ties toward the lowest start index. Because every start's RNG stream
/// depends only on `(cfg.seed, start)`, the winning `(rv, cost)` is
/// bit-identical for any thread count. Workers stop early once they hold a
/// zero-cost vector (later starts can at best tie, and ties lose to the
/// earlier index), which is also why the counters — but not the result —
/// vary with scheduling.
fn greedy_multistart(
    g: &AdjacencyGraph,
    idx: &AdjacencyIndex,
    cfg: &RemapConfig,
) -> (Vec<u8>, f64, SearchCounters) {
    let reg_n = cfg.params.reg_n() as usize;
    let params = cfg.params;
    let free = free_slots(reg_n, &cfg.pinned);

    let starts = cfg.starts.max(1);
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    }
    .min(starts as usize)
    .max(1);

    let run_range = |lo: u32, hi: u32| -> (Option<(f64, u32, Vec<u8>)>, SearchCounters) {
        let mut counters = SearchCounters::default();
        let mut best: Option<(f64, u32, Vec<u8>)> = None;
        for start in lo..hi {
            let rv0 = start_vector(reg_n, &free, cfg.seed, start);
            let out = descend(g, idx, &free, params, cfg.eval_budget, rv0);
            counters.evaluations += out.evals;
            counters.starts_run += 1;
            let better = best.as_ref().is_none_or(|(c, _, _)| out.cost < *c);
            if better {
                let done = out.cost == 0.0;
                best = Some((out.cost, start, out.rv));
                if done {
                    break; // later starts can only tie, and ties lose
                }
            }
        }
        (best, counters)
    };

    let chunk = starts.div_ceil(threads as u32);
    let per_thread: Vec<(Option<(f64, u32, Vec<u8>)>, SearchCounters)> = if threads == 1 {
        vec![run_range(0, starts)]
    } else {
        std::thread::scope(|s| {
            let run_range = &run_range;
            let handles: Vec<_> = (0..threads as u32)
                .map(|t| {
                    let lo = (t * chunk).min(starts);
                    let hi = (lo + chunk).min(starts);
                    s.spawn(move || run_range(lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("remap worker panicked"))
                .collect()
        })
    };

    // Identity baseline: the search result can never be worse than the
    // allocator's own numbering. Per-thread winners are merged in start
    // order with a strict-less comparison, so equal costs resolve to the
    // lowest start index — the same winner the sequential loop picks.
    let mut best: Vec<u8> = (0..reg_n as u8).collect();
    let mut best_cost = perm_cost(g, &best, params);
    let mut counters = SearchCounters::default();
    let mut winners: Vec<(f64, u32, Vec<u8>)> = Vec::new();
    for (winner, c) in per_thread {
        counters.evaluations += c.evaluations;
        counters.starts_run += c.starts_run;
        winners.extend(winner);
    }
    winners.sort_by(|a, b| a.1.cmp(&b.1));
    for (cost, _, rv) in winners {
        if cost < best_cost {
            best_cost = cost;
            best = rv;
        }
    }
    (best, best_cost, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{FunctionBuilder, Inst};

    /// A function whose accesses walk the cycle `r0 -> r2 -> r1 -> r3 ->
    /// r0`. Under `RegN = 4, DiffN = 2` the identity numbering violates
    /// three of the four hops, but relabeling the cycle to consecutive
    /// numbers (`rv = [0, 2, 1, 3]`) satisfies all of them.
    fn hoppy() -> Function {
        let mut b = FunctionBuilder::new("hoppy");
        for (src, dst) in [(0u8, 2u8), (2, 1), (1, 3), (3, 0)] {
            b.push(Inst::Mov {
                dst: PReg(dst).into(),
                src: PReg(src).into(),
            });
        }
        b.ret(None);
        b.finish()
    }

    #[test]
    fn exhaustive_finds_zero_cost() {
        let mut f = hoppy();
        let cfg = RemapConfig::new(DiffParams::new(4, 2));
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.exhaustive);
        assert!(stats.cost_before > 0.0);
        assert_eq!(stats.cost_after, 0.0, "a zero-cost permutation exists");
        // And the rewritten code reflects it: the move now spans an
        // in-range pair.
        let p = DiffParams::new(4, 2);
        for i in f.iter_insts() {
            if let Inst::Mov { dst, src } = i {
                assert!(p.in_range(src.expect_phys().number(), dst.expect_phys().number()));
            }
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_case() {
        let mut f1 = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        let ex = remap_function(&mut f1, &cfg);

        let mut f2 = hoppy();
        cfg.exhaustive_limit = 0; // force greedy
        cfg.starts = 32;
        let gr = remap_function(&mut f2, &cfg);
        assert!(!gr.exhaustive);
        assert_eq!(gr.cost_after, ex.cost_after);
    }

    #[test]
    fn identity_kept_when_already_optimal() {
        // Accesses r0 -> r1 only: identity is optimal.
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Mov {
            dst: PReg(1).into(),
            src: PReg(0).into(),
        });
        b.ret(None);
        let mut f = b.finish();
        let before = f.clone();
        let stats = remap_function(&mut f, &RemapConfig::new(DiffParams::new(4, 2)));
        assert_eq!(stats.cost_after, 0.0);
        assert_eq!(f, before, "no gratuitous rewrite");
    }

    #[test]
    fn pinned_registers_keep_their_numbers() {
        let mut f = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        cfg.pinned = vec![PReg(0), PReg(3)];
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.cost_after <= stats.cost_before);
        // The first mov reads r0 and the last writes r0: those operands
        // must still be r0 (and likewise r3) after any remapping.
        let movs: Vec<_> = f
            .iter_insts()
            .filter_map(|i| match i {
                Inst::Mov { dst, src } => Some((src.expect_phys(), dst.expect_phys())),
                _ => None,
            })
            .collect();
        assert_eq!(movs[0].0, PReg(0), "pinned r0 moved");
        assert_eq!(movs[3].1, PReg(0), "pinned r0 moved");
        assert_eq!(movs[2].1, PReg(3), "pinned r3 moved");
        assert_eq!(movs[3].0, PReg(3), "pinned r3 moved");
    }

    #[test]
    fn remapping_preserves_distinctness() {
        // Permutations are bijections: two distinct registers must remain
        // distinct after remapping.
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Bin {
            op: dra_ir::BinOp::Add,
            dst: PReg(2).into(),
            lhs: PReg(0).into(),
            rhs: PReg(1).into(),
        });
        b.ret(None);
        let mut f = b.finish();
        remap_function(&mut f, &RemapConfig::new(DiffParams::new(4, 2)));
        let regs: Vec<u8> = f.blocks[0].insts[0]
            .accesses()
            .iter()
            .map(|r| r.expect_phys().number())
            .collect();
        assert_eq!(regs.len(), 3);
        assert_ne!(regs[0], regs[1]);
        assert_ne!(regs[0], regs[2]);
        assert_ne!(regs[1], regs[2]);
    }

    #[test]
    fn greedy_is_deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut f = hoppy();
            let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
            cfg.exhaustive_limit = 0;
            cfg.seed = seed;
            remap_function(&mut f, &cfg);
            format!("{f}")
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn float_class_remap_is_complete_noop() {
        // Regression: `apply_permutation` used to gate on the *configured*
        // class in a way that never dispatched on the register's own
        // class. A float-class remap of integer code must leave every
        // operand untouched — physical registers belong to the integer
        // class (`Function::class_of`).
        let mut f = hoppy();
        let before = f.clone();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        cfg.class = RegClass::Float;
        let stats = remap_function(&mut f, &cfg);
        assert_eq!(f, before, "float remap rewrote integer registers");
        assert_eq!(stats.cost_before, 0.0, "no float accesses, empty graph");
        assert_eq!(stats.cost_after, 0.0);
        assert_eq!(stats.evaluations, 0, "empty graph short-circuits");
    }

    #[test]
    fn apply_permutation_dispatches_on_register_class() {
        let mut f = hoppy();
        let before = f.clone();
        // Reversing permutation under the wrong class: no-op.
        apply_permutation(&mut f, &[3, 2, 1, 0], RegClass::Float);
        assert_eq!(f, before);
        // Same permutation under the register's own class: applied.
        apply_permutation(&mut f, &[3, 2, 1, 0], RegClass::Int);
        assert_ne!(f, before);
        let first = match f.blocks[0].insts[0] {
            Inst::Mov { src, .. } => src.expect_phys(),
            _ => unreachable!(),
        };
        assert_eq!(first, PReg(3), "r0 renumbered to rv[0] = 3");
    }

    #[test]
    fn parallel_multistart_matches_sequential() {
        // The determinism contract: identical (permutation, cost) at any
        // thread count, including sequential.
        let run = |threads: usize| {
            let mut f = hoppy();
            let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
            cfg.exhaustive_limit = 0;
            cfg.starts = 64;
            cfg.threads = threads;
            let stats = remap_function(&mut f, &cfg);
            (format!("{f}"), stats.cost_after.to_bits())
        };
        let sequential = run(1);
        assert_eq!(run(2), sequential, "2 threads diverged");
        assert_eq!(run(8), sequential, "8 threads diverged");
    }

    #[test]
    fn greedy_counters_account_for_work() {
        let mut f = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
        cfg.exhaustive_limit = 0;
        cfg.starts = 16;
        cfg.threads = 1;
        let stats = remap_function(&mut f, &cfg);
        assert!(!stats.exhaustive);
        assert!(stats.starts_run >= 1 && stats.starts_run <= 16);
        // Every executed start sweeps all 66 free pairs at least once.
        assert!(stats.evaluations >= 66 * u64::from(stats.starts_run));
    }

    #[test]
    fn exhaustive_early_exits_on_zero_cost() {
        let mut f = hoppy();
        let stats = remap_function(&mut f, &RemapConfig::new(DiffParams::new(4, 2)));
        assert!(stats.exhaustive);
        assert_eq!(stats.cost_after, 0.0);
        // Heap's over 4 free slots visits at most 4! - 1 = 23 transpositions;
        // the zero-cost early exit must stop at (or before) the one that
        // reaches a perfect vector.
        assert!(stats.evaluations <= 23);
    }

    #[test]
    fn eval_budget_bounds_the_search_deterministically() {
        let run = |budget: u64, threads: usize| {
            let mut f = hoppy();
            let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
            cfg.exhaustive_limit = 0;
            cfg.starts = 16;
            cfg.threads = threads;
            cfg.eval_budget = budget;
            let stats = remap_function(&mut f, &cfg);
            assert!(stats.cost_after <= stats.cost_before);
            (format!("{f}"), stats.cost_after.to_bits())
        };
        // A budget that cuts descents short still yields a valid
        // permutation, bit-identical at any thread count.
        let tight = run(10, 1);
        assert_eq!(run(10, 2), tight, "2 threads diverged under budget");
        assert_eq!(run(10, 8), tight, "8 threads diverged under budget");
        // And the default budget reproduces the unbudgeted behavior on
        // real-sized inputs (it never binds).
        let roomy = run(DEFAULT_EVAL_BUDGET, 1);
        assert_eq!(run(DEFAULT_EVAL_BUDGET, 8), roomy);
    }

    #[test]
    fn exhaustive_respects_eval_budget() {
        let mut f = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        cfg.eval_budget = 3;
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.exhaustive);
        assert!(stats.evaluations <= 3, "budget ignored: {}", stats.evaluations);
        assert!(stats.cost_after <= stats.cost_before);
    }

    #[test]
    fn degraded_marker_is_inert() {
        let m = RemapStats::degraded_marker();
        assert!(m.degraded);
        assert_eq!(m.evaluations, 0);
        assert_eq!(m.starts_run, 0);
        let real = remap_function(&mut hoppy(), &RemapConfig::new(DiffParams::new(4, 2)));
        assert!(!real.degraded, "normal remaps never carry the marker");
    }

    #[test]
    fn program_remap_covers_every_function() {
        let prog_fn = || {
            let mut b = FunctionBuilder::new("g");
            for (src, dst) in [(0u8, 2u8), (2, 1), (1, 3), (3, 0)] {
                b.push(Inst::Mov {
                    dst: PReg(dst).into(),
                    src: PReg(src).into(),
                });
            }
            b.ret(None);
            b.finish()
        };
        let mut p = Program {
            funcs: vec![prog_fn(), prog_fn()],
            entry: 0,
        };
        let stats = remap_program(&mut p, &RemapConfig::new(DiffParams::new(4, 2)));
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.cost_after == 0.0));
    }
}
