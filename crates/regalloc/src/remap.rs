//! Differential remapping (Section 5) — the post-pass approach.
//!
//! After any register allocator has run, the register *numbers* may be
//! permuted freely: a permutation preserves the only constraint a
//! traditional allocator enforces (co-live ranges in distinct registers)
//! while changing the differential-encoding cost. This pass searches the
//! permutation space for a low-cost register vector with a **portfolio**
//! of strategies ([`RemapStrategy`]):
//!
//! * **exhaustive** search for small `RegN` (the paper notes
//!   `O(RegN² · RegN!)` is tractable there),
//! * the paper's **greedy pairwise-swap descent** restarted from many
//!   random initial register vectors (1000 in the paper),
//! * **simulated annealing** over the same transposition neighborhood,
//!   with a seeded geometric temperature ladder spanning each task's
//!   evaluation slice,
//! * **large-neighborhood search** (LNS): greedy descent to a local
//!   minimum, then 3-cycle and k-cycle rotation moves scored with
//!   [`AdjacencyIndex::cycle_delta`] to escape transposition-local minima,
//! * an exact **branch-and-bound** for small instances (admissible bound
//!   from a sorted incident-weight relaxation) that certifies optima and
//!   measures every heuristic's gap.
//!
//! # Incremental delta-cost evaluation
//!
//! All searches move through permutation space by **transpositions** (and
//! LNS by short rotations): a swap of the numbers held by nodes `x` and
//! `y` can only change the violation status of edges incident to `x` or
//! `y`, so a candidate is scored with [`AdjacencyIndex::swap_delta`] in
//! `O(deg(x) + deg(y))` (rotations with [`AdjacencyIndex::cycle_delta`])
//! instead of re-walking the whole edge set (`O(E)`). Accumulated
//! floating-point drift is shed by recomputing the exact cost whenever a
//! new champion is recorded and once per descent before results are
//! compared.
//!
//! # Deterministic parallel racing under one budget
//!
//! The portfolio runs `starts` tasks; task `i` uses strategy
//! `racers[i % racers.len()]` and the start vector of index `i`. Tasks are
//! independent, so they run on [`std::thread::scope`] threads
//! ([`RemapConfig::threads`]). Each task's RNG stream is a pure function
//! of `(seed, strategy, start index)` (SplitMix64-finalized), the shared
//! [`RemapConfig::eval_budget`] is pre-split into per-task slices
//! (`budget / tasks`, the remainder spread over the lowest indices), and
//! the winner is the lowest-cost result with ties broken by **strategy
//! order, then lowest start index**. Nothing a task does depends on any
//! other task, so the chosen `(permutation, cost)` *and every work
//! counter* ([`RemapStats::evaluations`], [`RemapStats::starts_run`],
//! [`RemapStats::cycle_moves`]) are bit-identical at any thread count,
//! including the sequential `threads = 1` path.

use dra_adjgraph::{build_preg_adjacency, AdjacencyGraph, AdjacencyIndex, DiffParams};
use dra_ir::{Function, PReg, Program, Reg, RegClass};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::time::Instant;

/// Improvement threshold for incrementally-maintained costs: deltas within
/// this of zero are treated as "no change" so floating-point noise cannot
/// masquerade as an improving swap (which could cycle the descent).
const EPS: f64 = 1e-9;

/// Default portfolio-wide evaluation budget ([`RemapConfig::eval_budget`]).
/// Shared by all restarts: at the paper's 1000 starts each task's slice is
/// 4000 evaluations, roughly ten times what a greedy descent on the
/// evaluation's `RegN = 12` actually spends (~6 sweeps of 66 candidate
/// pairs), so the default never binds on realistic inputs — it exists so a
/// pathological cost surface degrades to a bounded search instead of an
/// unbounded one.
pub const DEFAULT_EVAL_BUDGET: u64 = 4_000_000;

/// Search strategy for the remapping pass ([`RemapConfig::strategy`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RemapStrategy {
    /// The paper's greedy pairwise-swap descent from random restarts.
    #[default]
    Greedy,
    /// Simulated annealing over the transposition neighborhood.
    Anneal,
    /// Large-neighborhood search: greedy descent plus cycle-rotation moves.
    Lns,
    /// Exact branch-and-bound (admissible incident-weight bound). Certifies
    /// the optimum when it completes within the evaluation budget; meant
    /// for small `RegN` (≤ 8-ish) or gap measurement.
    BranchBound,
    /// Race greedy, annealing, and LNS as interleaved restart tasks under
    /// the shared budget.
    Portfolio,
}

impl RemapStrategy {
    /// Parse a command-line strategy name.
    pub fn parse(s: &str) -> Option<RemapStrategy> {
        match s {
            "greedy" => Some(RemapStrategy::Greedy),
            "anneal" | "sa" => Some(RemapStrategy::Anneal),
            "lns" => Some(RemapStrategy::Lns),
            "bb" | "bnb" | "branch-bound" => Some(RemapStrategy::BranchBound),
            "portfolio" => Some(RemapStrategy::Portfolio),
            _ => None,
        }
    }

    /// Canonical name (accepted by [`RemapStrategy::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            RemapStrategy::Greedy => "greedy",
            RemapStrategy::Anneal => "anneal",
            RemapStrategy::Lns => "lns",
            RemapStrategy::BranchBound => "branch-bound",
            RemapStrategy::Portfolio => "portfolio",
        }
    }

    /// The strategies this configuration races as restart tasks (task `i`
    /// runs `racers()[i % racers().len()]`). Branch-and-bound is not a
    /// restart strategy and never appears here.
    fn racers(self) -> &'static [RemapStrategy] {
        match self {
            RemapStrategy::Greedy | RemapStrategy::BranchBound => &[RemapStrategy::Greedy],
            RemapStrategy::Anneal => &[RemapStrategy::Anneal],
            RemapStrategy::Lns => &[RemapStrategy::Lns],
            RemapStrategy::Portfolio => &[
                RemapStrategy::Greedy,
                RemapStrategy::Anneal,
                RemapStrategy::Lns,
            ],
        }
    }
}

/// Which searcher produced the final register vector of a remap run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RemapWinner {
    /// No search beat the allocator's own numbering (or none was needed).
    #[default]
    Identity,
    /// The small-`RegN` exhaustive enumeration.
    Exhaustive,
    /// A greedy-descent restart task.
    Greedy,
    /// A simulated-annealing restart task.
    Anneal,
    /// A large-neighborhood-search restart task.
    Lns,
    /// The exact branch-and-bound.
    BranchBound,
}

impl RemapWinner {
    /// Short name used in telemetry counter keys (`remap.win.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            RemapWinner::Identity => "identity",
            RemapWinner::Exhaustive => "exhaustive",
            RemapWinner::Greedy => "greedy",
            RemapWinner::Anneal => "anneal",
            RemapWinner::Lns => "lns",
            RemapWinner::BranchBound => "branch-bound",
        }
    }
}

/// Configuration of the remapping search.
#[derive(Clone, Debug)]
pub struct RemapConfig {
    /// Differential parameters (`RegN`, `DiffN`).
    pub params: DiffParams,
    /// Register class whose numbers are permuted.
    pub class: RegClass,
    /// Use exhaustive permutation search when `RegN <=` this bound (unless
    /// [`RemapConfig::strategy`] is [`RemapStrategy::BranchBound`], which
    /// always runs the branch-and-bound).
    pub exhaustive_limit: u16,
    /// Number of restart tasks for the heuristic searches (the paper uses
    /// 1000, which is the default).
    pub starts: u32,
    /// Registers that must keep their numbers (special-purpose registers,
    /// Section 9.2, or calling-convention anchors, Section 9.3).
    pub pinned: Vec<PReg>,
    /// RNG seed for the restart tasks (reproducibility).
    pub seed: u64,
    /// Worker threads for the restart tasks; `0` means one per available
    /// CPU. The search result and all work counters are identical at any
    /// thread count.
    pub threads: usize,
    /// Portfolio-wide evaluation budget: the maximum incremental scorings
    /// ([`AdjacencyIndex::swap_delta`] counting 1, a k-node
    /// [`AdjacencyIndex::cycle_delta`] counting `k - 1`) the whole run may
    /// spend. Pre-split deterministically across the restart tasks
    /// (`budget / starts` each, remainder to the lowest indices), so the
    /// cutoff is a pure function of the input and both the result and the
    /// counters stay bit-identical at any [`RemapConfig::threads`]. The
    /// exhaustive and branch-and-bound searches spend the budget as a
    /// single task.
    pub eval_budget: u64,
    /// Which search strategy (or portfolio of strategies) to run.
    pub strategy: RemapStrategy,
}

impl RemapConfig {
    /// Defaults for the given parameters: exhaustive up to `RegN = 7`, the
    /// paper's 1000 greedy restarts, nothing pinned, one worker thread per
    /// CPU.
    pub fn new(params: DiffParams) -> Self {
        RemapConfig {
            params,
            class: RegClass::Int,
            exhaustive_limit: 7,
            starts: 1000,
            pinned: Vec::new(),
            seed: 0x5eed,
            threads: 0,
            eval_budget: DEFAULT_EVAL_BUDGET,
            strategy: RemapStrategy::Greedy,
        }
    }

    /// Paper-fidelity restarts (1000 initial register vectors). This is
    /// the default; the method remains for call sites that want to state
    /// the intent explicitly.
    pub fn with_paper_restarts(mut self) -> Self {
        self.starts = 1000;
        self
    }

    /// Override the worker thread count (`0` = one per available CPU).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the search strategy.
    pub fn with_strategy(mut self, strategy: RemapStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Outcome of one remapping run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RemapStats {
    /// Adjacency cost before remapping (identity permutation).
    pub cost_before: f64,
    /// Adjacency cost achieved.
    pub cost_after: f64,
    /// Whether the exhaustive search was used.
    pub exhaustive: bool,
    /// Incremental cost evaluations performed (`swap_delta` calls counting
    /// 1, k-node `cycle_delta` calls counting `k - 1`, branch-and-bound
    /// candidate scorings counting 1). A pure function of the input —
    /// identical at any thread count.
    pub evaluations: u64,
    /// Restart tasks actually executed (0 for exhaustive runs; below
    /// `RemapConfig::starts` only when the eval budget is smaller than the
    /// task count, in which case zero-slice tasks are skipped). A pure
    /// function of the input.
    pub starts_run: u32,
    /// Improving cycle rotations applied by LNS tasks.
    pub cycle_moves: u64,
    /// Branch-and-bound nodes expanded (0 unless the strategy was
    /// [`RemapStrategy::BranchBound`]).
    pub bb_nodes: u64,
    /// Which searcher produced `cost_after`.
    pub winner: RemapWinner,
    /// True when `cost_after` is a certified optimum: the exhaustive
    /// enumeration or branch-and-bound completed within budget, or a
    /// zero-cost vector (unbeatable) was found.
    pub certified: bool,
    /// Wall-clock time of the whole remap (graph build + search), ns.
    pub search_nanos: u64,
    /// True when this entry marks a function that *fell back to direct
    /// encoding* instead of being remapped: the pipeline's degradation
    /// lattice replaces the failed differential compilation with a direct
    /// one and records the substitution here (no search ran; every work
    /// counter is zero).
    pub degraded: bool,
}

impl RemapStats {
    /// The marker entry the degradation lattice records for a function
    /// whose differential path failed and was recompiled direct.
    pub fn degraded_marker() -> RemapStats {
        RemapStats {
            cost_before: 0.0,
            cost_after: 0.0,
            exhaustive: false,
            evaluations: 0,
            starts_run: 0,
            cycle_moves: 0,
            bb_nodes: 0,
            winner: RemapWinner::Identity,
            certified: false,
            search_nanos: 0,
            degraded: true,
        }
    }
}

/// Work counters shared by the search strategies.
#[derive(Clone, Copy, Debug, Default)]
struct SearchCounters {
    evaluations: u64,
    starts_run: u32,
    cycle_moves: u64,
    bb_nodes: u64,
}

impl SearchCounters {
    fn absorb(&mut self, other: SearchCounters) {
        self.evaluations += other.evaluations;
        self.starts_run += other.starts_run;
        self.cycle_moves += other.cycle_moves;
        self.bb_nodes += other.bb_nodes;
    }
}

/// Result of one complete search (exhaustive, branch-and-bound, or the
/// multistart portfolio).
struct SearchOutcome {
    rv: Vec<u8>,
    cost: f64,
    winner: RemapWinner,
    certified: bool,
    counters: SearchCounters,
}

/// Remap the register numbers of an allocated function in place.
///
/// # Panics
///
/// Panics if `f` still contains virtual registers of `cfg.class`, or uses
/// physical numbers `>= RegN`.
pub fn remap_function(f: &mut Function, cfg: &RemapConfig) -> RemapStats {
    let t0 = Instant::now();
    let reg_n = cfg.params.reg_n();
    let g = build_preg_adjacency(f, cfg.class, reg_n);
    let identity: Vec<u8> = (0..reg_n as u8).collect();
    let cost_before = perm_cost(&g, &identity, cfg.params);

    // Already perfect — including the no-edges case, e.g. remapping the
    // float class of integer-only code. Nothing to search or rewrite.
    if cost_before == 0.0 {
        return RemapStats {
            cost_before: 0.0,
            cost_after: 0.0,
            exhaustive: false,
            evaluations: 0,
            starts_run: 0,
            cycle_moves: 0,
            bb_nodes: 0,
            winner: RemapWinner::Identity,
            certified: true,
            search_nanos: t0.elapsed().as_nanos() as u64,
            degraded: false,
        };
    }

    let idx = g.index();
    let use_exhaustive =
        cfg.strategy != RemapStrategy::BranchBound && reg_n <= cfg.exhaustive_limit;
    let outcome = if cfg.strategy == RemapStrategy::BranchBound {
        branch_and_bound(&g, &idx, cfg)
    } else if use_exhaustive {
        exhaustive_search(&g, &idx, cfg)
    } else {
        portfolio_multistart(&g, &idx, cfg, cfg.strategy.racers())
    };

    idx.recycle();
    // Keep the identity if the search could not improve on it.
    let improved = outcome.cost < cost_before;
    if improved {
        apply_permutation(f, &outcome.rv, cfg.class);
    }
    RemapStats {
        cost_before,
        cost_after: if improved { outcome.cost } else { cost_before },
        exhaustive: use_exhaustive,
        evaluations: outcome.counters.evaluations,
        starts_run: outcome.counters.starts_run,
        cycle_moves: outcome.counters.cycle_moves,
        bb_nodes: outcome.counters.bb_nodes,
        winner: if improved {
            outcome.winner
        } else {
            RemapWinner::Identity
        },
        certified: outcome.certified,
        search_nanos: t0.elapsed().as_nanos() as u64,
        degraded: false,
    }
}

/// Remap every function of a program independently.
pub fn remap_program(p: &mut Program, cfg: &RemapConfig) -> Vec<RemapStats> {
    p.funcs
        .iter_mut()
        .map(|f| remap_function(f, cfg))
        .collect()
}

/// Cost of permutation `rv` on graph `g`: node `i` gets number `rv[i]`.
fn perm_cost(g: &AdjacencyGraph, rv: &[u8], params: DiffParams) -> f64 {
    g.assignment_cost(|n| Some(rv[n as usize]), params)
}

fn apply_permutation(f: &mut Function, rv: &[u8], class: RegClass) {
    // Only physical operands are remapped, and `Function::class_of` — the
    // central bare-PReg-is-integer convention — places every physical
    // register in one class. When that class is not the one being
    // remapped, the rewrite must be a complete no-op (e.g. a float-class
    // remap of integer code).
    if f.class_of(Reg::Phys(PReg(0))) != class {
        return;
    }
    f.map_all_regs(|r| match r {
        Reg::Phys(p) => Reg::Phys(PReg(rv[p.index()])),
        other => other,
    });
}

/// The non-pinned register slots, in increasing order.
fn free_slots(reg_n: usize, pinned_regs: &[PReg]) -> Vec<usize> {
    let mut pinned = vec![false; reg_n];
    for p in pinned_regs {
        pinned[p.index()] = true;
    }
    (0..reg_n).filter(|&i| !pinned[i]).collect()
}

/// All permutations of the free slots via **iterative Heap's algorithm**,
/// scoring each permutation incrementally: Heap's algorithm derives every
/// successive permutation from its predecessor by one transposition, so
/// each visit costs one [`AdjacencyIndex::swap_delta`] instead of a full
/// cost evaluation. Exits early as soon as a zero-cost vector is found —
/// no permutation can beat zero.
fn exhaustive_search(
    g: &AdjacencyGraph,
    idx: &AdjacencyIndex,
    cfg: &RemapConfig,
) -> SearchOutcome {
    let reg_n = cfg.params.reg_n() as usize;
    let params = cfg.params;
    let free = free_slots(reg_n, &cfg.pinned);
    let mut counters = SearchCounters::default();

    let mut rv: Vec<u8> = (0..reg_n as u8).collect();
    let mut cost = perm_cost(g, &rv, params);
    let mut best = rv.clone();
    let mut best_cost = cost;

    let n = free.len();
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n && best_cost > 0.0 && counters.evaluations < cfg.eval_budget {
        if c[i] < i {
            let p = if i % 2 == 0 { 0 } else { c[i] };
            let (sa, sb) = (free[p], free[i]);
            let delta = idx.swap_delta(&rv, sa as u32, sb as u32, params);
            rv.swap(sa, sb);
            cost += delta;
            counters.evaluations += 1;
            if cost < best_cost - EPS {
                // The incremental cost carries rounding drift; settle the
                // new champion's cost exactly before recording it.
                let exact = perm_cost(g, &rv, params);
                if exact < best_cost {
                    best_cost = exact;
                    best.copy_from_slice(&rv);
                }
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    // Certified if the enumeration finished (`i == n`) or a zero-cost
    // vector (unbeatable) was found; only a budget cutoff leaves the
    // optimum unconfirmed.
    let certified = best_cost == 0.0 || i >= n;
    SearchOutcome {
        rv: best,
        cost: best_cost,
        winner: RemapWinner::Exhaustive,
        certified,
        counters,
    }
}

/// Outcome of one restart task.
struct StartOutcome {
    rv: Vec<u8>,
    cost: f64,
    evals: u64,
    cycle_moves: u64,
}

/// Derive the RNG seed of restart `start`: a pure function of
/// `(seed, start)` (a SplitMix64 finalizer over the combined words), so
/// any worker thread can regenerate any start's stream independently of
/// how the starts are partitioned.
fn start_seed(seed: u64, start: u32) -> u64 {
    let mut z = seed ^ (u64::from(start) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the RNG seed of the *search moves* of a task: a pure function of
/// `(seed, strategy, start)`, distinct from the start-vector stream so all
/// strategies explore from identical initial vectors but with independent
/// move randomness.
fn task_seed(seed: u64, strat_ix: usize, start: u32) -> u64 {
    let mut z =
        start_seed(seed, start) ^ (strat_ix as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The initial register vector of restart `start`: the identity for start
/// 0 (the paper's initial RV), a seeded shuffle of the free values
/// otherwise.
fn start_vector(reg_n: usize, free: &[usize], seed: u64, start: u32) -> Vec<u8> {
    let mut rv: Vec<u8> = (0..reg_n as u8).collect();
    if start > 0 {
        let mut rng = SmallRng::seed_from_u64(start_seed(seed, start));
        let mut vals: Vec<u8> = free.iter().map(|&i| i as u8).collect();
        vals.shuffle(&mut rng);
        for (&slot, &v) in free.iter().zip(vals.iter()) {
            rv[slot] = v;
        }
    }
    rv
}

/// The per-task slice of the portfolio-wide evaluation budget: an even
/// split with the remainder spread over the lowest task indices — a pure
/// function of `(total, tasks, i)`, independent of scheduling.
fn slice_budget(total: u64, tasks: u64, i: u64) -> u64 {
    total / tasks + u64::from(i < total % tasks)
}

/// One greedy descent (the inner loop of the paper's Figure 7): repeatedly
/// apply the single pairwise swap with the biggest cost reduction until a
/// local minimum. Candidate swaps are scored **only** with
/// [`AdjacencyIndex::swap_delta`]; the full cost is computed once before
/// the loop and once after it (to shed incremental rounding drift).
///
/// `budget` caps the `swap_delta` evaluations of this descent (the task's
/// slice of [`RemapConfig::eval_budget`]), checked per candidate so the
/// slice is never overrun: a surface that keeps producing improving swaps
/// stops at its current (still valid) permutation instead of looping
/// unboundedly.
fn descend(
    g: &AdjacencyGraph,
    idx: &AdjacencyIndex,
    free: &[usize],
    params: DiffParams,
    budget: u64,
    mut rv: Vec<u8>,
) -> StartOutcome {
    let mut cost = perm_cost(g, &rv, params);
    let mut evals = 0u64;
    while cost > EPS && evals < budget {
        let mut best_swap: Option<(usize, usize, f64)> = None;
        'sweep: for a in 0..free.len() {
            for b in a + 1..free.len() {
                if evals >= budget {
                    break 'sweep;
                }
                let d = idx.swap_delta(&rv, free[a] as u32, free[b] as u32, params);
                evals += 1;
                if d < -EPS && best_swap.is_none_or(|(_, _, bd)| d < bd) {
                    best_swap = Some((free[a], free[b], d));
                }
            }
        }
        match best_swap {
            Some((a, b, d)) => {
                rv.swap(a, b);
                cost += d;
            }
            None => break, // local minimum (or slice exhausted mid-sweep)
        }
    }
    let cost = perm_cost(g, &rv, params);
    StartOutcome {
        rv,
        cost,
        evals,
        cycle_moves: 0,
    }
}

/// Simulated annealing over the transposition neighborhood. The geometric
/// temperature ladder is scaled from the mean edge weight and spans
/// exactly the task's evaluation slice, so the schedule is a pure function
/// of `(graph, budget, seed)` — deterministic at any thread count. Each
/// proposal is one random free-pair swap scored with `swap_delta`;
/// champions are re-scored exactly before being recorded.
fn anneal(
    g: &AdjacencyGraph,
    idx: &AdjacencyIndex,
    free: &[usize],
    params: DiffParams,
    budget: u64,
    seed: u64,
    mut rv: Vec<u8>,
) -> StartOutcome {
    let mut cost = perm_cost(g, &rv, params);
    let mut best = rv.clone();
    let mut best_cost = cost;
    let mut evals = 0u64;
    if free.len() < 2 || budget == 0 || best_cost <= EPS {
        return StartOutcome {
            rv: best,
            cost: best_cost,
            evals,
            cycle_moves: 0,
        };
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mean_w = g.total_weight() / g.num_edges().max(1) as f64;
    let t0 = (2.0 * mean_w).max(EPS);
    let t_end = (1e-3 * mean_w).max(EPS / 2.0);
    let alpha = (t_end / t0).powf(1.0 / budget as f64);
    let mut t = t0;
    while evals < budget && best_cost > EPS {
        let a = rng.gen_range(0..free.len());
        let mut b = rng.gen_range(0..free.len() - 1);
        if b >= a {
            b += 1;
        }
        let (sa, sb) = (free[a], free[b]);
        let d = idx.swap_delta(&rv, sa as u32, sb as u32, params);
        evals += 1;
        let accept = d < EPS || rng.gen::<f64>() < (-d / t).exp();
        if accept {
            rv.swap(sa, sb);
            cost += d;
            if cost < best_cost - EPS {
                // Shed incremental drift before recording a champion.
                let exact = perm_cost(g, &rv, params);
                if exact < best_cost {
                    best_cost = exact;
                    best.copy_from_slice(&rv);
                }
            }
        }
        t *= alpha;
    }
    StartOutcome {
        rv: best,
        cost: best_cost,
        evals,
        cycle_moves: 0,
    }
}

/// Draw `k` distinct free slots via a partial Fisher–Yates shuffle of the
/// caller's scratch pool (which persists between samples — only the RNG
/// stream matters for determinism).
fn sample_cycle(rng: &mut SmallRng, pool: &mut [usize], k: usize, cycle: &mut Vec<u32>) {
    for j in 0..k {
        let r = rng.gen_range(j..pool.len());
        pool.swap(j, r);
    }
    cycle.clear();
    cycle.extend(pool[..k].iter().map(|&s| s as u32));
}

/// Apply the left rotation scored by [`AdjacencyIndex::cycle_delta`]:
/// `rv[cycle[i]] <- rv[cycle[i+1]]`, the last position taking the first's
/// old value.
fn apply_cycle(rv: &mut [u8], cycle: &[u32]) {
    let first = rv[cycle[0] as usize];
    for i in 0..cycle.len() - 1 {
        rv[cycle[i] as usize] = rv[cycle[i + 1] as usize];
    }
    rv[cycle[cycle.len() - 1] as usize] = first;
}

/// Large-neighborhood search: greedy-descend to a transposition-local
/// minimum, then sample 3-cycle and k-cycle (k ≤ 6) rotations scored
/// incrementally with [`AdjacencyIndex::cycle_delta`]; applying the best
/// improving rotation escapes the local minimum and the descent resumes.
/// A k-cycle evaluation charges `k - 1` budget units (it is k-1
/// transpositions' worth of scoring work).
fn lns_descend(
    g: &AdjacencyGraph,
    idx: &AdjacencyIndex,
    free: &[usize],
    params: DiffParams,
    budget: u64,
    seed: u64,
    rv: Vec<u8>,
) -> StartOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut evals = 0u64;
    let mut cycle_moves = 0u64;
    let mut pool: Vec<usize> = free.to_vec();
    let mut cycle: Vec<u32> = Vec::with_capacity(8);
    let mut cur = rv;
    loop {
        let out = descend(g, idx, free, params, budget - evals, cur);
        evals += out.evals;
        cur = out.rv;
        let cost = out.cost;
        if cost <= EPS || evals >= budget || free.len() < 3 {
            return StartOutcome {
                rv: cur,
                cost,
                evals,
                cycle_moves,
            };
        }
        // At a local minimum: look for an improving rotation.
        let mut best_cycle: Option<(Vec<u32>, f64)> = None;
        let kmax = free.len().min(6);
        'sampling: for k in 3..=kmax {
            let samples = if k == 3 { 2 * free.len() } else { free.len() };
            for _ in 0..samples {
                let units = (k - 1) as u64;
                if evals + units > budget {
                    break 'sampling;
                }
                sample_cycle(&mut rng, &mut pool, k, &mut cycle);
                let d = idx.cycle_delta(&cur, &cycle, params);
                evals += units;
                if d < -EPS && best_cycle.as_ref().is_none_or(|c| d < c.1) {
                    best_cycle = Some((cycle.clone(), d));
                }
            }
        }
        match best_cycle {
            Some((cyc, _)) => {
                apply_cycle(&mut cur, &cyc);
                cycle_moves += 1;
            }
            None => {
                let cost = perm_cost(g, &cur, params);
                return StartOutcome {
                    rv: cur,
                    cost,
                    evals,
                    cycle_moves,
                };
            }
        }
    }
}

/// A candidate result from one restart task, tagged for the deterministic
/// tie-break: lowest cost, then strategy order, then start index.
struct Candidate {
    cost: f64,
    strat_ix: usize,
    start: u32,
    rv: Vec<u8>,
}

impl Candidate {
    fn beats(&self, other: &Candidate) -> bool {
        match self.cost.partial_cmp(&other.cost).expect("NaN cost") {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => (self.strat_ix, self.start) < (other.strat_ix, other.start),
        }
    }
}

/// The restart portfolio: `cfg.starts` tasks, task `i` running
/// `racers[i % racers.len()]` from start vector `i`, each under its
/// deterministic slice of the shared evaluation budget, on up to
/// `cfg.threads` scoped worker threads.
///
/// Each worker owns a contiguous range of task indices and reports its
/// best candidate plus its work counters; the merge takes the lowest cost,
/// breaking ties by strategy order then lowest start index. Because every
/// task's RNG streams and budget slice depend only on
/// `(cfg.seed, strategy, start)`, the winning `(rv, cost)` **and the
/// counters** are bit-identical for any thread count — no task exits early
/// based on another task's result.
fn portfolio_multistart(
    g: &AdjacencyGraph,
    idx: &AdjacencyIndex,
    cfg: &RemapConfig,
    racers: &[RemapStrategy],
) -> SearchOutcome {
    let reg_n = cfg.params.reg_n() as usize;
    let params = cfg.params;
    let free = free_slots(reg_n, &cfg.pinned);

    let starts = cfg.starts.max(1);
    // The portfolio (more than one racer) treats `starts` as an *upper
    // bound* and concentrates a tight budget on fewer, complete racers: a
    // task needs several full descent sweeps' worth of evaluations
    // (8 · |free|·(|free|−1)/2) before its result beats a random start, so
    // the task count shrinks until every slice clears that bar.
    // Single-strategy runs keep their fixed restart count and truncate
    // descents instead — that is exactly the paper's greedy-1000 baseline
    // the portfolio is measured against. The adapted count is a pure
    // function of `(budget, starts, |free|)`, so schedule invariance is
    // unaffected.
    let starts = if racers.len() > 1 {
        let pairs = (free.len() * free.len().saturating_sub(1) / 2) as u64;
        let min_task = (8 * pairs).max(1);
        (cfg.eval_budget / min_task).clamp(1, u64::from(starts)) as u32
    } else {
        starts
    };
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    }
    .min(starts as usize)
    .max(1);

    let run_range = |lo: u32, hi: u32| -> (Option<Candidate>, SearchCounters) {
        let mut counters = SearchCounters::default();
        let mut best: Option<Candidate> = None;
        for start in lo..hi {
            let slice = slice_budget(cfg.eval_budget, u64::from(starts), u64::from(start));
            if slice == 0 {
                continue; // budget smaller than the task count
            }
            let strat_ix = start as usize % racers.len();
            let rv0 = start_vector(reg_n, &free, cfg.seed, start);
            let moves_seed = task_seed(cfg.seed, strat_ix, start);
            let out = match racers[strat_ix] {
                RemapStrategy::Greedy => descend(g, idx, &free, params, slice, rv0),
                RemapStrategy::Anneal => anneal(g, idx, &free, params, slice, moves_seed, rv0),
                RemapStrategy::Lns => lns_descend(g, idx, &free, params, slice, moves_seed, rv0),
                RemapStrategy::BranchBound | RemapStrategy::Portfolio => {
                    unreachable!("not restart strategies")
                }
            };
            counters.evaluations += out.evals;
            counters.starts_run += 1;
            counters.cycle_moves += out.cycle_moves;
            let cand = Candidate {
                cost: out.cost,
                strat_ix,
                start,
                rv: out.rv,
            };
            if best.as_ref().is_none_or(|b| cand.beats(b)) {
                best = Some(cand);
            }
        }
        (best, counters)
    };

    let chunk = starts.div_ceil(threads as u32);
    let per_thread: Vec<(Option<Candidate>, SearchCounters)> = if threads == 1 {
        vec![run_range(0, starts)]
    } else {
        std::thread::scope(|s| {
            let run_range = &run_range;
            let handles: Vec<_> = (0..threads as u32)
                .map(|t| {
                    let lo = (t * chunk).min(starts);
                    let hi = (lo + chunk).min(starts);
                    s.spawn(move || run_range(lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("remap worker panicked"))
                .collect()
        })
    };

    let mut counters = SearchCounters::default();
    let mut winner: Option<Candidate> = None;
    for (cand, c) in per_thread {
        counters.absorb(c);
        if let Some(cand) = cand {
            if winner.as_ref().is_none_or(|w| cand.beats(w)) {
                winner = Some(cand);
            }
        }
    }

    // Identity baseline: the search result can never be worse than the
    // allocator's own numbering, and equal costs keep the identity.
    let identity: Vec<u8> = (0..reg_n as u8).collect();
    let identity_cost = perm_cost(g, &identity, params);
    let (rv, cost, win) = match winner {
        Some(c) if c.cost < identity_cost => {
            let strat = racers[c.strat_ix];
            let win = match strat {
                RemapStrategy::Greedy => RemapWinner::Greedy,
                RemapStrategy::Anneal => RemapWinner::Anneal,
                RemapStrategy::Lns => RemapWinner::Lns,
                _ => unreachable!(),
            };
            (c.rv, c.cost, win)
        }
        _ => (identity, identity_cost, RemapWinner::Identity),
    };
    SearchOutcome {
        certified: cost == 0.0, // zero is unbeatable; anything else is not certified
        rv,
        cost,
        winner: win,
        counters,
    }
}

/// Exact branch-and-bound over the free-slot assignment, with an
/// admissible bound from the **sorted incident-weight relaxation**: slots
/// are branched in order of decreasing incident edge weight, and the lower
/// bound for a partial assignment relaxes every edge between two
/// unassigned slots to zero, charging each unassigned slot only the
/// cheapest violation cost any unused number could give it against the
/// already-assigned slots. That never overestimates the true completion
/// cost, so pruning is safe and a completed search certifies the optimum.
///
/// The incumbent is seeded with one greedy descent from the identity
/// (spending up to a quarter of the budget), then the tree search spends
/// the rest; candidate scorings (both branching and bounding) each charge
/// one evaluation. Budget exhaustion aborts with the incumbent and
/// `certified = false`.
struct BranchBound<'a> {
    g: &'a AdjacencyGraph,
    idx: &'a AdjacencyIndex,
    params: DiffParams,
    /// Free slots in branch order (decreasing incident weight).
    order: Vec<usize>,
    /// Candidate numbers (the free slots' own numbers, ascending).
    values: Vec<u8>,
    rv: Vec<u8>,
    assigned: Vec<bool>,
    used: Vec<bool>,
    best: Vec<u8>,
    best_cost: f64,
    evals: u64,
    nodes: u64,
    budget: u64,
    aborted: bool,
}

impl BranchBound<'_> {
    /// Cost of the edges between slot `s` (holding number `v`) and the
    /// already-assigned slots. O(deg(s)), allocation-free.
    fn attach_cost(&self, s: usize, v: u8) -> f64 {
        let mut c = 0.0;
        for &(a, b, w) in self.idx.incident(s as u32) {
            let other = (if a as usize == s { b } else { a }) as usize;
            if !self.assigned[other] {
                continue;
            }
            let ra = if a as usize == s { v } else { self.rv[a as usize] };
            let rb = if b as usize == s { v } else { self.rv[b as usize] };
            if !self.params.in_range(ra, rb) {
                c += w;
            }
        }
        c
    }

    /// Admissible lower bound on completing the assignment from `depth`:
    /// each unassigned slot pays at least the cheapest attach cost over
    /// the still-unused numbers (edges among unassigned slots relaxed to
    /// zero). Returns `None` when the budget runs out mid-bound.
    fn bound(&mut self, depth: usize) -> Option<f64> {
        let mut lb = 0.0;
        for d in depth..self.order.len() {
            let s = self.order[d];
            let mut cheapest = f64::INFINITY;
            for &v in &self.values {
                if self.used[v as usize] {
                    continue;
                }
                if self.evals >= self.budget {
                    self.aborted = true;
                    return None;
                }
                self.evals += 1;
                cheapest = cheapest.min(self.attach_cost(s, v));
                if cheapest == 0.0 {
                    break;
                }
            }
            if cheapest.is_finite() {
                lb += cheapest;
            }
        }
        Some(lb)
    }

    fn search(&mut self, depth: usize, partial: f64) {
        if self.aborted || partial >= self.best_cost - EPS {
            return;
        }
        if depth == self.order.len() {
            // Complete assignment: settle the cost exactly (the partial
            // sum carries incremental drift) before recording.
            let exact = perm_cost(self.g, &self.rv, self.params);
            if exact < self.best_cost {
                self.best_cost = exact;
                self.best.copy_from_slice(&self.rv);
            }
            return;
        }
        match self.bound(depth) {
            Some(lb) if partial + lb < self.best_cost - EPS => {}
            _ => return, // pruned or aborted
        }
        let s = self.order[depth];
        let saved = self.rv[s];
        for vi in 0..self.values.len() {
            let v = self.values[vi];
            if self.used[v as usize] {
                continue;
            }
            if self.evals >= self.budget {
                self.aborted = true;
                return;
            }
            self.evals += 1;
            self.nodes += 1;
            let add = self.attach_cost(s, v);
            if partial + add >= self.best_cost - EPS {
                continue;
            }
            self.rv[s] = v;
            self.assigned[s] = true;
            self.used[v as usize] = true;
            self.search(depth + 1, partial + add);
            self.rv[s] = saved;
            self.assigned[s] = false;
            self.used[v as usize] = false;
            if self.aborted {
                return;
            }
        }
    }
}

fn branch_and_bound(g: &AdjacencyGraph, idx: &AdjacencyIndex, cfg: &RemapConfig) -> SearchOutcome {
    let reg_n = cfg.params.reg_n() as usize;
    let params = cfg.params;
    let free = free_slots(reg_n, &cfg.pinned);
    let mut counters = SearchCounters::default();

    // Incumbent: one greedy descent from the identity.
    let identity: Vec<u8> = (0..reg_n as u8).collect();
    let inc = descend(g, idx, &free, params, cfg.eval_budget / 4, identity.clone());
    counters.evaluations += inc.evals;
    counters.starts_run += 1;
    if inc.cost <= EPS {
        return SearchOutcome {
            rv: inc.rv,
            cost: inc.cost,
            winner: RemapWinner::BranchBound,
            certified: true,
            counters,
        };
    }

    let mut order = free.clone();
    order.sort_by(|&a, &b| {
        idx.incident_weight(b as u32)
            .partial_cmp(&idx.incident_weight(a as u32))
            .expect("NaN weight")
            .then(a.cmp(&b))
    });
    let mut assigned = vec![true; reg_n];
    for &s in &free {
        assigned[s] = false;
    }
    let mut used = vec![true; reg_n];
    for &s in &free {
        used[s] = false; // free slots' own numbers are the candidate pool
    }
    let mut rv = identity.clone();
    // Cost among the pinned slots alone: constant under any branching.
    let pinned_cost = g.assignment_cost(
        |n| assigned[n as usize].then(|| rv[n as usize]),
        params,
    );
    let mut bb = BranchBound {
        g,
        idx,
        params,
        values: free.iter().map(|&s| s as u8).collect(),
        order,
        rv: std::mem::take(&mut rv),
        assigned,
        used,
        best: inc.rv,
        best_cost: inc.cost,
        evals: counters.evaluations,
        nodes: 0,
        budget: cfg.eval_budget,
        aborted: false,
    };
    bb.search(0, pinned_cost);

    counters.evaluations = bb.evals;
    counters.bb_nodes = bb.nodes;
    SearchOutcome {
        rv: bb.best,
        cost: bb.best_cost,
        winner: RemapWinner::BranchBound,
        certified: !bb.aborted || bb.best_cost == 0.0,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{FunctionBuilder, Inst};

    /// A function whose accesses walk the cycle `r0 -> r2 -> r1 -> r3 ->
    /// r0`. Under `RegN = 4, DiffN = 2` the identity numbering violates
    /// three of the four hops, but relabeling the cycle to consecutive
    /// numbers (`rv = [0, 2, 1, 3]`) satisfies all of them.
    fn hoppy() -> Function {
        let mut b = FunctionBuilder::new("hoppy");
        for (src, dst) in [(0u8, 2u8), (2, 1), (1, 3), (3, 0)] {
            b.push(Inst::Mov {
                dst: PReg(dst).into(),
                src: PReg(src).into(),
            });
        }
        b.ret(None);
        b.finish()
    }

    /// A denser instance on 6 registers with no zero-cost solution at
    /// `RegN = 6, DiffN = 2` — useful when a test needs the searches to
    /// actually compete rather than all hit zero.
    fn tangled() -> Function {
        let mut b = FunctionBuilder::new("tangled");
        for (src, dst) in [
            (0u8, 3u8),
            (3, 1),
            (1, 4),
            (4, 2),
            (2, 5),
            (5, 0),
            (0, 4),
            (4, 1),
            (1, 5),
            (5, 2),
            (2, 3),
            (3, 0),
        ] {
            b.push(Inst::Mov {
                dst: PReg(dst).into(),
                src: PReg(src).into(),
            });
        }
        b.ret(None);
        b.finish()
    }

    #[test]
    fn exhaustive_finds_zero_cost() {
        let mut f = hoppy();
        let cfg = RemapConfig::new(DiffParams::new(4, 2));
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.exhaustive);
        assert!(stats.cost_before > 0.0);
        assert_eq!(stats.cost_after, 0.0, "a zero-cost permutation exists");
        assert_eq!(stats.winner, RemapWinner::Exhaustive);
        assert!(stats.certified, "zero cost is unbeatable");
        // And the rewritten code reflects it: the move now spans an
        // in-range pair.
        let p = DiffParams::new(4, 2);
        for i in f.iter_insts() {
            if let Inst::Mov { dst, src } = i {
                assert!(p.in_range(src.expect_phys().number(), dst.expect_phys().number()));
            }
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_case() {
        let mut f1 = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        let ex = remap_function(&mut f1, &cfg);

        let mut f2 = hoppy();
        cfg.exhaustive_limit = 0; // force greedy
        cfg.starts = 32;
        let gr = remap_function(&mut f2, &cfg);
        assert!(!gr.exhaustive);
        assert_eq!(gr.cost_after, ex.cost_after);
    }

    #[test]
    fn identity_kept_when_already_optimal() {
        // Accesses r0 -> r1 only: identity is optimal.
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Mov {
            dst: PReg(1).into(),
            src: PReg(0).into(),
        });
        b.ret(None);
        let mut f = b.finish();
        let before = f.clone();
        let stats = remap_function(&mut f, &RemapConfig::new(DiffParams::new(4, 2)));
        assert_eq!(stats.cost_after, 0.0);
        assert_eq!(stats.winner, RemapWinner::Identity);
        assert!(stats.certified);
        assert_eq!(f, before, "no gratuitous rewrite");
    }

    #[test]
    fn pinned_registers_keep_their_numbers() {
        let mut f = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        cfg.pinned = vec![PReg(0), PReg(3)];
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.cost_after <= stats.cost_before);
        // The first mov reads r0 and the last writes r0: those operands
        // must still be r0 (and likewise r3) after any remapping.
        let movs: Vec<_> = f
            .iter_insts()
            .filter_map(|i| match i {
                Inst::Mov { dst, src } => Some((src.expect_phys(), dst.expect_phys())),
                _ => None,
            })
            .collect();
        assert_eq!(movs[0].0, PReg(0), "pinned r0 moved");
        assert_eq!(movs[3].1, PReg(0), "pinned r0 moved");
        assert_eq!(movs[2].1, PReg(3), "pinned r3 moved");
        assert_eq!(movs[3].0, PReg(3), "pinned r3 moved");
    }

    #[test]
    fn remapping_preserves_distinctness() {
        // Permutations are bijections: two distinct registers must remain
        // distinct after remapping.
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Bin {
            op: dra_ir::BinOp::Add,
            dst: PReg(2).into(),
            lhs: PReg(0).into(),
            rhs: PReg(1).into(),
        });
        b.ret(None);
        let mut f = b.finish();
        remap_function(&mut f, &RemapConfig::new(DiffParams::new(4, 2)));
        let regs: Vec<u8> = f.blocks[0].insts[0]
            .accesses()
            .iter()
            .map(|r| r.expect_phys().number())
            .collect();
        assert_eq!(regs.len(), 3);
        assert_ne!(regs[0], regs[1]);
        assert_ne!(regs[0], regs[2]);
        assert_ne!(regs[1], regs[2]);
    }

    #[test]
    fn greedy_is_deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut f = hoppy();
            let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
            cfg.exhaustive_limit = 0;
            cfg.seed = seed;
            remap_function(&mut f, &cfg);
            format!("{f}")
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn float_class_remap_is_complete_noop() {
        // Regression: `apply_permutation` used to gate on the *configured*
        // class in a way that never dispatched on the register's own
        // class. A float-class remap of integer code must leave every
        // operand untouched — physical registers belong to the integer
        // class (`Function::class_of`).
        let mut f = hoppy();
        let before = f.clone();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        cfg.class = RegClass::Float;
        let stats = remap_function(&mut f, &cfg);
        assert_eq!(f, before, "float remap rewrote integer registers");
        assert_eq!(stats.cost_before, 0.0, "no float accesses, empty graph");
        assert_eq!(stats.cost_after, 0.0);
        assert_eq!(stats.evaluations, 0, "empty graph short-circuits");
    }

    #[test]
    fn apply_permutation_dispatches_on_register_class() {
        let mut f = hoppy();
        let before = f.clone();
        // Reversing permutation under the wrong class: no-op.
        apply_permutation(&mut f, &[3, 2, 1, 0], RegClass::Float);
        assert_eq!(f, before);
        // Same permutation under the register's own class: applied.
        apply_permutation(&mut f, &[3, 2, 1, 0], RegClass::Int);
        assert_ne!(f, before);
        let first = match f.blocks[0].insts[0] {
            Inst::Mov { src, .. } => src.expect_phys(),
            _ => unreachable!(),
        };
        assert_eq!(first, PReg(3), "r0 renumbered to rv[0] = 3");
    }

    #[test]
    fn parallel_multistart_matches_sequential() {
        // The determinism contract: identical (permutation, cost) *and
        // counters* at any thread count, including sequential.
        for strategy in [
            RemapStrategy::Greedy,
            RemapStrategy::Anneal,
            RemapStrategy::Lns,
            RemapStrategy::Portfolio,
        ] {
            let run = |threads: usize| {
                let mut f = hoppy();
                let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
                cfg.exhaustive_limit = 0;
                cfg.starts = 64;
                cfg.threads = threads;
                cfg.strategy = strategy;
                let stats = remap_function(&mut f, &cfg);
                (
                    format!("{f}"),
                    stats.cost_after.to_bits(),
                    stats.evaluations,
                    stats.starts_run,
                    stats.cycle_moves,
                )
            };
            let sequential = run(1);
            assert_eq!(run(2), sequential, "{strategy:?}: 2 threads diverged");
            assert_eq!(run(8), sequential, "{strategy:?}: 8 threads diverged");
        }
    }

    #[test]
    fn greedy_counters_account_for_work() {
        let mut f = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
        cfg.exhaustive_limit = 0;
        cfg.starts = 16;
        cfg.threads = 1;
        let stats = remap_function(&mut f, &cfg);
        assert!(!stats.exhaustive);
        // Counters are schedule-invariant now: every task with a nonzero
        // budget slice runs, so all 16 starts execute (zero-cost start
        // vectors included — they just spend no evaluations).
        assert_eq!(stats.starts_run, 16);
        // The identity start (cost > 0) sweeps all 66 free pairs at least
        // once before reaching a local minimum.
        assert!(stats.evaluations >= 66);
    }

    #[test]
    fn exhaustive_early_exits_on_zero_cost() {
        let mut f = hoppy();
        let stats = remap_function(&mut f, &RemapConfig::new(DiffParams::new(4, 2)));
        assert!(stats.exhaustive);
        assert_eq!(stats.cost_after, 0.0);
        // Heap's over 4 free slots visits at most 4! - 1 = 23 transpositions;
        // the zero-cost early exit must stop at (or before) the one that
        // reaches a perfect vector.
        assert!(stats.evaluations <= 23);
    }

    #[test]
    fn eval_budget_bounds_the_search_deterministically() {
        let run = |budget: u64, threads: usize| {
            let mut f = hoppy();
            let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
            cfg.exhaustive_limit = 0;
            cfg.starts = 16;
            cfg.threads = threads;
            cfg.eval_budget = budget;
            let stats = remap_function(&mut f, &cfg);
            assert!(stats.cost_after <= stats.cost_before);
            assert!(
                stats.evaluations <= budget,
                "portfolio overran its budget: {} > {budget}",
                stats.evaluations
            );
            (
                format!("{f}"),
                stats.cost_after.to_bits(),
                stats.evaluations,
                stats.starts_run,
            )
        };
        // A budget that cuts descents short still yields a valid
        // permutation, bit-identical at any thread count — including the
        // work counters (the budget split is deterministic, not first-
        // come-first-served).
        let tight = run(10, 1);
        assert_eq!(run(10, 2), tight, "2 threads diverged under budget");
        assert_eq!(run(10, 8), tight, "8 threads diverged under budget");
        // And the default budget reproduces the unbudgeted behavior on
        // real-sized inputs (it never binds).
        let roomy = run(DEFAULT_EVAL_BUDGET, 1);
        assert_eq!(run(DEFAULT_EVAL_BUDGET, 8), roomy);
    }

    #[test]
    fn budget_smaller_than_starts_skips_zero_slice_tasks() {
        let mut f = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
        cfg.exhaustive_limit = 0;
        cfg.starts = 16;
        cfg.threads = 1;
        cfg.eval_budget = 10;
        let stats = remap_function(&mut f, &cfg);
        // 10 budget over 16 tasks: the first 10 tasks get a one-evaluation
        // slice, the rest get zero and are skipped. (A task whose start
        // vector is already zero-cost spends less than its slice, so the
        // evaluation total is bounded by — not equal to — the budget.)
        assert_eq!(stats.starts_run, 10);
        assert!(stats.evaluations <= 10);
        assert!(stats.evaluations > 0);
    }

    #[test]
    fn exhaustive_respects_eval_budget() {
        let mut f = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        cfg.eval_budget = 3;
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.exhaustive);
        assert!(stats.evaluations <= 3, "budget ignored: {}", stats.evaluations);
        assert!(stats.cost_after <= stats.cost_before);
        assert!(
            !stats.certified || stats.cost_after == 0.0,
            "a budget-cut enumeration must not claim certification"
        );
    }

    #[test]
    fn strategy_parse_roundtrip() {
        for s in [
            RemapStrategy::Greedy,
            RemapStrategy::Anneal,
            RemapStrategy::Lns,
            RemapStrategy::BranchBound,
            RemapStrategy::Portfolio,
        ] {
            assert_eq!(RemapStrategy::parse(s.label()), Some(s));
        }
        assert_eq!(RemapStrategy::parse("sa"), Some(RemapStrategy::Anneal));
        assert_eq!(RemapStrategy::parse("bb"), Some(RemapStrategy::BranchBound));
        assert_eq!(RemapStrategy::parse("nope"), None);
    }

    #[test]
    fn every_strategy_matches_exhaustive_on_small_case() {
        let mut f0 = hoppy();
        let ex = remap_function(&mut f0, &RemapConfig::new(DiffParams::new(4, 2)));
        for strategy in [
            RemapStrategy::Anneal,
            RemapStrategy::Lns,
            RemapStrategy::Portfolio,
            RemapStrategy::BranchBound,
        ] {
            let mut f = hoppy();
            let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
            cfg.exhaustive_limit = 0; // force the strategy itself
            cfg.starts = 32;
            cfg.strategy = strategy;
            let stats = remap_function(&mut f, &cfg);
            assert_eq!(
                stats.cost_after, ex.cost_after,
                "{strategy:?} missed the optimum"
            );
        }
    }

    #[test]
    fn branch_and_bound_certifies_and_counts_nodes() {
        let mut f = tangled();
        let mut cfg = RemapConfig::new(DiffParams::new(6, 2));
        cfg.strategy = RemapStrategy::BranchBound;
        let stats = remap_function(&mut f, &cfg);
        assert!(!stats.exhaustive, "bb bypasses the exhaustive gate");
        assert!(stats.certified, "bb within budget must certify");
        assert!(stats.bb_nodes > 0, "no tree search happened");
        // Cross-check the certificate against full enumeration.
        let mut f2 = tangled();
        let ex = remap_function(&mut f2, &RemapConfig::new(DiffParams::new(6, 2)));
        assert_eq!(stats.cost_after, ex.cost_after, "certified cost not optimal");
    }

    #[test]
    fn branch_and_bound_respects_budget_and_uncertifies() {
        let mut f = tangled();
        let mut cfg = RemapConfig::new(DiffParams::new(6, 2));
        cfg.strategy = RemapStrategy::BranchBound;
        cfg.eval_budget = 8;
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.evaluations <= 8);
        assert!(stats.cost_after <= stats.cost_before);
        assert!(
            !stats.certified || stats.cost_after == 0.0,
            "a budget-cut bb must not claim certification"
        );
    }

    #[test]
    fn branch_and_bound_respects_pinning() {
        let mut f = tangled();
        let mut cfg = RemapConfig::new(DiffParams::new(6, 2));
        cfg.strategy = RemapStrategy::BranchBound;
        cfg.pinned = vec![PReg(0), PReg(5)];
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.cost_after <= stats.cost_before);
        // Pinned slots never change numbers: check against an unpinned
        // optimum only if it renumbers r0 or r5 — instead just verify the
        // rewrite kept r0/r5 operands stable by construction: the pinned
        // optimum's cost can't beat the unpinned one.
        let mut f2 = tangled();
        let unpinned = remap_function(&mut f2, &{
            let mut c = RemapConfig::new(DiffParams::new(6, 2));
            c.strategy = RemapStrategy::BranchBound;
            c
        });
        assert!(stats.cost_after >= unpinned.cost_after);
    }

    #[test]
    fn lns_counts_cycle_moves_deterministically() {
        let run = |threads: usize| {
            let mut f = tangled();
            let mut cfg = RemapConfig::new(DiffParams::new(6, 2));
            cfg.exhaustive_limit = 0;
            cfg.strategy = RemapStrategy::Lns;
            cfg.starts = 24;
            cfg.threads = threads;
            let stats = remap_function(&mut f, &cfg);
            (stats.cycle_moves, stats.evaluations, stats.starts_run)
        };
        assert_eq!(run(1), run(4), "cycle-move counter is schedule-dependent");
    }

    /// Under a tight budget the portfolio concentrates on fewer, complete
    /// racers instead of starving `starts` tasks; single-strategy greedy
    /// keeps its fixed restart count (the paper's baseline behavior).
    #[test]
    fn portfolio_concentrates_a_tight_budget() {
        let run = |strategy: RemapStrategy| {
            let mut f = tangled();
            let mut cfg = RemapConfig::new(DiffParams::new(6, 2));
            cfg.exhaustive_limit = 0;
            cfg.strategy = strategy;
            cfg.starts = 100;
            cfg.eval_budget = 1000;
            remap_function(&mut f, &cfg)
        };
        // |free| = 6 → 15 pairs → 120-eval minimum slice → 8 tasks.
        let port = run(RemapStrategy::Portfolio);
        assert_eq!(port.starts_run, 8, "tasks should shrink to fit the budget");
        assert!(port.evaluations <= 1000);
        let greedy = run(RemapStrategy::Greedy);
        assert_eq!(greedy.starts_run, 100, "plain greedy keeps its restart count");
        // With complete descents the portfolio must not lose to greedy's
        // 100 starved 10-evaluation slices.
        assert!(port.cost_after <= greedy.cost_after + 1e-9);
    }

    #[test]
    fn degraded_marker_is_inert() {
        let m = RemapStats::degraded_marker();
        assert!(m.degraded);
        assert_eq!(m.evaluations, 0);
        assert_eq!(m.starts_run, 0);
        assert_eq!(m.winner, RemapWinner::Identity);
        let real = remap_function(&mut hoppy(), &RemapConfig::new(DiffParams::new(4, 2)));
        assert!(!real.degraded, "normal remaps never carry the marker");
    }

    #[test]
    fn program_remap_covers_every_function() {
        let prog_fn = || {
            let mut b = FunctionBuilder::new("g");
            for (src, dst) in [(0u8, 2u8), (2, 1), (1, 3), (3, 0)] {
                b.push(Inst::Mov {
                    dst: PReg(dst).into(),
                    src: PReg(src).into(),
                });
            }
            b.ret(None);
            b.finish()
        };
        let mut p = Program {
            funcs: vec![prog_fn(), prog_fn()],
            entry: 0,
        };
        let stats = remap_program(&mut p, &RemapConfig::new(DiffParams::new(4, 2)));
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.cost_after == 0.0));
    }
}
