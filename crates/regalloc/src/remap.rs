//! Differential remapping (Section 5) — the post-pass approach.
//!
//! After any register allocator has run, the register *numbers* may be
//! permuted freely: a permutation preserves the only constraint a
//! traditional allocator enforces (co-live ranges in distinct registers)
//! while changing the differential-encoding cost. This pass searches the
//! permutation space for a low-cost register vector:
//!
//! * **exhaustive** search for small `RegN` (the paper notes
//!   `O(RegN² · RegN!)` is tractable there), and
//! * the paper's **greedy pairwise-swap descent** restarted from many
//!   random initial register vectors (1000 in the paper) otherwise.

use dra_adjgraph::{build_preg_adjacency, AdjacencyGraph, DiffParams};
use dra_ir::{Function, PReg, Program, Reg, RegClass};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the remapping search.
#[derive(Clone, Debug)]
pub struct RemapConfig {
    /// Differential parameters (`RegN`, `DiffN`).
    pub params: DiffParams,
    /// Register class whose numbers are permuted.
    pub class: RegClass,
    /// Use exhaustive permutation search when `RegN <=` this bound.
    pub exhaustive_limit: u16,
    /// Number of random restarts for the greedy search (the paper uses
    /// 1000).
    pub starts: u32,
    /// Registers that must keep their numbers (special-purpose registers,
    /// Section 9.2, or calling-convention anchors, Section 9.3).
    pub pinned: Vec<PReg>,
    /// RNG seed for the random restarts (reproducibility).
    pub seed: u64,
}

impl RemapConfig {
    /// Defaults for the given parameters: exhaustive up to `RegN = 7`,
    /// 128 greedy restarts, nothing pinned.
    pub fn new(params: DiffParams) -> Self {
        RemapConfig {
            params,
            class: RegClass::Int,
            exhaustive_limit: 7,
            starts: 128,
            pinned: Vec::new(),
            seed: 0x5eed,
        }
    }

    /// Paper-fidelity restarts (1000 initial register vectors).
    pub fn with_paper_restarts(mut self) -> Self {
        self.starts = 1000;
        self
    }
}

/// Outcome of one remapping run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RemapStats {
    /// Adjacency cost before remapping (identity permutation).
    pub cost_before: f64,
    /// Adjacency cost achieved.
    pub cost_after: f64,
    /// Whether the exhaustive search was used.
    pub exhaustive: bool,
}

/// Remap the register numbers of an allocated function in place.
///
/// # Panics
///
/// Panics if `f` still contains virtual registers of `cfg.class`, or uses
/// physical numbers `>= RegN`.
pub fn remap_function(f: &mut Function, cfg: &RemapConfig) -> RemapStats {
    let reg_n = cfg.params.reg_n();
    let g = build_preg_adjacency(f, cfg.class, reg_n);
    let identity: Vec<u8> = (0..reg_n as u8).collect();
    let cost_before = perm_cost(&g, &identity, cfg.params);

    let (perm, cost_after, exhaustive) = if reg_n <= cfg.exhaustive_limit {
        let (p, c) = exhaustive_search(&g, cfg);
        (p, c, true)
    } else {
        let (p, c) = greedy_multistart(&g, cfg);
        (p, c, false)
    };

    // Keep the identity if the search could not improve on it.
    if cost_after < cost_before {
        apply_permutation(f, &perm, cfg.class);
        RemapStats {
            cost_before,
            cost_after,
            exhaustive,
        }
    } else {
        RemapStats {
            cost_before,
            cost_after: cost_before,
            exhaustive,
        }
    }
}

/// Remap every function of a program independently.
pub fn remap_program(p: &mut Program, cfg: &RemapConfig) -> Vec<RemapStats> {
    p.funcs
        .iter_mut()
        .map(|f| remap_function(f, cfg))
        .collect()
}

/// Cost of permutation `rv` on graph `g`: node `i` gets number `rv[i]`.
fn perm_cost(g: &AdjacencyGraph, rv: &[u8], params: DiffParams) -> f64 {
    g.assignment_cost(|n| Some(rv[n as usize]), params)
}

fn apply_permutation(f: &mut Function, rv: &[u8], class: RegClass) {
    f.map_all_regs(|r| match r {
        Reg::Phys(p) if class == RegClass::Int => Reg::Phys(PReg(rv[p.index()])),
        other => other,
    });
}

/// All permutations (Heap's algorithm) respecting pinned registers.
fn exhaustive_search(g: &AdjacencyGraph, cfg: &RemapConfig) -> (Vec<u8>, f64) {
    let reg_n = cfg.params.reg_n() as usize;
    let pinned: Vec<bool> = {
        let mut v = vec![false; reg_n];
        for p in &cfg.pinned {
            v[p.index()] = true;
        }
        v
    };
    // Permute only the free positions.
    let free: Vec<usize> = (0..reg_n).filter(|&i| !pinned[i]).collect();
    let mut best: Vec<u8> = (0..reg_n as u8).collect();
    let mut best_cost = perm_cost(g, &best, cfg.params);

    let mut order: Vec<usize> = free.clone();
    permute(&mut order, 0, &mut |order| {
        let mut rv: Vec<u8> = (0..reg_n as u8).collect();
        for (i, &slot) in free.iter().enumerate() {
            rv[slot] = order[i] as u8;
        }
        let c = perm_cost(g, &rv, cfg.params);
        if c < best_cost {
            best_cost = c;
            best = rv;
        }
    });
    (best, best_cost)
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// The paper's greedy algorithm (Figure 7): from each initial register
/// vector, repeatedly apply the single pairwise swap with the biggest cost
/// reduction until a local minimum; keep the best result over all starts.
fn greedy_multistart(g: &AdjacencyGraph, cfg: &RemapConfig) -> (Vec<u8>, f64) {
    let reg_n = cfg.params.reg_n() as usize;
    let pinned: Vec<bool> = {
        let mut v = vec![false; reg_n];
        for p in &cfg.pinned {
            v[p.index()] = true;
        }
        v
    };
    let free: Vec<usize> = (0..reg_n).filter(|&i| !pinned[i]).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let mut best: Vec<u8> = (0..reg_n as u8).collect();
    let mut best_cost = perm_cost(g, &best, cfg.params);

    for start in 0..cfg.starts {
        let mut rv: Vec<u8> = (0..reg_n as u8).collect();
        if start > 0 {
            // Start 0 is the identity (the paper's initial RV); the rest
            // shuffle the free positions.
            let mut vals: Vec<u8> = free.iter().map(|&i| i as u8).collect();
            vals.shuffle(&mut rng);
            for (&slot, &v) in free.iter().zip(vals.iter()) {
                rv[slot] = v;
            }
        }
        let mut cost = perm_cost(g, &rv, cfg.params);
        loop {
            let mut best_swap: Option<(usize, usize, f64)> = None;
            for a in 0..free.len() {
                for b in a + 1..free.len() {
                    rv.swap(free[a], free[b]);
                    let c = perm_cost(g, &rv, cfg.params);
                    rv.swap(free[a], free[b]);
                    if c < cost
                        && best_swap.is_none_or(|(_, _, bc)| c < bc)
                    {
                        best_swap = Some((free[a], free[b], c));
                    }
                }
            }
            match best_swap {
                Some((a, b, c)) => {
                    rv.swap(a, b);
                    cost = c;
                }
                None => break, // local minimum
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best = rv;
        }
        if best_cost == 0.0 {
            break; // cannot improve further
        }
    }
    (best, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{FunctionBuilder, Inst};

    /// A function whose accesses walk the cycle `r0 -> r2 -> r1 -> r3 ->
    /// r0`. Under `RegN = 4, DiffN = 2` the identity numbering violates
    /// three of the four hops, but relabeling the cycle to consecutive
    /// numbers (`rv = [0, 2, 1, 3]`) satisfies all of them.
    fn hoppy() -> Function {
        let mut b = FunctionBuilder::new("hoppy");
        for (src, dst) in [(0u8, 2u8), (2, 1), (1, 3), (3, 0)] {
            b.push(Inst::Mov {
                dst: PReg(dst).into(),
                src: PReg(src).into(),
            });
        }
        b.ret(None);
        b.finish()
    }

    #[test]
    fn exhaustive_finds_zero_cost() {
        let mut f = hoppy();
        let cfg = RemapConfig::new(DiffParams::new(4, 2));
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.exhaustive);
        assert!(stats.cost_before > 0.0);
        assert_eq!(stats.cost_after, 0.0, "a zero-cost permutation exists");
        // And the rewritten code reflects it: the move now spans an
        // in-range pair.
        let p = DiffParams::new(4, 2);
        for i in f.iter_insts() {
            if let Inst::Mov { dst, src } = i {
                assert!(p.in_range(src.expect_phys().number(), dst.expect_phys().number()));
            }
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_case() {
        let mut f1 = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        let ex = remap_function(&mut f1, &cfg);

        let mut f2 = hoppy();
        cfg.exhaustive_limit = 0; // force greedy
        cfg.starts = 32;
        let gr = remap_function(&mut f2, &cfg);
        assert!(!gr.exhaustive);
        assert_eq!(gr.cost_after, ex.cost_after);
    }

    #[test]
    fn identity_kept_when_already_optimal() {
        // Accesses r0 -> r1 only: identity is optimal.
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Mov {
            dst: PReg(1).into(),
            src: PReg(0).into(),
        });
        b.ret(None);
        let mut f = b.finish();
        let before = f.clone();
        let stats = remap_function(&mut f, &RemapConfig::new(DiffParams::new(4, 2)));
        assert_eq!(stats.cost_after, 0.0);
        assert_eq!(f, before, "no gratuitous rewrite");
    }

    #[test]
    fn pinned_registers_keep_their_numbers() {
        let mut f = hoppy();
        let mut cfg = RemapConfig::new(DiffParams::new(4, 2));
        cfg.pinned = vec![PReg(0), PReg(3)];
        let stats = remap_function(&mut f, &cfg);
        assert!(stats.cost_after <= stats.cost_before);
        // The first mov reads r0 and the last writes r0: those operands
        // must still be r0 (and likewise r3) after any remapping.
        let movs: Vec<_> = f
            .iter_insts()
            .filter_map(|i| match i {
                Inst::Mov { dst, src } => Some((src.expect_phys(), dst.expect_phys())),
                _ => None,
            })
            .collect();
        assert_eq!(movs[0].0, PReg(0), "pinned r0 moved");
        assert_eq!(movs[3].1, PReg(0), "pinned r0 moved");
        assert_eq!(movs[2].1, PReg(3), "pinned r3 moved");
        assert_eq!(movs[3].0, PReg(3), "pinned r3 moved");
    }

    #[test]
    fn remapping_preserves_distinctness() {
        // Permutations are bijections: two distinct registers must remain
        // distinct after remapping.
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Bin {
            op: dra_ir::BinOp::Add,
            dst: PReg(2).into(),
            lhs: PReg(0).into(),
            rhs: PReg(1).into(),
        });
        b.ret(None);
        let mut f = b.finish();
        remap_function(&mut f, &RemapConfig::new(DiffParams::new(4, 2)));
        let regs: Vec<u8> = f.blocks[0].insts[0]
            .accesses()
            .iter()
            .map(|r| r.expect_phys().number())
            .collect();
        assert_eq!(regs.len(), 3);
        assert_ne!(regs[0], regs[1]);
        assert_ne!(regs[0], regs[2]);
        assert_ne!(regs[1], regs[2]);
    }

    #[test]
    fn greedy_is_deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut f = hoppy();
            let mut cfg = RemapConfig::new(DiffParams::new(12, 8));
            cfg.exhaustive_limit = 0;
            cfg.seed = seed;
            remap_function(&mut f, &cfg);
            format!("{f}")
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn program_remap_covers_every_function() {
        let prog_fn = || {
            let mut b = FunctionBuilder::new("g");
            for (src, dst) in [(0u8, 2u8), (2, 1), (1, 3), (3, 0)] {
                b.push(Inst::Mov {
                    dst: PReg(dst).into(),
                    src: PReg(src).into(),
                });
            }
            b.ret(None);
            b.finish()
        };
        let mut p = Program {
            funcs: vec![prog_fn(), prog_fn()],
            entry: 0,
        };
        let stats = remap_program(&mut p, &RemapConfig::new(DiffParams::new(4, 2)));
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.cost_after == 0.0));
    }
}
