//! # dra-regalloc — register allocators with differential-encoding support
//!
//! Implements the paper's three integration points (Sections 5–7) on top of
//! two traditional allocators:
//!
//! * [`irc`] — iterated register coalescing (George–Appel), the low-end
//!   baseline; hosts **differential select** via
//!   [`irc::SelectStrategy::Differential`].
//! * [`ospill`] — an optimal-spilling allocator in the style of Appel &
//!   George (2001): spill decisions first (pressure everywhere ≤ `RegN`),
//!   coalescing second; hosts **differential coalesce**.
//! * [`remap`] — **differential remapping**, the post-pass permutation
//!   search applicable after *any* allocator.
//!
//! All three can be combined, mirroring Figure 4 of the paper: remapping
//! may always run after select or coalesce.
//!
//! ```
//! use dra_adjgraph::DiffParams;
//! use dra_ir::{BinOp, FunctionBuilder};
//! use dra_regalloc::{irc_allocate, AllocConfig};
//!
//! let mut b = FunctionBuilder::new("demo");
//! let x = b.new_vreg();
//! let y = b.new_vreg();
//! b.mov_imm(x, 2);
//! b.bin_imm(BinOp::Mul, y, x.into(), 21);
//! b.ret(Some(y.into()));
//! let mut f = b.finish();
//!
//! // Differential select: 12 registers addressed through 3-bit fields.
//! let cfg = AllocConfig::differential(DiffParams::new(12, 8));
//! let stats = irc_allocate(&mut f, &cfg)?;
//! assert!(f.is_fully_physical());
//! assert_eq!(stats.spilled_vregs, 0);
//! # Ok::<(), dra_regalloc::AllocError>(())
//! ```

pub mod allocator;
pub mod checker;
pub mod coalesce;
pub mod dense;
pub mod interference;
pub mod irc;
pub mod ospill;
pub mod remap;
pub mod scratch;
pub mod spill;

pub use allocator::{
    allocate_program, Allocation, AllocationRecord, Allocator, AllocatorStats, Coalescing,
    DenseIrc, Ospill, ReferenceIrc,
};
pub use checker::{
    check_allocation, check_encoded_fields, check_function_encoding, CheckError, CheckStats,
    Violation, ViolationKind,
};
pub use interference::InterferenceGraph;
pub use irc::{
    irc_allocate, irc_allocate_program, AllocConfig, AllocError, AllocStats, SelectStrategy, SpillMetric,
};
pub use ospill::{ospill_allocate, ospill_allocate_program, ospill_allocate_recorded, OspillConfig, OspillStats};
pub use coalesce::{coalesce_allocate, coalesce_allocate_program, coalesce_allocate_recorded, CoalesceConfig, CoalesceEval, CoalesceStats};
pub use remap::{
    remap_function, remap_program, RemapConfig, RemapStats, RemapStrategy, RemapWinner,
    DEFAULT_EVAL_BUDGET,
};
