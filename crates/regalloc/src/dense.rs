//! Dense index containers for the IRC engine.
//!
//! The worklist loop pops the *lowest-numbered* node or move at every
//! step (that order is part of the allocator's determinism contract, see
//! DESIGN.md §8), so a plain swap-remove vector cannot replace the old
//! `BTreeSet` worklists. [`OrderedIndexSet`] keeps the ascending pop
//! order while making `insert`/`remove`/`contains` O(1): it is a bitset
//! with a word cursor that only moves forward past cleared prefixes and
//! is pulled back on lower inserts, so `peek_min` is amortized O(1) over
//! a simplify/coalesce/freeze run.
//!
//! [`ColorSet`] is the matching replacement for the select stage's
//! `BTreeSet<u8>` of legal colors: a 256-bit mask whose iteration order
//! is ascending, like the set it replaces.

/// An ordered set of small integer indices with O(1) membership updates
/// and ascending (lowest-first) iteration and min queries.
pub struct OrderedIndexSet {
    words: Vec<u64>,
    len: usize,
    /// Lowest word index that may contain a set bit. Invariant: every
    /// word below `cursor` is zero.
    cursor: usize,
}

impl OrderedIndexSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> OrderedIndexSet {
        OrderedIndexSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
            cursor: 0,
        }
    }

    /// Re-initialize in place to an empty set over `0..capacity`, reusing
    /// the word buffer (the scratch-arena primitive, like
    /// [`dra_ir::BitSet::reset`]).
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
        self.len = 0;
        self.cursor = 0;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `i` a member?
    pub fn contains(&self, i: u32) -> bool {
        let i = i as usize;
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Add `i`; returns whether it was newly inserted.
    pub fn insert(&mut self, i: u32) -> bool {
        let idx = i as usize;
        let w = idx / 64;
        let bit = 1u64 << (idx % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.len += 1;
        if w < self.cursor {
            self.cursor = w;
        }
        true
    }

    /// Remove `i`; returns whether it was present.
    pub fn remove(&mut self, i: u32) -> bool {
        let idx = i as usize;
        let w = idx / 64;
        let bit = 1u64 << (idx % 64);
        if self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        self.len -= 1;
        true
    }

    /// The lowest member, advancing the word cursor past cleared
    /// prefixes. `&mut` because the cursor advance is a (behaviorally
    /// invisible) structural update.
    pub fn peek_min(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        loop {
            let w = self.words[self.cursor];
            if w != 0 {
                return Some((self.cursor * 64 + w.trailing_zeros() as usize) as u32);
            }
            self.cursor += 1;
        }
    }

    /// Remove and return the lowest member.
    pub fn pop_min(&mut self) -> Option<u32> {
        let m = self.peek_min()?;
        self.remove(m);
        Some(m)
    }

    /// Ascending iteration over the members.
    pub fn iter(&self) -> OrderedIndexIter<'_> {
        OrderedIndexIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over an [`OrderedIndexSet`].
pub struct OrderedIndexIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OrderedIndexIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.word_idx * 64 + bit) as u32)
    }
}

/// A set of colors (`u8`), iterated in ascending order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ColorSet {
    words: [u64; 4],
}

impl ColorSet {
    /// The set `{0, 1, .., n-1}` — the legal-color universe for `k`
    /// allocatable registers (callers pass `k as u8`, matching the
    /// `0..k as u8` range the set-based select stage used).
    pub fn below(n: u8) -> ColorSet {
        let mut s = ColorSet { words: [0; 4] };
        for c in 0..n {
            s.insert(c);
        }
        s
    }

    /// Is `c` a member?
    pub fn contains(&self, c: u8) -> bool {
        self.words[c as usize / 64] >> (c % 64) & 1 != 0
    }

    /// Add `c`.
    pub fn insert(&mut self, c: u8) {
        self.words[c as usize / 64] |= 1u64 << (c % 64);
    }

    /// Remove `c`.
    pub fn remove(&mut self, c: u8) {
        self.words[c as usize / 64] &= !(1u64 << (c % 64));
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The lowest member.
    pub fn first(&self) -> Option<u8> {
        self.iter().next()
    }

    /// Ascending iteration.
    pub fn iter(&self) -> ColorIter {
        ColorIter {
            words: self.words,
            word_idx: 0,
            current: self.words[0],
        }
    }
}

/// Ascending iterator over a [`ColorSet`].
pub struct ColorIter {
    words: [u64; 4],
    word_idx: usize,
    current: u64,
}

impl Iterator for ColorIter {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= 4 {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.word_idx * 64 + bit) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = OrderedIndexSet::new(200);
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7), "double insert reports absent");
        assert!(s.insert(130));
        assert!(s.contains(7));
        assert!(s.contains(130));
        assert!(!s.contains(8));
        assert_eq!(s.len(), 2);
        assert!(s.remove(7));
        assert!(!s.remove(7), "double remove reports absent");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pop_order_is_ascending() {
        let mut s = OrderedIndexSet::new(300);
        for i in [250u32, 3, 64, 65, 0, 199] {
            s.insert(i);
        }
        let mut got = Vec::new();
        while let Some(m) = s.pop_min() {
            got.push(m);
        }
        assert_eq!(got, vec![0, 3, 64, 65, 199, 250]);
    }

    #[test]
    fn cursor_pulls_back_on_lower_insert() {
        let mut s = OrderedIndexSet::new(300);
        s.insert(280);
        assert_eq!(s.pop_min(), Some(280)); // cursor now at the top
        s.insert(5);
        assert_eq!(s.peek_min(), Some(5));
        s.insert(1);
        assert_eq!(s.pop_min(), Some(1));
        assert_eq!(s.pop_min(), Some(5));
        assert_eq!(s.pop_min(), None);
    }

    #[test]
    fn matches_btreeset_under_random_ops() {
        // Deterministic LCG-driven fuzz against the structure this
        // replaces.
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut dense = OrderedIndexSet::new(512);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for _ in 0..10_000 {
            let i = (rng() % 512) as u32;
            match rng() % 4 {
                0 => assert_eq!(dense.insert(i), model.insert(i)),
                1 => assert_eq!(dense.remove(i), model.remove(&i)),
                2 => assert_eq!(dense.peek_min(), model.iter().next().copied()),
                _ => assert_eq!(dense.contains(i), model.contains(&i)),
            }
            assert_eq!(dense.len(), model.len());
        }
        let all: Vec<u32> = dense.iter().collect();
        let want: Vec<u32> = model.iter().copied().collect();
        assert_eq!(all, want, "iteration is ascending and complete");
    }

    #[test]
    fn color_set_matches_btreeset() {
        let mut dense = ColorSet::below(96);
        let mut model: BTreeSet<u8> = (0..96).collect();
        for c in [3u8, 90, 0, 95, 64, 63] {
            dense.remove(c);
            model.remove(&c);
        }
        dense.insert(90);
        model.insert(90);
        assert_eq!(dense.first(), model.iter().next().copied());
        let got: Vec<u8> = dense.iter().collect();
        let want: Vec<u8> = model.iter().copied().collect();
        assert_eq!(got, want);
        assert!(!ColorSet::below(0).iter().next().is_some());
        assert!(ColorSet::below(0).is_empty());
    }
}
