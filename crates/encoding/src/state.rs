//! The decoder-state dataflow.
//!
//! Decoding is dynamic — the hardware updates `last_reg` as instructions
//! stream past — but encodability is a static property: at every register
//! field the encoder must know a *unique* value `last_reg` will hold on
//! every path reaching it. This module computes that knowledge as a
//! forward dataflow over the CFG with the three-point lattice
//!
//! ```text
//!        Top  (unknown / paths disagree — needs a repair)
//!       /   \
//!  Known(0) Known(1) …
//!       \   /
//!        Bot  (unreached)
//! ```

use dra_ir::{AccessOrder, Function, Inst, RegClass};
use std::collections::VecDeque;

/// The concrete decoder state: `last_reg` plus pending delayed assignments
/// from `set_last_reg(value, delay)` instructions.
///
/// `value = None` models an unknown `last_reg` (power-on, post-call, or a
/// join of disagreeing paths). Both the static encoder/repair walk and the
/// dynamic trace decoder drive this same machine, which is what guarantees
/// they agree on delayed-set semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LastReg {
    /// Current `last_reg` (None = unknown).
    pub value: Option<u8>,
    pending: VecDeque<(u8, u8)>,
}

impl LastReg {
    /// A decoder whose `last_reg` is known to be `v`.
    pub fn known(v: u8) -> Self {
        LastReg {
            value: Some(v),
            pending: VecDeque::new(),
        }
    }

    /// Execute `set_last_reg(value, delay)`.
    pub fn set(&mut self, value: u8, delay: u8) {
        if delay == 0 {
            self.value = Some(value);
            self.pending.clear();
        } else {
            self.pending.push_back((value, delay));
        }
    }

    /// `last_reg` as seen by the next field to decode.
    pub fn current(&self) -> Option<u8> {
        self.value
    }

    /// Account one decoded field: update `last_reg` to the decoded register
    /// (pass `None` for reserved direct codes, which leave it untouched),
    /// then fire any pending delayed assignment whose delay has elapsed.
    pub fn after_field(&mut self, decoded_updates_last: Option<u8>) {
        if let Some(r) = decoded_updates_last {
            self.value = Some(r);
        }
        // Each pending set lands when its own delay elapses, in queue
        // order among ties. Repaired code queues at most one set at a
        // time, but a faulty stream may queue several with arbitrary
        // delays — landing must not depend on the front entry's delay,
        // or a set stuck behind a slower one underflows its counter.
        let mut rest = VecDeque::with_capacity(self.pending.len());
        for (v, d) in self.pending.drain(..) {
            if d <= 1 {
                self.value = Some(v);
            } else {
                rest.push_back((v, d - 1));
            }
        }
        self.pending = rest;
    }

    /// True while a delayed `set_last_reg` is queued but has not landed.
    ///
    /// A block that ends with a pending set has a decoder state the
    /// instruction-granularity dataflow cannot name; replay clients (the
    /// symbolic checker) must widen such an exit to `Top`.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Scramble the state (a call transferred control to an unknown
    /// instruction stream).
    pub fn clobber(&mut self) {
        self.value = None;
        self.pending.clear();
    }
}

/// Abstract value of the decoder's `last_reg` for one register class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeState {
    /// No path reaches this point (initial value).
    Bot,
    /// Every path agrees: `last_reg` holds this register number.
    Known(u8),
    /// Paths disagree, or a call clobbered the state.
    Top,
}

impl DecodeState {
    /// Lattice meet (used at control-flow joins).
    pub fn meet(self, other: DecodeState) -> DecodeState {
        match (self, other) {
            (DecodeState::Bot, x) | (x, DecodeState::Bot) => x,
            (DecodeState::Known(a), DecodeState::Known(b)) if a == b => DecodeState::Known(a),
            _ => DecodeState::Top,
        }
    }
}

/// Apply one block's instructions to an incoming state, yielding the state
/// at block exit. `set_last_reg` instructions are honored; a `Call`
/// clobbers the state (the callee's instruction stream leaves `last_reg`
/// unpredictable); any other instruction with register accesses of the
/// class leaves `last_reg` holding its final access.
pub fn transfer_block(f: &Function, block: usize, class: RegClass, inp: DecodeState) -> DecodeState {
    transfer_block_ordered(f, block, class, AccessOrder::SrcsThenDst, inp)
}

/// [`transfer_block`] under an explicit access order.
pub fn transfer_block_ordered(
    f: &Function,
    block: usize,
    class: RegClass,
    order: AccessOrder,
    inp: DecodeState,
) -> DecodeState {
    let mut st = inp;
    for inst in &f.blocks[block].insts {
        st = transfer_inst_ordered(f, inst, class, order, st);
    }
    st
}

/// Apply a single instruction to the decode state (paper access order).
pub fn transfer_inst(f: &Function, inst: &Inst, class: RegClass, inp: DecodeState) -> DecodeState {
    transfer_inst_ordered(f, inst, class, AccessOrder::SrcsThenDst, inp)
}

/// [`transfer_inst`] under an explicit access order.
pub fn transfer_inst_ordered(
    f: &Function,
    inst: &Inst,
    class: RegClass,
    order: AccessOrder,
    inp: DecodeState,
) -> DecodeState {
    match inst {
        Inst::SetLastReg {
            class: c, value, ..
        } if *c == class => {
            // The delayed variant also ends with `last_reg = value` once
            // the delay elapses — and the delay is always consumed by the
            // very next instruction's fields, so at instruction
            // granularity the final state is simply `value`. (Any fields
            // decoded before the delay elapses are checked against the
            // pre-assignment state by the verifier.)
            DecodeState::Known(*value)
        }
        Inst::Call { .. } => {
            // Fields of the call itself decode before the jump; afterwards
            // the callee's stream leaves last_reg unknown.
            DecodeState::Top
        }
        _ => {
            let accesses: Vec<u8> = class_accesses_ordered(f, inst, class, order);
            match accesses.last() {
                Some(&r) => DecodeState::Known(r),
                None => inp,
            }
        }
    }
}

/// The physical register numbers this instruction accesses, filtered to
/// `class`, in the paper's nominal access order.
///
/// # Panics
///
/// Panics if the instruction still holds virtual registers of the class —
/// encoding requires allocated code.
pub fn class_accesses(f: &Function, inst: &Inst, class: RegClass) -> Vec<u8> {
    class_accesses_ordered(f, inst, class, AccessOrder::SrcsThenDst)
}

/// [`class_accesses`] under an explicit access order.
///
/// # Panics
///
/// As [`class_accesses`].
pub fn class_accesses_ordered(
    f: &Function,
    inst: &Inst,
    class: RegClass,
    order: AccessOrder,
) -> Vec<u8> {
    inst.accesses_in(order)
        .into_iter()
        .filter(|&r| f.class_of(r) == class)
        .map(|r| r.expect_phys().number())
        .collect()
}

/// Compute the decode state at the entry of every block (fixpoint).
///
/// The entry block starts at `Top`: a function may be reached from any call
/// site, so `last_reg` is unknown on entry.
pub fn block_entry_states(f: &Function, class: RegClass) -> Vec<DecodeState> {
    block_entry_states_ordered(f, class, AccessOrder::SrcsThenDst)
}

/// [`block_entry_states`] under an explicit access order.
///
/// Worklist fixpoint with memoized per-block out-states: each block's
/// transfer runs once up front and again only when its in-state changes,
/// instead of once per predecessor edge per sweep. The transfer functions
/// are monotone on the finite three-point lattice, so this reaches the
/// same least fixpoint as the naive Jacobi iteration (pinned against
/// [`block_entry_states_reference_ordered`] by a property test).
pub fn block_entry_states_ordered(
    f: &Function,
    class: RegClass,
    order: AccessOrder,
) -> Vec<DecodeState> {
    let nb = f.num_blocks();
    let entry = f.entry.index();
    let mut in_st = vec![DecodeState::Bot; nb];
    in_st[entry] = DecodeState::Top;

    // Memoized out-states for *every* block, including CFG-unreachable
    // ones: the reference iteration meets in each predecessor's
    // `transfer(in)` unconditionally, so an unreachable predecessor still
    // contributes `transfer(Bot)`.
    let mut out_st: Vec<DecodeState> = (0..nb)
        .map(|bi| transfer_block_ordered(f, bi, class, order, in_st[bi]))
        .collect();

    let rpo = f.reverse_postorder();
    let mut in_queue = vec![false; nb];
    let mut queue: VecDeque<usize> = rpo
        .iter()
        .map(|b| {
            in_queue[b.index()] = true;
            b.index()
        })
        .collect();
    while let Some(bi) = queue.pop_front() {
        in_queue[bi] = false;
        let mut inp = if bi == entry {
            DecodeState::Top
        } else {
            DecodeState::Bot
        };
        for &p in &f.blocks[bi].preds {
            inp = inp.meet(out_st[p.index()]);
        }
        if inp == in_st[bi] {
            continue;
        }
        in_st[bi] = inp;
        let new_out = transfer_block_ordered(f, bi, class, order, inp);
        if new_out == out_st[bi] {
            continue;
        }
        out_st[bi] = new_out;
        for &s in &f.blocks[bi].succs {
            let si = s.index();
            if !in_queue[si] {
                in_queue[si] = true;
                queue.push_back(si);
            }
        }
    }
    in_st
}

/// The original sweep-until-stable fixpoint of [`block_entry_states`],
/// kept as the oracle the memoized worklist is property-tested against.
/// O(blocks · insts) per sweep — use [`block_entry_states_ordered`]
/// outside of tests.
pub fn block_entry_states_reference_ordered(
    f: &Function,
    class: RegClass,
    order: AccessOrder,
) -> Vec<DecodeState> {
    let nb = f.num_blocks();
    let mut in_st = vec![DecodeState::Bot; nb];
    in_st[f.entry.index()] = DecodeState::Top;

    let rpo = f.reverse_postorder();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let bi = b.index();
            let mut inp = if b == f.entry {
                DecodeState::Top
            } else {
                DecodeState::Bot
            };
            for &p in &f.blocks[bi].preds {
                let pout =
                    transfer_block_ordered(f, p.index(), class, order, in_st[p.index()]);
                inp = inp.meet(pout);
            }
            if inp != in_st[bi] {
                in_st[bi] = inp;
                changed = true;
            }
        }
    }
    in_st
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_ir::{BlockId, Cond, FunctionBuilder, Inst, PReg};

    #[test]
    fn meet_lattice_laws() {
        use DecodeState::*;
        assert_eq!(Bot.meet(Known(3)), Known(3));
        assert_eq!(Known(3).meet(Known(3)), Known(3));
        assert_eq!(Known(3).meet(Known(4)), Top);
        assert_eq!(Top.meet(Known(3)), Top);
        assert_eq!(Bot.meet(Bot), Bot);
        // Commutativity on a sample.
        assert_eq!(Known(1).meet(Top), Top.meet(Known(1)));
    }

    #[test]
    fn straight_line_state_tracks_last_access() {
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Mov {
            dst: PReg(3).into(),
            src: PReg(1).into(),
        });
        b.ret(None);
        let f = b.finish();
        let out = transfer_block(&f, 0, RegClass::Int, DecodeState::Top);
        assert_eq!(out, DecodeState::Known(3), "dst decoded last");
    }

    #[test]
    fn set_last_reg_fixes_state() {
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 7,
            delay: 0,
        });
        b.ret(None);
        let f = b.finish();
        let out = transfer_block(&f, 0, RegClass::Int, DecodeState::Top);
        assert_eq!(out, DecodeState::Known(7));
    }

    #[test]
    fn call_clobbers_state() {
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Mov {
            dst: PReg(2).into(),
            src: PReg(1).into(),
        });
        b.call(0, vec![], None);
        b.ret(None);
        let f = b.finish();
        let out = transfer_block(&f, 0, RegClass::Int, DecodeState::Known(0));
        assert_eq!(out, DecodeState::Top);
    }

    #[test]
    fn other_class_set_last_reg_ignored() {
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::SetLastReg {
            class: RegClass::Float,
            value: 7,
            delay: 0,
        });
        b.ret(None);
        let f = b.finish();
        let out = transfer_block(&f, 0, RegClass::Int, DecodeState::Known(2));
        assert_eq!(out, DecodeState::Known(2));
    }

    /// Figure 3 of the paper: two predecessors leave different last
    /// registers; the join sees `Top`.
    #[test]
    fn figure3_multi_path_inconsistency() {
        let mut b = FunctionBuilder::new("fig3");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Cond::Eq, PReg(0).into(), PReg(0).into(), t, e);
        b.switch_to(t);
        b.push(Inst::Mov {
            dst: PReg(1).into(),
            src: PReg(0).into(),
        }); // leaves last_reg = 1
        b.br(j);
        b.switch_to(e);
        b.push(Inst::Mov {
            dst: PReg(2).into(),
            src: PReg(0).into(),
        }); // leaves last_reg = 2
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let states = block_entry_states(&f, RegClass::Int);
        assert_eq!(states[j.index()], DecodeState::Top, "paths disagree");
        assert_eq!(states[t.index()], DecodeState::Known(0), "branch lhs/rhs last");
    }

    #[test]
    fn agreeing_paths_stay_known() {
        let mut b = FunctionBuilder::new("f");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Cond::Eq, PReg(0).into(), PReg(0).into(), t, e);
        b.switch_to(t);
        b.push(Inst::Mov {
            dst: PReg(5).into(),
            src: PReg(0).into(),
        });
        b.br(j);
        b.switch_to(e);
        b.push(Inst::Mov {
            dst: PReg(5).into(),
            src: PReg(1).into(),
        });
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let states = block_entry_states(&f, RegClass::Int);
        assert_eq!(states[j.index()], DecodeState::Known(5));
    }

    #[test]
    fn loop_backedge_reaches_fixpoint() {
        // A loop whose body ends on the same register the header expects.
        let mut b = FunctionBuilder::new("f");
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.push(Inst::Mov {
            dst: PReg(1).into(),
            src: PReg(0).into(),
        });
        b.br(h);
        b.switch_to(h);
        b.cond_br(Cond::Lt, PReg(1).into(), PReg(2).into(), body, ex);
        b.switch_to(body);
        b.push(Inst::Mov {
            dst: PReg(1).into(),
            src: PReg(2).into(),
        }); // leaves 1
        b.br(h);
        b.switch_to(ex);
        b.ret(None);
        let f = b.finish();
        let states = block_entry_states(&f, RegClass::Int);
        // Entry leaves last=1 (mov dst); body leaves last=1: header agrees.
        assert_eq!(states[h.index()], DecodeState::Known(1));
        assert_eq!(states[BlockId(0).index()], DecodeState::Top, "entry unknown");
    }

    #[test]
    fn entry_block_is_top() {
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        let f = b.finish();
        let states = block_entry_states(&f, RegClass::Int);
        assert_eq!(states[0], DecodeState::Top);
    }

    /// `set(value, 0)` overtakes an in-flight delayed set: the pending
    /// queue is dropped, so the stale delayed value must never land.
    #[test]
    fn immediate_set_clears_pending_delayed_sets() {
        let mut l = LastReg::known(1);
        l.set(9, 2); // delayed: would land after two fields
        l.set(3, 0); // immediate set overtakes it
        assert_eq!(l.current(), Some(3));
        // However many fields later, 9 must never surface.
        for _ in 0..4 {
            l.after_field(None);
            assert_eq!(l.current(), Some(3), "stale delayed set fired");
        }
        // Contrast: without the immediate set the delayed one does land.
        let mut l = LastReg::known(1);
        l.set(9, 2);
        l.after_field(None);
        assert_eq!(l.current(), Some(1), "delay not yet elapsed");
        l.after_field(None);
        assert_eq!(l.current(), Some(9), "delayed set lands on time");
    }

    /// An immediate set also drops *multiple* queued delayed sets.
    #[test]
    fn immediate_set_clears_whole_queue() {
        let mut l = LastReg::default();
        l.set(5, 1);
        l.set(6, 3);
        l.set(2, 0);
        for _ in 0..5 {
            l.after_field(None);
        }
        assert_eq!(l.current(), Some(2));
    }

    /// The memoized worklist computes exactly what the reference sweep
    /// does, including for blocks unreachable from the entry (whose
    /// `transfer(Bot)` output still feeds reachable successors' meets).
    #[test]
    fn memoized_entry_states_match_reference_with_unreachable_block() {
        let mut b = FunctionBuilder::new("f");
        let dead = b.new_block();
        let j = b.new_block();
        b.push(Inst::Mov {
            dst: PReg(4).into(),
            src: PReg(0).into(),
        });
        b.br(j);
        b.switch_to(dead);
        b.push(Inst::Mov {
            dst: PReg(7).into(),
            src: PReg(0).into(),
        });
        b.ret(None);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        for order in [AccessOrder::SrcsThenDst, AccessOrder::DstThenSrcs] {
            let fast = block_entry_states_ordered(&f, RegClass::Int, order);
            let slow = block_entry_states_reference_ordered(&f, RegClass::Int, order);
            assert_eq!(fast, slow, "order {order:?}");
        }
        assert_eq!(
            block_entry_states(&f, RegClass::Int)[dead.index()],
            DecodeState::Bot,
            "unreachable block stays at Bot"
        );
    }
}
