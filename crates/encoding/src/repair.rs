//! The `set_last_reg` insertion (repair) pass.
//!
//! Walks each block with the decode state from [`crate::state`] and inserts
//! `set_last_reg(value, delay)` (Section 2.3) wherever
//!
//! * the state is unknown (`Top`) at a register access — function entry,
//!   control-flow join with disagreeing predecessors, or after a call — or
//! * the difference to the next accessed register falls outside
//!   `[0, DiffN)` (Section 2.2.1).
//!
//! Repairs always target the *about-to-be-accessed* register, so the
//! repaired field encodes difference 0, and the `delay` operand counts the
//! fields of the same instruction that decode before the assignment takes
//! effect — exactly the paper's `set_last_reg(2, 1)` example.

use crate::state::{block_entry_states_ordered, class_accesses_ordered, transfer_block_ordered, DecodeState, LastReg};
use dra_adjgraph::DiffParams;
use dra_ir::{AccessOrder, Function, Inst, Program, RegClass};
use std::collections::BTreeSet;

/// Configuration of the encoder for one register class.
#[derive(Clone, Debug)]
pub struct EncodingConfig {
    /// `RegN` / `DiffN` of the scheme.
    pub params: DiffParams,
    /// Register class being encoded.
    pub class: RegClass,
    /// Register numbers reserved for direct encoding (special-purpose
    /// registers, Section 9.2). Accesses to them occupy a reserved code
    /// point and do **not** update `last_reg`.
    pub reserved: BTreeSet<u8>,
    /// Nominal within-instruction access order (Section 9.4 ablation;
    /// encoder and decoder must agree on it).
    pub order: AccessOrder,
    /// Where multi-path-inconsistency repairs are placed (ablation D1).
    pub placement: RepairPlacement,
}

impl EncodingConfig {
    /// A configuration with no reserved registers.
    pub fn new(params: DiffParams) -> Self {
        EncodingConfig {
            params,
            class: RegClass::Int,
            reserved: BTreeSet::new(),
            order: AccessOrder::SrcsThenDst,
            placement: RepairPlacement::AtJoinEntry,
        }
    }

    /// Use a different within-instruction access order (ablation D5).
    pub fn with_order(mut self, order: AccessOrder) -> Self {
        self.order = order;
        self
    }

    /// Place join repairs at predecessor exits instead of join entries
    /// (ablation D1).
    pub fn with_placement(mut self, placement: RepairPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Reserve `regs` for direct encoding.
    ///
    /// # Panics
    ///
    /// Panics if reserving them leaves no differential code points
    /// (`DiffN` must stay positive after subtracting the reserved codes).
    pub fn with_reserved(mut self, regs: impl IntoIterator<Item = u8>) -> Self {
        self.reserved = regs.into_iter().collect();
        assert!(
            (self.reserved.len() as u16) < self.params.diff_n(),
            "reserving {} codes exhausts DiffN = {}",
            self.reserved.len(),
            self.params.diff_n()
        );
        self
    }

    /// Differences usable after reserving code points:
    /// `DiffN - |reserved|` (Section 9.2's `DiffN < 2^DiffW`).
    pub fn effective_diff_n(&self) -> u16 {
        self.params.diff_n() - self.reserved.len() as u16
    }

    /// Is the `prev -> cur` transition encodable without repair?
    pub fn in_range(&self, prev: u8, cur: u8) -> bool {
        self.params.encode(prev, cur) < self.effective_diff_n()
    }
}

/// Where a multi-path-inconsistency repair is inserted (Section 2.3: "we
/// can insert a set_last_reg at the entry point of BB3. Alternatively, we
/// can insert such instruction at the end of one or more predecessors").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepairPlacement {
    /// One `set_last_reg` at the join's entry — always works, executes on
    /// every entry to the join (the paper's cost model and our default).
    #[default]
    AtJoinEntry,
    /// `set_last_reg` at the end of each *disagreeing* predecessor —
    /// possibly more static instructions, but paths that already agree pay
    /// nothing. Falls back to entry placement when a predecessor's
    /// terminator itself carries register fields or feeds other
    /// successors.
    AtPredecessors,
}

/// Statistics from one repair run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// `set_last_reg` instructions inserted.
    pub inserted: usize,
    /// How many were forced by out-of-range differences.
    pub out_of_range: usize,
    /// How many were forced by unknown state (joins, entry, calls).
    pub inconsistency: usize,
}

/// Insert the `set_last_reg` instructions that make `f` decodable.
///
/// The function must be fully physical for `cfg.class`. Idempotent: a
/// second run inserts nothing.
pub fn insert_set_last_reg(f: &mut Function, cfg: &EncodingConfig) -> RepairStats {
    let mut stats = RepairStats::default();
    if cfg.placement == RepairPlacement::AtPredecessors {
        stats.inserted += repair_at_predecessors(f, cfg, &mut stats.inconsistency);
    }
    let entry_states = block_entry_states_ordered(f, cfg.class, cfg.order);

    #[allow(clippy::needless_range_loop)] // `f.blocks[bi]` is mutated below
    for bi in 0..f.blocks.len() {
        let mut last = match entry_states[bi] {
            DecodeState::Known(v) => LastReg::known(v),
            _ => LastReg::default(),
        };
        let old = std::mem::take(&mut f.blocks[bi].insts);
        let mut new_insts = Vec::with_capacity(old.len());
        for inst in old {
            match &inst {
                Inst::SetLastReg { class, value, delay } if *class == cfg.class => {
                    last.set(*value, *delay);
                    new_insts.push(inst);
                    continue;
                }
                _ => {}
            }
            // Repairs for this instruction are accumulated first so that
            // pre-existing delayed sets queue ahead of them (FIFO firing
            // order makes the later push win at the same field boundary).
            let accesses = class_accesses_ordered(f, &inst, cfg.class, cfg.order);
            let mut repairs = Vec::new();
            for (k, &r) in accesses.iter().enumerate() {
                if cfg.reserved.contains(&r) {
                    last.after_field(None);
                    continue;
                }
                let ok = match last.current() {
                    Some(prev) => cfg.in_range(prev, r),
                    None => false,
                };
                if !ok {
                    match last.current() {
                        Some(_) => stats.out_of_range += 1,
                        None => stats.inconsistency += 1,
                    }
                    repairs.push(Inst::SetLastReg {
                        class: cfg.class,
                        value: r,
                        delay: k as u8,
                    });
                    stats.inserted += 1;
                    // The repair fires right before this field decodes.
                    last.value = Some(r);
                }
                last.after_field(Some(r));
            }
            new_insts.extend(repairs);
            if matches!(inst, Inst::Call { .. }) {
                last.clobber();
            }
            new_insts.push(inst);
        }
        f.blocks[bi].insts = new_insts;
    }
    f.recompute_cfg();
    stats
}

/// The `AtPredecessors` pre-pass: for every join whose predecessors
/// disagree, align each eligible disagreeing predecessor to a canonical
/// value by appending a `set_last_reg` before its (field-free, single-
/// successor) terminator. Joins whose predecessors cannot all be aligned
/// are left for the entry-placement walk.
fn repair_at_predecessors(
    f: &mut Function,
    cfg: &EncodingConfig,
    inconsistency: &mut usize,
) -> usize {
    let states = block_entry_states_ordered(f, cfg.class, cfg.order);
    let mut inserted = 0;
    for bi in 0..f.blocks.len() {
        if states[bi] != DecodeState::Top || f.blocks[bi].preds.is_empty() {
            continue;
        }
        // Only worth repairing if the block actually accesses registers.
        let has_access = f.blocks[bi].insts.iter().any(|i| {
            !i.is_set_last_reg() && !class_accesses_ordered(f, i, cfg.class, cfg.order).is_empty()
        });
        if !has_access {
            continue;
        }
        let preds = f.blocks[bi].preds.clone();
        // Out-state of each predecessor.
        let outs: Vec<DecodeState> = preds
            .iter()
            .map(|p| {
                transfer_block_ordered(f, p.index(), cfg.class, cfg.order, states[p.index()])
            })
            .collect();
        // Canonical value: the most common Known out-state.
        let mut counts: std::collections::BTreeMap<u8, usize> = std::collections::BTreeMap::new();
        for o in &outs {
            if let DecodeState::Known(v) = o {
                *counts.entry(*v).or_insert(0) += 1;
            }
        }
        let Some((&canonical, _)) = counts.iter().max_by_key(|(_, &c)| c) else {
            continue;
        };
        // Every disagreeing predecessor must be eligible: a field-free
        // terminator (so the set survives to the block edge) and this join
        // as its only successor (so other paths are not disturbed).
        let disagreeing: Vec<_> = preds
            .iter()
            .zip(&outs)
            .filter(|(_, o)| **o != DecodeState::Known(canonical))
            .map(|(p, _)| *p)
            .collect();
        let eligible = disagreeing.iter().all(|p| {
            let blk = f.block(*p);
            blk.succs.len() == 1
                && blk.insts.last().is_some_and(|term| {
                    class_accesses_ordered(f, term, cfg.class, cfg.order).is_empty()
                })
        });
        if !eligible || disagreeing.is_empty() {
            continue;
        }
        for p in disagreeing {
            let insts = &mut f.blocks[p.index()].insts;
            let at = insts.len() - 1; // before the terminator
            insts.insert(
                at,
                Inst::SetLastReg {
                    class: cfg.class,
                    value: canonical,
                    delay: 0,
                },
            );
            inserted += 1;
            *inconsistency += 1;
        }
    }
    f.recompute_cfg();
    inserted
}

/// Repair every function of a program; returns the summed statistics.
pub fn insert_set_last_reg_program(p: &mut Program, cfg: &EncodingConfig) -> RepairStats {
    let mut total = RepairStats::default();
    for f in &mut p.funcs {
        let s = insert_set_last_reg(f, cfg);
        total.inserted += s.inserted;
        total.out_of_range += s.out_of_range;
        total.inconsistency += s.inconsistency;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;
    use dra_ir::{Cond, FunctionBuilder, Inst, PReg};

    fn mov(dst: u8, src: u8) -> Inst {
        Inst::Mov {
            dst: PReg(dst).into(),
            src: PReg(src).into(),
        }
    }

    #[test]
    fn in_range_code_needs_single_entry_repair() {
        // Accesses 0,1,2,…: all diffs are 1, but the entry state is
        // unknown, so exactly one repair lands before the first access.
        let mut b = FunctionBuilder::new("f");
        b.push(mov(1, 0));
        b.push(mov(2, 1));
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        let stats = insert_set_last_reg(&mut f, &cfg);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.inconsistency, 1);
        verify_function(&f, &cfg).unwrap();
    }

    #[test]
    fn paper_section_2_3_example() {
        // "instruction R1 = R0 + R2 cannot be differential encoded because
        //  the difference between first and second source operands is
        //  larger than 1 (assume DiffN = 2). We can put set_last_reg(2, 1)
        //  in front of this instruction."
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 0,
            delay: 0,
        }); // pin entry state to R0 so only the paper's repair is needed
        b.push(Inst::Bin {
            op: dra_ir::BinOp::Add,
            dst: PReg(1).into(),
            lhs: PReg(0).into(),
            rhs: PReg(2).into(),
        });
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(4, 2));
        let stats = insert_set_last_reg(&mut f, &cfg);
        // The R0->R2 hop needs the paper's repair; the destination R1 then
        // sits 3 hops from R2 (the example elides this) and needs another.
        assert_eq!(stats.out_of_range, 2);
        // The inserted instruction is set_last_reg(2, 1): value 2, delay 1.
        let slr = f
            .iter_insts()
            .filter_map(|i| match i {
                Inst::SetLastReg { value, delay, .. } => Some((*value, *delay)),
                _ => None,
            })
            .nth(1)
            .expect("repair inserted");
        assert_eq!(slr, (2, 1));
        verify_function(&f, &cfg).unwrap();
    }

    #[test]
    fn figure3_join_gets_one_repair() {
        let mut b = FunctionBuilder::new("fig3");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Cond::Eq, PReg(0).into(), PReg(0).into(), t, e);
        b.switch_to(t);
        b.push(mov(1, 0));
        b.br(j);
        b.switch_to(e);
        b.push(mov(2, 0));
        b.br(j);
        b.switch_to(j);
        b.push(mov(3, 2));
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        let stats = insert_set_last_reg(&mut f, &cfg);
        // One for the unknown entry, one at the join.
        assert_eq!(stats.inconsistency, 2);
        let in_join = f.blocks[j.index()]
            .insts
            .iter()
            .filter(|i| i.is_set_last_reg())
            .count();
        assert_eq!(in_join, 1, "join repaired exactly once");
        verify_function(&f, &cfg).unwrap();
    }

    #[test]
    fn call_forces_repair_after_return() {
        let mut b = FunctionBuilder::new("f");
        b.push(mov(1, 0));
        b.call(0, vec![], None);
        b.push(mov(2, 1));
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        let stats = insert_set_last_reg(&mut f, &cfg);
        // Entry repair + post-call repair. (The call has no register
        // fields of its own here.)
        assert_eq!(stats.inserted, 2);
        verify_function(&f, &cfg).unwrap();
    }

    #[test]
    fn idempotent() {
        let mut b = FunctionBuilder::new("f");
        b.push(mov(9, 0));
        b.push(mov(0, 9));
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        let first = insert_set_last_reg(&mut f, &cfg);
        assert!(first.inserted > 0);
        let again = insert_set_last_reg(&mut f, &cfg);
        assert_eq!(again.inserted, 0, "second run inserts nothing");
    }

    #[test]
    fn direct_encoding_needs_no_repairs_beyond_entry() {
        // DiffN == RegN: every difference is in range; even the entry needs
        // nothing because any value decodes correctly… except the state is
        // unknown — but all diffs being legal means in_range always holds
        // only when state is Known. Entry still needs one repair.
        let mut b = FunctionBuilder::new("f");
        b.push(mov(7, 0));
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::direct(8));
        let stats = insert_set_last_reg(&mut f, &cfg);
        assert_eq!(stats.out_of_range, 0);
        assert_eq!(stats.inconsistency, 1);
    }

    #[test]
    fn reserved_register_is_transparent() {
        // r7 reserved (stack-pointer style): accesses to it do not disturb
        // the differential chain 0 -> 1.
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 0,
            delay: 0,
        });
        b.push(Inst::Load {
            dst: PReg(1).into(),
            base: PReg(7).into(),
            offset: 0,
        }); // accesses r7 (reserved), then r1 — diff from r0 is 1: fine
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(8, 4)).with_reserved([7]);
        let stats = insert_set_last_reg(&mut f, &cfg);
        assert_eq!(stats.inserted, 0, "reserved access costs nothing:\n{f}");
        verify_function(&f, &cfg).unwrap();
    }

    #[test]
    fn reserved_shrinks_effective_diffn() {
        let cfg = EncodingConfig::new(DiffParams::new(16, 8)).with_reserved([15]);
        assert_eq!(cfg.effective_diff_n(), 7);
        assert!(cfg.in_range(0, 6));
        assert!(!cfg.in_range(0, 7), "difference 7 now reserved");
    }

    #[test]
    #[should_panic(expected = "exhausts DiffN")]
    fn reserving_everything_rejected() {
        let _ = EncodingConfig::new(DiffParams::new(4, 2)).with_reserved([0, 1]);
    }

    #[test]
    fn program_level_totals() {
        let build = || {
            let mut b = FunctionBuilder::new("g");
            b.push(mov(9, 0));
            b.ret(None);
            b.finish()
        };
        let mut p = Program {
            funcs: vec![build(), build()],
            entry: 0,
        };
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        let stats = insert_set_last_reg_program(&mut p, &cfg);
        // Per function: one entry repair plus one for the 0 -> 9 hop.
        assert_eq!(stats.inserted, 4);
        assert_eq!(stats.inconsistency, 2);
        assert_eq!(stats.out_of_range, 2);
    }
}

#[cfg(test)]
mod placement_tests {
    use super::*;
    use crate::verify::{decode_trace, verify_function};
    use dra_ir::{BlockId, Cond, FunctionBuilder, Inst, PReg};

    fn mov(dst: u8, src: u8) -> Inst {
        Inst::Mov {
            dst: PReg(dst).into(),
            src: PReg(src).into(),
        }
    }

    /// The Figure 3 diamond where both arms end in a plain `br`.
    fn diamond() -> (dra_ir::Function, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("fig3");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 0,
            delay: 0,
        });
        b.cond_br(Cond::Eq, PReg(0).into(), PReg(0).into(), t, e);
        b.switch_to(t);
        b.push(mov(1, 0));
        b.br(j);
        b.switch_to(e);
        b.push(mov(2, 0));
        b.br(j);
        b.switch_to(j);
        b.push(mov(3, 2));
        b.ret(None);
        (b.finish(), t, e, j)
    }

    #[test]
    fn predecessor_placement_repairs_in_the_arms() {
        let (mut f, t, e, j) = diamond();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8))
            .with_placement(RepairPlacement::AtPredecessors);
        insert_set_last_reg(&mut f, &cfg);
        verify_function(&f, &cfg).unwrap();
        // The join itself carries no repair; at least one arm does.
        let in_join = f.blocks[j.index()]
            .insts
            .iter()
            .filter(|i| i.is_set_last_reg())
            .count();
        assert_eq!(in_join, 0, "join repaired at predecessors instead:\n{f}");
        let in_arms: usize = [t, e]
            .iter()
            .map(|b| {
                f.blocks[b.index()]
                    .insts
                    .iter()
                    .filter(|i| i.is_set_last_reg())
                    .count()
            })
            .sum();
        assert!(in_arms >= 1);
        // Both dynamic paths decode.
        decode_trace(&f, &cfg, &[BlockId(0), t, j]).unwrap();
        decode_trace(&f, &cfg, &[BlockId(0), e, j]).unwrap();
    }

    #[test]
    fn entry_and_predecessor_placement_agree_semantically() {
        let (mut fe, t, e, j) = diamond();
        let cfg_e = EncodingConfig::new(DiffParams::new(12, 8));
        insert_set_last_reg(&mut fe, &cfg_e);
        verify_function(&fe, &cfg_e).unwrap();

        let (mut fp, ..) = diamond();
        let cfg_p = EncodingConfig::new(DiffParams::new(12, 8))
            .with_placement(RepairPlacement::AtPredecessors);
        insert_set_last_reg(&mut fp, &cfg_p);
        verify_function(&fp, &cfg_p).unwrap();
        let _ = (t, e, j);
    }

    #[test]
    fn condbr_predecessor_falls_back_to_entry() {
        // A join whose predecessor ends in a CondBr (register fields in
        // the terminator): predecessor placement is ineligible there, so
        // the entry repair must appear.
        let mut b = FunctionBuilder::new("f");
        let l = b.new_block();
        let j = b.new_block();
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 0,
            delay: 0,
        });
        b.push(mov(1, 0));
        b.br(l);
        b.switch_to(l);
        // Loop: leaves different last regs on iteration paths.
        b.push(mov(9, 0));
        b.cond_br(Cond::Lt, PReg(1).into(), PReg(2).into(), l, j);
        b.switch_to(j);
        b.push(mov(3, 2));
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8))
            .with_placement(RepairPlacement::AtPredecessors);
        insert_set_last_reg(&mut f, &cfg);
        verify_function(&f, &cfg).unwrap();
    }

    #[test]
    fn dst_first_access_order_roundtrips() {
        let (mut f, t, e, _) = diamond();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8))
            .with_order(AccessOrder::DstThenSrcs);
        insert_set_last_reg(&mut f, &cfg);
        verify_function(&f, &cfg).unwrap();
        decode_trace(&f, &cfg, &[BlockId(0), t, BlockId(3)]).unwrap();
        decode_trace(&f, &cfg, &[BlockId(0), e, BlockId(3)]).unwrap();
    }

    #[test]
    fn access_order_changes_repair_counts() {
        // dst-first makes `x = op(x, y)` start with the same register it
        // ended the previous def with — orders genuinely differ in cost.
        let build = || {
            let mut b = FunctionBuilder::new("f");
            b.push(Inst::SetLastReg {
                class: RegClass::Int,
                value: 0,
                delay: 0,
            });
            for _ in 0..4 {
                // srcs-first sequence: 0,9,9 (one long hop per inst);
                // dst-first sequence: 9,0,9 (two long hops per inst).
                b.push(Inst::Bin {
                    op: dra_ir::BinOp::Add,
                    dst: PReg(9).into(),
                    lhs: PReg(0).into(),
                    rhs: PReg(9).into(),
                });
            }
            b.ret(None);
            b.finish()
        };
        let params = DiffParams::new(12, 8);
        let mut f1 = build();
        let c1 = EncodingConfig::new(params);
        let s1 = insert_set_last_reg(&mut f1, &c1);
        let mut f2 = build();
        let c2 = EncodingConfig::new(params).with_order(AccessOrder::DstThenSrcs);
        let s2 = insert_set_last_reg(&mut f2, &c2);
        assert_ne!(
            s1.inserted, s2.inserted,
            "orders should cost differently on this pattern"
        );
        verify_function(&f1, &c1).unwrap();
        verify_function(&f2, &c2).unwrap();
    }
}
