//! Bit-accurate encoding and decode verification.
//!
//! [`encode_fields`] produces, for every instruction, the field codes a
//! differential encoder would emit — faithfully modeling the *delayed*
//! `set_last_reg(value, delay)` semantics (the assignment takes effect only
//! after `delay` further register fields have decoded).
//!
//! [`decode_trace`] then plays hardware: it walks a dynamic execution trace
//! (a CFG-valid block sequence), decodes the static field codes as the
//! fetch stream would, and returns the register numbers it reconstructs.
//! Comparing those to the original operands proves multi-path consistency —
//! the property `set_last_reg` insertion exists to establish.
//!
//! # Totality
//!
//! [`decode_trace_fields`] is the *untrusted-input* decode entry: the
//! field stream and the initial `last_reg` state are caller-supplied, so a
//! fault-injection harness (or a fuzzer) can hand it corrupted codes,
//! truncated streams, reordered repairs, or a flipped power-on state. The
//! decoder is **total** over those inputs — every malformed stream is
//! reported as a structured [`DecodeError`] naming the site (block,
//! instruction, and the expected-vs-decoded registers where applicable),
//! never a panic. `tests/fault_injection.rs` pins both halves: a proptest
//! that arbitrary byte streams never panic, and a seeded fault campaign
//! asserting every injected corruption is either detected or provably
//! benign (decode bit-equal to the clean stream).

use crate::repair::EncodingConfig;
use crate::state::{class_accesses_ordered, LastReg};
use dra_ir::{BlockId, Function, Inst, Program};
use std::error::Error;
use std::fmt;

/// A decoding/encoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// A difference fell outside the encodable range.
    OutOfRange {
        /// Block containing the access.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// `last_reg` at the access.
        prev: u8,
        /// Register that could not be reached.
        cur: u8,
    },
    /// A register field was reached with unknown (or corrupt) `last_reg`.
    Inconsistent {
        /// Block containing the access.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// Register the field names in the source of truth.
        reg: u8,
    },
    /// A dynamic trace was not a valid CFG walk.
    BadTrace {
        /// Position in the trace.
        position: usize,
    },
    /// Dynamic decode produced a different register than the code names.
    Mismatch {
        /// Block containing the access.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// Position in the trace (field-access index).
        position: usize,
        /// What the decoder produced.
        decoded: u8,
        /// What the instruction actually names.
        expected: u8,
    },
    /// An instruction's field count disagrees with its register accesses
    /// (a dropped, duplicated, or misaligned stream entry).
    FieldCount {
        /// Block containing the instruction.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// Fields the instruction's accesses require.
        expected: usize,
        /// Fields the stream supplied.
        got: usize,
    },
    /// The field stream ended before the instruction it should encode.
    Truncated {
        /// Block whose stream ran out.
        block: BlockId,
        /// First instruction index with no stream entry.
        inst: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::OutOfRange {
                block,
                inst,
                prev,
                cur,
            } => write!(
                f,
                "difference r{prev} -> r{cur} out of range at {block}:{inst}"
            ),
            DecodeError::Inconsistent { block, inst, reg } => {
                write!(f, "unknown last_reg for r{reg} at {block}:{inst}")
            }
            DecodeError::BadTrace { position } => {
                write!(f, "trace step {position} is not a CFG edge")
            }
            DecodeError::Mismatch {
                block,
                inst,
                position,
                decoded,
                expected,
            } => write!(
                f,
                "decode mismatch at {block}:{inst} (access {position}): got r{decoded}, expected r{expected}"
            ),
            DecodeError::FieldCount {
                block,
                inst,
                expected,
                got,
            } => write!(
                f,
                "field count mismatch at {block}:{inst}: {got} codes for {expected} accesses"
            ),
            DecodeError::Truncated { block, inst } => {
                write!(f, "field stream truncated before {block}:{inst}")
            }
        }
    }
}

impl Error for DecodeError {}

/// Field codes of one instruction (one per class register access).
pub type InstFields = Vec<u16>;

/// Encode one field given the decoder state; mirrors the hardware encoder.
fn encode_one(
    cfg: &EncodingConfig,
    last: &mut LastReg,
    r: u8,
) -> Result<u16, ()> {
    if let Some(idx) = cfg.reserved.iter().position(|&x| x == r) {
        let code = cfg.effective_diff_n() + idx as u16;
        last.after_field(None);
        return Ok(code);
    }
    let prev = last.current().ok_or(())?;
    let d = cfg.params.encode(prev, r);
    if d >= cfg.effective_diff_n() {
        return Err(());
    }
    last.after_field(Some(r));
    Ok(d)
}

/// Decode one field code; the exact inverse of [`encode_one`].
///
/// Total over arbitrary `code` values and `last` states: an out-of-range
/// reserved index or a corrupt `last_reg` (a value `>= RegN`, reachable
/// only through injected faults) returns `None`, never panics.
fn decode_one(cfg: &EncodingConfig, last: &mut LastReg, code: u16) -> Option<u8> {
    if code >= cfg.effective_diff_n() {
        let idx = (code - cfg.effective_diff_n()) as usize;
        let r = *cfg.reserved.iter().nth(idx)?;
        last.after_field(None);
        return Some(r);
    }
    let prev = last.current()?;
    if u16::from(prev) >= cfg.params.reg_n() {
        // A corrupt state (e.g. an injected set_last_reg value) can name a
        // register the modulo adder does not implement; reject it instead
        // of feeding the arithmetic an out-of-domain operand.
        return None;
    }
    let r = cfg.params.decode(prev, code);
    last.after_field(Some(r));
    Some(r)
}

/// Decode one field code against decoder state `last`, advancing the
/// state exactly as the hardware (and [`decode_trace_fields`]) would.
///
/// This is [`decode_one`] made public for external replay clients — the
/// symbolic allocation checker re-walks a function's field stream with
/// its own per-block fixpoint and must consume fields through the *same*
/// decoder the dynamic verifier uses, not a reimplementation. Total over
/// arbitrary `code` values and corrupt `last` states: returns `None`
/// instead of panicking.
pub fn decode_field(cfg: &EncodingConfig, last: &mut LastReg, code: u16) -> Option<u8> {
    decode_one(cfg, last, code)
}

/// Statically encode every instruction of `f`.
///
/// Returns, per block, per instruction, the emitted field codes.
/// `set_last_reg` instructions produce no fields (they are operands of the
/// decode stage itself).
///
/// # Errors
///
/// [`DecodeError::OutOfRange`] / [`DecodeError::Inconsistent`] when the
/// function was not (correctly) repaired first.
pub fn encode_fields(
    f: &Function,
    cfg: &EncodingConfig,
) -> Result<Vec<Vec<InstFields>>, DecodeError> {
    let entry_states = crate::state::block_entry_states_ordered(f, cfg.class, cfg.order);
    let mut out = Vec::with_capacity(f.num_blocks());
    for (b, blk) in f.iter_blocks() {
        let mut last = match entry_states[b.index()] {
            crate::state::DecodeState::Known(v) => LastReg::known(v),
            _ => LastReg::default(),
        };
        let mut block_fields = Vec::with_capacity(blk.insts.len());
        for (ii, inst) in blk.insts.iter().enumerate() {
            block_fields.push(encode_inst(f, cfg, &mut last, inst).map_err(|(prev, cur)| {
                match prev {
                    Some(p) => DecodeError::OutOfRange {
                        block: b,
                        inst: ii,
                        prev: p,
                        cur,
                    },
                    None => DecodeError::Inconsistent {
                        block: b,
                        inst: ii,
                        reg: cur,
                    },
                }
            })?);
        }
        out.push(block_fields);
    }
    Ok(out)
}

/// Encode one instruction's fields; `Err((Some(prev), cur))` = register
/// `cur` is out of range from `prev`, `Err((None, cur))` = `cur` was
/// reached with unknown state.
fn encode_inst(
    f: &Function,
    cfg: &EncodingConfig,
    last: &mut LastReg,
    inst: &Inst,
) -> Result<InstFields, (Option<u8>, u8)> {
    if let Inst::SetLastReg { class, value, delay } = inst {
        if *class == cfg.class {
            last.set(*value, *delay);
        }
        return Ok(Vec::new());
    }
    let mut fields = Vec::new();
    for r in class_accesses_ordered(f, inst, cfg.class, cfg.order) {
        let prev = last.current();
        match encode_one(cfg, last, r) {
            Ok(code) => fields.push(code),
            Err(()) => return Err((prev, r)),
        }
    }
    if matches!(inst, Inst::Call { .. }) {
        last.clobber();
    }
    Ok(fields)
}

/// Verify that `f` is fully decodable (every block, every field).
///
/// # Errors
///
/// The first [`DecodeError`] encountered.
pub fn verify_function(f: &Function, cfg: &EncodingConfig) -> Result<(), DecodeError> {
    encode_fields(f, cfg).map(|_| ())
}

/// Verify every function of a program.
///
/// # Errors
///
/// The first [`DecodeError`] encountered in any function.
pub fn verify_program(p: &Program, cfg: &EncodingConfig) -> Result<(), DecodeError> {
    for f in &p.funcs {
        verify_function(f, cfg)?;
    }
    Ok(())
}

/// Decode a dynamic execution trace and check every register against the
/// original code. `trace` must start at the entry block and follow CFG
/// edges. Returns the decoded register numbers in access order.
///
/// Encodes `f` cleanly first; see [`decode_trace_fields`] to decode a
/// caller-supplied (possibly corrupted) field stream instead.
///
/// # Errors
///
/// [`DecodeError::BadTrace`] for an invalid walk, [`DecodeError::Mismatch`]
/// if hardware decoding would disagree with the source of truth — i.e. the
/// repair pass failed to establish multi-path consistency.
pub fn decode_trace(
    f: &Function,
    cfg: &EncodingConfig,
    trace: &[BlockId],
) -> Result<Vec<u8>, DecodeError> {
    let encoded = encode_fields(f, cfg)?;
    decode_trace_fields(f, cfg, &encoded, trace, LastReg::default())
}

/// [`decode_trace`] over an explicit field stream and initial decoder
/// state: the fault-injection entry point.
///
/// `encoded` is indexed `[block][inst]` like [`encode_fields`]' output but
/// is *not trusted*: corrupt codes, missing or surplus fields, and
/// truncated streams are all reported as errors. `init` is the decoder's
/// power-on `last_reg` (hardware powers on unknown, i.e.
/// `LastReg::default()`; a fault campaign may flip it).
///
/// # Errors
///
/// * [`DecodeError::BadTrace`] — the trace does not start at the entry or
///   takes a non-CFG edge (including block ids outside the function).
/// * [`DecodeError::Truncated`] / [`DecodeError::FieldCount`] — the stream
///   does not cover the instructions the trace executes.
/// * [`DecodeError::Inconsistent`] — a field was reached with unknown or
///   corrupt `last_reg`, or carries an undecodable code.
/// * [`DecodeError::Mismatch`] — decoding succeeded but produced a
///   different register than the instruction names.
pub fn decode_trace_fields(
    f: &Function,
    cfg: &EncodingConfig,
    encoded: &[Vec<InstFields>],
    trace: &[BlockId],
    init: LastReg,
) -> Result<Vec<u8>, DecodeError> {
    if let Some(&first) = trace.first() {
        if first != f.entry {
            return Err(DecodeError::BadTrace { position: 0 });
        }
    }
    let mut last = init;
    let mut decoded_all = Vec::new();
    let mut pos = 0usize;
    for (step, &b) in trace.iter().enumerate() {
        if b.index() >= f.num_blocks() {
            return Err(DecodeError::BadTrace { position: step });
        }
        if step > 0 {
            let prev = trace[step - 1];
            if !f.block(prev).succs.contains(&b) {
                return Err(DecodeError::BadTrace { position: step });
            }
        }
        let stream = encoded
            .get(b.index())
            .ok_or(DecodeError::Truncated { block: b, inst: 0 })?;
        for (ii, inst) in f.block(b).insts.iter().enumerate() {
            if let Inst::SetLastReg { class, value, delay } = inst {
                if *class == cfg.class {
                    last.set(*value, *delay);
                }
                continue;
            }
            let actual = class_accesses_ordered(f, inst, cfg.class, cfg.order);
            let codes = stream
                .get(ii)
                .ok_or(DecodeError::Truncated { block: b, inst: ii })?;
            if codes.len() != actual.len() {
                return Err(DecodeError::FieldCount {
                    block: b,
                    inst: ii,
                    expected: actual.len(),
                    got: codes.len(),
                });
            }
            for (k, &code) in codes.iter().enumerate() {
                let decoded =
                    decode_one(cfg, &mut last, code).ok_or(DecodeError::Inconsistent {
                        block: b,
                        inst: ii,
                        reg: actual[k],
                    })?;
                if decoded != actual[k] {
                    return Err(DecodeError::Mismatch {
                        block: b,
                        inst: ii,
                        position: pos,
                        decoded,
                        expected: actual[k],
                    });
                }
                decoded_all.push(decoded);
                pos += 1;
            }
            if matches!(inst, Inst::Call { .. }) {
                // The callee's stream scrambles last_reg; the repair pass
                // inserted a set_last_reg after the call, which will
                // re-establish it. Model the scramble.
                last.clobber();
            }
        }
    }
    Ok(decoded_all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::insert_set_last_reg;
    use dra_adjgraph::DiffParams;
    use dra_ir::{Cond, FunctionBuilder, PReg, RegClass};

    fn mov(dst: u8, src: u8) -> Inst {
        Inst::Mov {
            dst: PReg(dst).into(),
            src: PReg(src).into(),
        }
    }

    fn cfg_12_8() -> EncodingConfig {
        EncodingConfig::new(DiffParams::new(12, 8))
    }

    #[test]
    fn unrepaired_function_fails_verification() {
        let mut b = FunctionBuilder::new("f");
        b.push(mov(1, 0));
        b.ret(None);
        let f = b.finish();
        assert!(matches!(
            verify_function(&f, &cfg_12_8()),
            Err(DecodeError::Inconsistent { .. })
        ));
    }

    #[test]
    fn out_of_range_error_names_both_registers() {
        // r0 -> r10 with DiffN=8 is unreachable; the diagnostic must name
        // the actual failing pair, not placeholders.
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 0,
            delay: 0,
        });
        b.push(mov(10, 0));
        b.ret(None);
        let f = b.finish();
        match verify_function(&f, &cfg_12_8()) {
            Err(DecodeError::OutOfRange { prev, cur, .. }) => {
                assert_eq!(prev, 0);
                assert_eq!(cur, 10, "the unreachable register is reported");
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn repaired_function_verifies_and_first_field_is_zero() {
        let mut b = FunctionBuilder::new("f");
        b.push(mov(1, 0));
        b.ret(None);
        let mut f = b.finish();
        let cfg = cfg_12_8();
        insert_set_last_reg(&mut f, &cfg);
        let fields = encode_fields(&f, &cfg).unwrap();
        // First inst is the repair (no fields); the mov encodes [0, 1].
        let mov_fields: Vec<u16> = fields[0]
            .iter()
            .find(|v| !v.is_empty())
            .cloned()
            .unwrap();
        assert_eq!(mov_fields, vec![0, 1]);
    }

    #[test]
    fn straight_line_trace_roundtrip() {
        let mut b = FunctionBuilder::new("f");
        b.push(mov(1, 0));
        b.push(mov(5, 1));
        b.push(mov(11, 5)); // diff 6, in range under DiffN=8
        b.ret(None);
        let mut f = b.finish();
        let cfg = cfg_12_8();
        insert_set_last_reg(&mut f, &cfg);
        let decoded = decode_trace(&f, &cfg, &[BlockId(0)]).unwrap();
        assert_eq!(decoded, vec![0, 1, 1, 5, 5, 11]);
    }

    #[test]
    fn both_paths_of_a_diamond_decode_identically() {
        let mut b = FunctionBuilder::new("f");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Cond::Eq, PReg(0).into(), PReg(0).into(), t, e);
        b.switch_to(t);
        b.push(mov(1, 0));
        b.br(j);
        b.switch_to(e);
        b.push(mov(9, 0)); // leaves a very different last_reg
        b.br(j);
        b.switch_to(j);
        b.push(mov(3, 2));
        b.ret(None);
        let mut f = b.finish();
        let cfg = cfg_12_8();
        insert_set_last_reg(&mut f, &cfg);
        verify_function(&f, &cfg).unwrap();
        // Decode along both dynamic paths: each must reproduce the join
        // block's registers exactly.
        let via_t = decode_trace(&f, &cfg, &[BlockId(0), t, j]).unwrap();
        let via_e = decode_trace(&f, &cfg, &[BlockId(0), e, j]).unwrap();
        let tail_t: Vec<u8> = via_t[via_t.len() - 2..].to_vec();
        let tail_e: Vec<u8> = via_e[via_e.len() - 2..].to_vec();
        assert_eq!(tail_t, vec![2, 3]);
        assert_eq!(tail_e, vec![2, 3]);
    }

    #[test]
    fn loop_trace_decodes_repeatedly() {
        let mut b = FunctionBuilder::new("f");
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.push(mov(1, 0));
        b.br(h);
        b.switch_to(h);
        b.cond_br(Cond::Lt, PReg(1).into(), PReg(2).into(), body, ex);
        b.switch_to(body);
        b.push(mov(4, 3));
        b.br(h);
        b.switch_to(ex);
        b.ret(None);
        let mut f = b.finish();
        let cfg = cfg_12_8();
        insert_set_last_reg(&mut f, &cfg);
        let trace = [BlockId(0), h, body, h, body, h, ex];
        decode_trace(&f, &cfg, &trace).unwrap();
    }

    #[test]
    fn delayed_set_last_reg_fields_before_delay_use_old_state() {
        // Hand-build the paper's set_last_reg(2, 1) situation and check
        // the emitted codes: [0 (R0 from R0), 0 (R2 via the delayed set)].
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 0,
            delay: 0,
        });
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 2,
            delay: 1,
        });
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 1,
            delay: 2,
        });
        b.push(Inst::Bin {
            op: dra_ir::BinOp::Add,
            dst: PReg(1).into(),
            lhs: PReg(0).into(),
            rhs: PReg(2).into(),
        });
        b.ret(None);
        let f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(4, 2));
        let fields = encode_fields(&f, &cfg).unwrap();
        let add_fields = &fields[0][3];
        assert_eq!(add_fields, &vec![0, 0, 0], "every field rides a set");
        decode_trace(&f, &cfg, &[BlockId(0)]).unwrap();
    }

    #[test]
    fn reserved_register_encodes_as_direct_code() {
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::SetLastReg {
            class: RegClass::Int,
            value: 0,
            delay: 0,
        });
        b.push(Inst::Load {
            dst: PReg(1).into(),
            base: PReg(7).into(),
            offset: 0,
        });
        b.ret(None);
        let f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(8, 4)).with_reserved([7]);
        let fields = encode_fields(&f, &cfg).unwrap();
        // Load accesses base (r7) then dst (r1): r7 uses the reserved code
        // 3 (= effective_diff_n), r1 encodes diff 1 from r0.
        assert_eq!(fields[0][1], vec![3, 1]);
        let decoded = decode_trace(&f, &cfg, &[BlockId(0)]).unwrap();
        assert_eq!(decoded, vec![7, 1]);
    }

    #[test]
    fn bad_trace_rejected() {
        let mut b = FunctionBuilder::new("f");
        let t = b.new_block();
        b.br(t);
        b.switch_to(t);
        b.ret(None);
        let mut f = b.finish();
        let cfg = cfg_12_8();
        insert_set_last_reg(&mut f, &cfg);
        assert!(matches!(
            decode_trace(&f, &cfg, &[BlockId(0), BlockId(0)]),
            Err(DecodeError::BadTrace { position: 1 })
        ));
        assert!(matches!(
            decode_trace(&f, &cfg, &[t]),
            Err(DecodeError::BadTrace { position: 0 })
        ));
        // Block ids outside the function are a bad walk, not a panic.
        assert!(matches!(
            decode_trace(&f, &cfg, &[BlockId(0), BlockId(99)]),
            Err(DecodeError::BadTrace { position: 1 })
        ));
    }

    #[test]
    fn corrupted_stream_shapes_are_errors_not_panics() {
        let mut b = FunctionBuilder::new("f");
        b.push(mov(1, 0));
        b.push(mov(5, 1));
        b.ret(None);
        let mut f = b.finish();
        let cfg = cfg_12_8();
        insert_set_last_reg(&mut f, &cfg);
        let clean = encode_fields(&f, &cfg).unwrap();
        let trace = [BlockId(0)];

        // Truncated: stream ends before the first field-bearing inst.
        let mut cut = clean.clone();
        cut[0].truncate(1);
        assert!(matches!(
            decode_trace_fields(&f, &cfg, &cut, &trace, LastReg::default()),
            Err(DecodeError::Truncated { .. })
        ));

        // Surplus field: the old decoder indexed past `actual` and
        // panicked here.
        let mut fat = clean.clone();
        for codes in fat[0].iter_mut() {
            if !codes.is_empty() {
                codes.push(0);
                break;
            }
        }
        assert!(matches!(
            decode_trace_fields(&f, &cfg, &fat, &trace, LastReg::default()),
            Err(DecodeError::FieldCount { .. })
        ));

        // Missing block stream entirely.
        let empty: Vec<Vec<InstFields>> = Vec::new();
        assert!(matches!(
            decode_trace_fields(&f, &cfg, &empty, &trace, LastReg::default()),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_initial_state_is_detected_or_benign() {
        let mut b = FunctionBuilder::new("f");
        b.push(mov(1, 0));
        b.ret(None);
        let mut f = b.finish();
        let cfg = cfg_12_8();
        insert_set_last_reg(&mut f, &cfg);
        let clean = encode_fields(&f, &cfg).unwrap();
        let want = decode_trace(&f, &cfg, &[BlockId(0)]).unwrap();
        // Every possible power-on state: the repair pass established the
        // entry state explicitly, so decode is state-independent here —
        // and a state outside RegN must fail cleanly, not panic.
        for v in 0..=u8::MAX {
            match decode_trace_fields(&f, &cfg, &clean, &[BlockId(0)], LastReg::known(v)) {
                Ok(decoded) => assert_eq!(decoded, want),
                Err(e) => panic!("flipped entry state {v} not benign: {e}"),
            }
        }
    }

    #[test]
    fn error_display() {
        let e = DecodeError::OutOfRange {
            block: BlockId(1),
            inst: 2,
            prev: 3,
            cur: 9,
        };
        assert!(format!("{e}").contains("out of range"));
        let m = DecodeError::Mismatch {
            block: BlockId(0),
            inst: 4,
            position: 7,
            decoded: 1,
            expected: 2,
        };
        let text = format!("{m}");
        assert!(text.contains("got r1") && text.contains("expected r2"));
    }
}
