//! # dra-encoding — the differential register encoder/decoder
//!
//! Implements Section 2 of the paper end to end:
//!
//! * the decode-state dataflow that determines, at every program point,
//!   what the hardware's `last_reg` register holds ([`state`]);
//! * the repair pass that inserts `set_last_reg(value, delay)` pseudo-
//!   instructions wherever a difference falls out of range or control-flow
//!   paths disagree ([`repair`]);
//! * a bit-accurate encoder and a dynamic-trace decoder used to verify that
//!   decoding along *any* execution path reproduces the original register
//!   numbers ([`verify`]);
//! * the Section 2.1 hardware cost model for the modulo adders
//!   ([`hardware`]).
//!
//! ```
//! use dra_adjgraph::DiffParams;
//! use dra_encoding::{insert_set_last_reg, verify_function, EncodingConfig};
//! use dra_ir::{FunctionBuilder, Inst, PReg};
//!
//! // r0 -> r10 is out of range under RegN=12, DiffN=8: a repair appears.
//! let mut b = FunctionBuilder::new("f");
//! b.push(Inst::Mov { dst: PReg(10).into(), src: PReg(0).into() });
//! b.ret(None);
//! let mut f = b.finish();
//! let cfg = EncodingConfig::new(DiffParams::new(12, 8));
//! let stats = insert_set_last_reg(&mut f, &cfg);
//! assert!(stats.inserted > 0);
//! verify_function(&f, &cfg).expect("function decodes consistently");
//! ```

pub mod binary;
pub mod hardware;
pub mod repair;
pub mod state;
pub mod verify;

pub use binary::{assemble_function, disassemble_trace, AssembledFunction, BinaryError};
pub use repair::{insert_set_last_reg, insert_set_last_reg_program, EncodingConfig, RepairPlacement, RepairStats};
pub use state::{
    block_entry_states, block_entry_states_ordered, block_entry_states_reference_ordered,
    transfer_block, DecodeState, LastReg,
};
pub use verify::{
    decode_field, decode_trace, decode_trace_fields, encode_fields, verify_function,
    verify_program, DecodeError, InstFields,
};
