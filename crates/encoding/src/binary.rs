//! Whole-function binary emission and bit-level decoding.
//!
//! Combines the field encoder with `dra-isa`'s word assembler: a function
//! becomes an actual word stream in which every register field holds a
//! differential code. [`disassemble_trace`] then plays the full hardware
//! front end — it walks a dynamic block trace *reading only the bits*,
//! reconstructs every instruction boundary from the opcodes, runs the
//! `last_reg` machine over the decoded fields, and returns the register
//! numbers the datapath would see. Matching them against the IR closes the
//! loop from compiler output to fetch stream.

use crate::repair::EncodingConfig;
use crate::state::{class_accesses_ordered, DecodeState, LastReg};
use crate::verify::{encode_fields, DecodeError};
use dra_ir::{BlockId, Function, Inst};
use dra_isa::{decode_inst, encode_inst, AsmError, IsaGeometry};
use std::error::Error;
use std::fmt;

/// A fully assembled function image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssembledFunction {
    /// The word stream (u16 halves; LEAF32 words occupy two).
    pub words: Vec<u16>,
    /// Word offset of each block's first instruction.
    pub block_offsets: Vec<usize>,
    /// Instruction count per block (for boundary-free iteration).
    pub insts_per_block: Vec<usize>,
}

impl AssembledFunction {
    /// Image size in bits.
    pub fn size_bits(&self) -> u64 {
        self.words.len() as u64 * 16
    }
}

/// Assembly pipeline errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinaryError {
    /// The differential field encoder failed (unrepaired function).
    Encode(DecodeError),
    /// Word assembly failed.
    Asm(AsmError),
    /// Bit-level decode disagreed with the source of truth.
    Mismatch {
        /// Block where the disagreement surfaced.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
    },
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::Encode(e) => write!(f, "field encoding: {e}"),
            BinaryError::Asm(e) => write!(f, "assembly: {e}"),
            BinaryError::Mismatch { block, inst } => {
                write!(f, "bit-level decode mismatch at {block}:{inst}")
            }
        }
    }
}

impl Error for BinaryError {}

impl From<DecodeError> for BinaryError {
    fn from(e: DecodeError) -> Self {
        BinaryError::Encode(e)
    }
}

impl From<AsmError> for BinaryError {
    fn from(e: AsmError) -> Self {
        BinaryError::Asm(e)
    }
}

/// Assemble a (repaired, fully physical) function with differential
/// register fields.
///
/// # Errors
///
/// [`BinaryError::Encode`] if the function is not decodable (run
/// [`crate::insert_set_last_reg`] first), [`BinaryError::Asm`] if a field
/// code exceeds the geometry.
pub fn assemble_function(
    f: &Function,
    cfg: &EncodingConfig,
    geom: &IsaGeometry,
) -> Result<AssembledFunction, BinaryError> {
    let fields = encode_fields(f, cfg)?;
    let mut words = Vec::new();
    let mut block_offsets = Vec::with_capacity(f.num_blocks());
    let mut insts_per_block = Vec::with_capacity(f.num_blocks());
    for (b, blk) in f.iter_blocks() {
        block_offsets.push(words.len());
        insts_per_block.push(blk.insts.len());
        for (ii, inst) in blk.insts.iter().enumerate() {
            let w = encode_inst(inst, geom, &fields[b.index()][ii])?;
            words.extend(w);
        }
    }
    Ok(AssembledFunction {
        words,
        block_offsets,
        insts_per_block,
    })
}

/// Decode a dynamic block trace **from the bits alone** and return the
/// register numbers the hardware would hand the datapath, in access order.
///
/// The decoder sees: the word stream, the block offset table (what a
/// branch unit knows), and the trace. Instruction boundaries come from the
/// opcodes; register numbers from the `last_reg` machine.
///
/// # Errors
///
/// [`BinaryError`] on malformed streams; [`BinaryError::Mismatch`] when the
/// reconstruction disagrees with the IR (which would mean the compiler
/// emitted an inconsistent binary).
pub fn disassemble_trace(
    af: &AssembledFunction,
    f: &Function,
    cfg: &EncodingConfig,
    geom: &IsaGeometry,
    trace: &[BlockId],
) -> Result<Vec<u8>, BinaryError> {
    let mut last = LastReg::default();
    // Warm-start convention: the verifier's entry state is Top, and the
    // first field of the entry block always rides behind a repair, so an
    // unknown initial last_reg is fine.
    let mut out = Vec::new();
    for &b in trace {
        let mut pos = af.block_offsets[b.index()];
        for ii in 0..af.insts_per_block[b.index()] {
            let d = decode_inst(&af.words[pos..], geom)?;
            pos += d.words;
            let ir_inst = &f.blocks[b.index()].insts[ii];
            // set_last_reg: the decoded imm packs (value << 3) | delay.
            if let Inst::SetLastReg { class, .. } = ir_inst {
                if *class == cfg.class {
                    let packed = d.imm.unwrap_or(0) as u16;
                    last.set((packed >> 3) as u8, (packed & 7) as u8);
                }
                continue;
            }
            // Decode this instruction's register fields.
            let expected = class_accesses_ordered(f, ir_inst, cfg.class, cfg.order);
            for (k, &code) in d.fields.iter().take(expected.len()).enumerate() {
                let reg = decode_field(cfg, &mut last, code)
                    .ok_or(BinaryError::Mismatch { block: b, inst: ii })?;
                if reg != expected[k] {
                    return Err(BinaryError::Mismatch { block: b, inst: ii });
                }
                out.push(reg);
            }
            if matches!(ir_inst, Inst::Call { .. }) {
                last.clobber();
            }
        }
    }
    Ok(out)
}

/// Decode one register field code against the decoder state.
fn decode_field(cfg: &EncodingConfig, last: &mut LastReg, code: u16) -> Option<u8> {
    if code >= cfg.effective_diff_n() {
        let idx = (code - cfg.effective_diff_n()) as usize;
        let r = *cfg.reserved.iter().nth(idx)?;
        last.after_field(None);
        return Some(r);
    }
    let prev = last.current()?;
    let r = cfg.params.decode(prev, code);
    last.after_field(Some(r));
    Some(r)
}

/// Convenience check used by tests: `Top` entry state means the image
/// must open with a repair before its first register field.
pub fn entry_needs_repair(f: &Function, cfg: &EncodingConfig) -> bool {
    let states = crate::state::block_entry_states_ordered(f, cfg.class, cfg.order);
    states[f.entry.index()] == DecodeState::Top
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::insert_set_last_reg;
    use dra_adjgraph::DiffParams;
    use dra_ir::{Cond, FunctionBuilder, PReg};

    fn mov(dst: u8, src: u8) -> Inst {
        Inst::Mov {
            dst: PReg(dst).into(),
            src: PReg(src).into(),
        }
    }

    fn geom() -> IsaGeometry {
        IsaGeometry::leaf16(3)
    }

    fn diamond() -> (Function, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("f");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.push(mov(1, 0));
        b.cond_br(Cond::Eq, PReg(0).into(), PReg(1).into(), t, e);
        b.switch_to(t);
        b.push(mov(5, 1));
        b.br(j);
        b.switch_to(e);
        b.push(mov(9, 1));
        b.br(j);
        b.switch_to(j);
        b.push(mov(3, 2));
        b.ret(None);
        (b.finish(), t, e, j)
    }

    #[test]
    fn assembled_size_matches_size_accounting() {
        let (mut f, ..) = diamond();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        insert_set_last_reg(&mut f, &cfg);
        let af = assemble_function(&f, &cfg, &geom()).unwrap();
        assert_eq!(
            af.size_bits(),
            dra_isa::function_size_bits(&f, &geom()),
            "assembler and size model must agree"
        );
    }

    #[test]
    fn bits_decode_along_both_paths() {
        let (mut f, t, e, j) = diamond();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        insert_set_last_reg(&mut f, &cfg);
        let af = assemble_function(&f, &cfg, &geom()).unwrap();
        assert!(entry_needs_repair(&f, &cfg));
        let g = geom();
        let via_t = disassemble_trace(&af, &f, &cfg, &g, &[BlockId(0), t, j])
            .expect("then path decodes");
        let via_e = disassemble_trace(&af, &f, &cfg, &g, &[BlockId(0), e, j])
            .expect("else path decodes");
        // Both paths reconstruct the join block's registers (2 then 3).
        assert_eq!(&via_t[via_t.len() - 2..], &[2, 3]);
        assert_eq!(&via_e[via_e.len() - 2..], &[2, 3]);
    }

    #[test]
    fn unrepaired_function_cannot_assemble() {
        let (f, ..) = diamond();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        let err = assemble_function(&f, &cfg, &geom()).unwrap_err();
        assert!(matches!(err, BinaryError::Encode(_)));
    }

    #[test]
    fn direct_12_registers_cannot_assemble_in_3_bits() {
        // The motivating bottleneck, at the bit level: direct encoding of
        // r9 needs a 4-bit field.
        let mut b = FunctionBuilder::new("f");
        b.push(mov(9, 0));
        b.ret(None);
        let mut f = b.finish();
        let direct = EncodingConfig::new(DiffParams::direct(12));
        insert_set_last_reg(&mut f, &direct);
        let err = assemble_function(&f, &direct, &geom()).unwrap_err();
        assert!(
            matches!(err, BinaryError::Asm(AsmError::FieldTooWide { code: 9, .. })),
            "{err}"
        );
        // Differentially, the same function fits.
        let mut f2 = {
            let mut b = FunctionBuilder::new("f");
            b.push(mov(9, 0));
            b.ret(None);
            b.finish()
        };
        let diff = EncodingConfig::new(DiffParams::new(12, 8));
        insert_set_last_reg(&mut f2, &diff);
        assemble_function(&f2, &diff, &geom()).unwrap();
    }

    #[test]
    fn loop_trace_decodes_from_bits() {
        let mut b = FunctionBuilder::new("f");
        let h = b.new_block();
        let body = b.new_block();
        let ex = b.new_block();
        b.push(mov(1, 0));
        b.br(h);
        b.switch_to(h);
        b.cond_br(Cond::Lt, PReg(1).into(), PReg(2).into(), body, ex);
        b.switch_to(body);
        b.push(mov(11, 4));
        b.br(h);
        b.switch_to(ex);
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        insert_set_last_reg(&mut f, &cfg);
        let af = assemble_function(&f, &cfg, &geom()).unwrap();
        let trace = [BlockId(0), h, body, h, body, h, ex];
        disassemble_trace(&af, &f, &cfg, &geom(), &trace).unwrap();
    }
}
