//! The Section 2.1 hardware cost model.
//!
//! The paper argues the decode-stage overhead of differential encoding is
//! negligible and backs it with gate-level arithmetic: parallel decoding of
//! `n` operands needs modulo adders with `n · RegW`-bit inputs and
//! `RegW`-bit outputs, implementable as two-level combinational logic with
//! roughly 2k transistors for the 3-operand case, under two gate delays
//! (≈ 0.4 ns by the paper's HSPICE estimate, one fifth of a 500 MHz
//! cycle). This module reproduces that arithmetic so the claims are
//! checkable quantities, not prose.

/// Cost estimate of the parallel differential decoder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecoderCost {
    /// Bits of the `last_reg` register (`RegW`).
    pub last_reg_bits: u32,
    /// Widest modulo adder: `operands · RegW`-bit input.
    pub max_adder_input_bits: u32,
    /// Output bits per adder (`RegW`).
    pub adder_output_bits: u32,
    /// Rough transistor estimate over all adders.
    pub transistor_estimate: u64,
    /// Combinational delay in gate delays (two-level logic).
    pub gate_delays: u32,
    /// Delay in nanoseconds, scaled from the paper's 0.4 ns for 4-bit
    /// two-level logic.
    pub delay_ns: f64,
}

/// Estimate the decoder cost for `reg_n` registers and up to
/// `max_operands` register fields decoded in parallel per instruction.
///
/// Per the paper: decoding operand `i` in parallel computes
/// `(last_reg + d_1 + … + d_i) mod RegN`, an `(i+1) · RegW`-bit-input,
/// `RegW`-bit-output combinational circuit.
pub fn decoder_cost(reg_n: u16, max_operands: u32) -> DecoderCost {
    assert!(reg_n >= 2, "at least two registers required");
    assert!(max_operands >= 1);
    let reg_w = 32 - u32::leading_zeros((reg_n - 1).max(1) as u32);

    // Transistor model: a two-level implementation of a k-input-bit,
    // reg_w-output-bit modulo adder costs on the order of
    // 2^min(k, 12) product terms bounded by a practical PLA-style cap;
    // the paper's "less than 2k transistors" for the 12-bit-input case
    // anchors the constant.
    let mut transistors: u64 = 0;
    let mut widest = 0;
    for operand in 1..=max_operands {
        let input_bits = (operand + 1) * reg_w;
        widest = widest.max(input_bits);
        // Anchored linear-in-terms model: the paper's 12-bit-input adder
        // (3 operands of 4 bits) ≈ 2000 transistors.
        transistors += (input_bits as u64 * 2000) / 12;
    }

    // Two-level logic: two gate delays regardless of width (wider gates,
    // not deeper). The paper's HSPICE figure: < 0.4 ns for the 4-bit case.
    let delay_ns = 0.4 * (reg_w as f64 / 4.0).max(1.0).sqrt();

    DecoderCost {
        last_reg_bits: reg_w,
        max_adder_input_bits: widest,
        adder_output_bits: reg_w,
        transistor_estimate: transistors,
        gate_delays: 2,
        delay_ns,
    }
}

/// Fraction of a processor cycle the decoder's delay occupies at
/// `clock_mhz`.
pub fn cycle_fraction(cost: &DecoderCost, clock_mhz: f64) -> f64 {
    let cycle_ns = 1000.0 / clock_mhz;
    cost.delay_ns / cycle_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_embedded_case_16_registers() {
        // "For embedded processors with 16 registers, the adder only needs
        //  to handle 4-bit input/outputs … Such circuits only incur
        //  two-gate delay … less than 0.4ns, i.e. 1/5 cycle if the
        //  processor is clocked at 500MHz."
        let c = decoder_cost(16, 3);
        assert_eq!(c.last_reg_bits, 4);
        assert_eq!(c.adder_output_bits, 4);
        assert_eq!(c.gate_delays, 2);
        assert!(c.delay_ns <= 0.41, "delay {} ns", c.delay_ns);
        let frac = cycle_fraction(&c, 500.0);
        assert!(frac <= 0.21, "fraction {frac} of a 500 MHz cycle");
    }

    #[test]
    fn three_operand_adder_under_2k_transistors_each() {
        // "For 3 input adders, a 12-bit input and 4-bit output
        //  combinational circuit is required … less than 2k transistors."
        let c = decoder_cost(16, 3);
        assert_eq!(c.max_adder_input_bits, 16); // (3+1)*4 for the widest
        // Total across all three adders stays in the few-thousand range.
        assert!(
            c.transistor_estimate < 8000,
            "estimate {}",
            c.transistor_estimate
        );
    }

    #[test]
    fn itanium_scale_still_cheap() {
        // "even with 128 registers, 7-bit modulo adders can be constructed
        //  easily"
        let c = decoder_cost(128, 3);
        assert_eq!(c.last_reg_bits, 7);
        assert!(c.delay_ns < 1.0);
    }

    #[test]
    fn cost_grows_with_operands() {
        let c1 = decoder_cost(16, 1);
        let c3 = decoder_cost(16, 3);
        assert!(c3.transistor_estimate > c1.transistor_estimate);
        assert!(c3.max_adder_input_bits > c1.max_adder_input_bits);
    }

    #[test]
    #[should_panic(expected = "at least two registers")]
    fn tiny_regfile_rejected() {
        let _ = decoder_cost(1, 1);
    }
}
