//! # `drac chaos --serve` — seeded fault campaign against the daemon
//!
//! The pipeline chaos harness ([`crate::faults`]) proves panics stay
//! inside one batch cell. This module makes the same argument for the
//! *serving* layer: a daemon under overload and partial failure keeps
//! every protocol promise. Four scenarios, each against a fresh daemon:
//!
//! * **deadline-storm** — both workers wedged on stalled requests while
//!   a flood of short-deadline jobs queues behind them; every flood job
//!   must be shed at dequeue (`serve.deadline.shed_queued`, never
//!   compiled) and the wedged jobs themselves — released after their
//!   own deadlines lapse — must cancel at the first checkpoint
//!   (`serve.deadline.cancelled`).
//! * **queue-flood** — tiny queue caps, workers wedged, then more batch
//!   jobs than the queues can hold plus interactive jobs that fit the
//!   2× reserve and one per shard that does not. Admission control must
//!   shed exactly the overflow (immediate retryable `overloaded`), the
//!   peak queue depth must respect the bound (memory stays bounded),
//!   and every admitted job must complete once the gate opens.
//! * **worker-kill** — injected panics that *escape* the per-request
//!   isolation, killing a worker mid-request on each shard. The
//!   supervisor must answer the orphaned request (`worker-lost`,
//!   retryable), restart the worker on the same shard state, and the
//!   warm result cache must survive the restart (`cached:true` proof).
//! * **client-vanish** — a client that disconnects after sending a
//!   compile, another that hangs up mid-line, then a healthy client.
//!   The daemon must absorb both without a connection-thread panic
//!   (`serve.conn_panics == 0`) and keep serving.
//!
//! ## The three invariants
//!
//! 1. **Exactly one response per admitted request.** Every scenario
//!    tallies response ids against request ids — no request may be
//!    dropped or double-answered.
//! 2. **No hangs.** The whole campaign runs under a watchdog; if it
//!    does not complete in time the process aborts with exit code 3.
//! 3. **Determinism.** The campaign runs *twice* with the same seed and
//!    the merged counter totals must match byte for byte. Scenarios are
//!    constructed so every counter is schedule-invariant: workers are
//!    wedged behind a gate while admission decisions happen on a single
//!    pipelined connection, so queue depths, shed counts, and cache
//!    outcomes do not race. The only carve-outs are
//!    `serve.stats_requests` and `serve.lines`, which count the
//!    harness's own synchronization polls (how *often* the harness must
//!    poll before it observes a state is wall-clock, not workload), and
//!    the `serve.request` span, which is wall-clock by definition.

use crate::lowend::Approach;
use crate::serve::{
    request_compile_source, request_compile_source_v2, serve, Priority, Response, ServeAddr,
    ServeClient, ServeConfig,
};
use crate::session::result_key;
use crate::telemetry::{escape_json, Telemetry};
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Schema identifier for `results/chaos_serve.json`.
pub const CHAOS_SERVE_SCHEMA: &str = "dra-serve-chaos-v1";

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct ChaosServeConfig {
    /// Seed naming the campaign (tags request ids and sources).
    pub seed: u64,
    /// Abort the process (exit 3) if the campaign runs longer than
    /// this; `0` disables the watchdog.
    pub watchdog_secs: u64,
    /// Where to write the JSON verdict.
    pub out_path: Option<PathBuf>,
    /// When set, writes `results/telemetry/chaos_serve.json` under this
    /// root.
    pub telemetry_root: Option<PathBuf>,
}

impl Default for ChaosServeConfig {
    fn default() -> ChaosServeConfig {
        ChaosServeConfig {
            seed: 3,
            watchdog_secs: 120,
            out_path: None,
            telemetry_root: None,
        }
    }
}

/// One scenario's observable outcome (all schedule-invariant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Requests the harness sent on live connections.
    pub requests: usize,
    /// Responses received — must equal `requests`, each id exactly once.
    pub responses: usize,
    /// `ok:true` responses.
    pub ok: u64,
    /// Requests shed by admission control (`overloaded`).
    pub shed_overload: u64,
    /// Requests shed by deadline enforcement (`deadline`).
    pub shed_deadline: u64,
    /// Requests answered by the supervisor (`worker-lost`).
    pub worker_lost: u64,
    /// Workers restarted during the scenario.
    pub worker_restarts: u64,
}

/// The whole campaign's verdict.
#[derive(Clone, Debug)]
pub struct ChaosServeReport {
    /// Campaign seed.
    pub seed: u64,
    /// First run's scenario outcomes, in order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Whether the two same-seed runs produced identical comparable
    /// counter totals *and* identical scenario outcomes.
    pub deterministic: bool,
    /// Comparable counter totals, merged across scenarios (first run).
    pub counter_totals: BTreeMap<String, u64>,
}

impl ChaosServeReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.deterministic && self.scenarios.iter().all(|s| s.requests == s.responses)
    }

    /// The `dra-serve-chaos-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": \"{CHAOS_SERVE_SCHEMA}\",\n  \"seed\": {},\n  \"deterministic\": {},\n  \"passed\": {},\n  \"scenarios\": [",
            self.seed,
            self.deterministic,
            self.passed(),
        ));
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"requests\": {}, \"responses\": {}, \"ok\": {}, \"shed_overload\": {}, \"shed_deadline\": {}, \"worker_lost\": {}, \"worker_restarts\": {}}}",
                escape_json(s.name),
                s.requests,
                s.responses,
                s.ok,
                s.shed_overload,
                s.shed_deadline,
                s.worker_lost,
                s.worker_restarts,
            ));
        }
        out.push_str("\n  ],\n  \"counter_totals\": {");
        for (i, (k, v)) in self.counter_totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", escape_json(k)));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// A human-readable verdict table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "serve chaos: seed {}, {} scenarios, deterministic: {}\n",
            self.seed,
            self.scenarios.len(),
            self.deterministic,
        );
        out.push_str("scenario        req  resp    ok  shed  dead  lost  restarts\n");
        for s in &self.scenarios {
            out.push_str(&format!(
                "{:<15} {:>4} {:>5} {:>5} {:>5} {:>5} {:>5} {:>9}\n",
                s.name,
                s.requests,
                s.responses,
                s.ok,
                s.shed_overload,
                s.shed_deadline,
                s.worker_lost,
                s.worker_restarts,
            ));
        }
        out
    }
}

/// The compile approach every chaos job uses.
const APPROACH: Approach = Approach::Select;

/// A small program whose variants seed every scenario: real pipeline
/// work, but milliseconds of it.
fn base_source() -> String {
    dra_workloads::benchmark("crc32").to_string()
}

/// A variant of `base` whose content hash lands on `shard` (of
/// `workers`): the nonce comment is invisible to the parser but turns
/// the result key, which is what the dispatcher shards on.
fn source_for_shard(base: &str, tag: &str, shard: usize, workers: usize) -> String {
    for nonce in 0u64..10_000 {
        let s = format!("{base}\n; chaos {tag}-{nonce}\n");
        if (result_key("src", &s, APPROACH)[0] % workers as u64) as usize == shard {
            return s;
        }
    }
    unreachable!("10k nonces without hitting shard {shard} of {workers}")
}

/// A daemon tuned for chaos: tiny remap budget (the scenarios probe the
/// serving layer, not the search), single-threaded remap per worker.
fn chaos_daemon(workers: usize, queue_cap: usize) -> ServeConfig {
    let mut config = ServeConfig::new(ServeAddr::Tcp("127.0.0.1:0".to_string()));
    config.workers = workers;
    config.queue_cap = queue_cap;
    config.setup.remap_starts = 16;
    config.setup.remap_threads = 1;
    config
}

/// Classify responses into the outcome tallies and enforce the
/// exactly-once invariant: every id in `sent` answered exactly once,
/// no unknown ids.
fn tally(
    name: &'static str,
    sent: &[String],
    responses: &[Response],
    restarts: u64,
) -> Result<ScenarioOutcome, String> {
    let mut seen: BTreeMap<&str, u32> = BTreeMap::new();
    let mut outcome = ScenarioOutcome {
        name,
        requests: sent.len(),
        responses: responses.len(),
        ok: 0,
        shed_overload: 0,
        shed_deadline: 0,
        worker_lost: 0,
        worker_restarts: restarts,
    };
    for r in responses {
        let id = r
            .id
            .as_deref()
            .ok_or_else(|| format!("{name}: response without an id: {}", r.raw))?;
        if !sent.iter().any(|s| s == id) {
            return Err(format!("{name}: response for never-sent id {id:?}"));
        }
        *seen.entry(id).or_insert(0) += 1;
        if r.ok {
            outcome.ok += 1;
        } else {
            match r.error.as_ref().map(|(k, _)| k.as_str()) {
                Some("overloaded") => outcome.shed_overload += 1,
                Some("deadline") => outcome.shed_deadline += 1,
                Some("worker-lost") => outcome.worker_lost += 1,
                other => {
                    return Err(format!(
                        "{name}: unexpected error kind {other:?}: {}",
                        r.raw
                    ))
                }
            }
            if !r.retryable {
                return Err(format!("{name}: shed response not retryable: {}", r.raw));
            }
        }
    }
    for id in sent {
        match seen.get(id.as_str()) {
            Some(1) => {}
            Some(n) => return Err(format!("{name}: id {id:?} answered {n} times")),
            None => return Err(format!("{name}: id {id:?} never answered")),
        }
    }
    Ok(outcome)
}

/// Block until the daemon's `counter` reaches `at_least` (observed via
/// stats polls on `client`). The poll count is wall-clock-dependent,
/// which is why `serve.stats_requests` / `serve.lines` are excluded
/// from the determinism comparison.
fn wait_for_counter(
    client: &mut ServeClient,
    counter: &str,
    at_least: u64,
) -> io::Result<()> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = client.stats("chaos-sync")?;
        let got = resp
            .stats
            .as_ref()
            .and_then(|t| t.counters.get(counter))
            .copied()
            .unwrap_or(0);
        if got >= at_least {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(io::Error::other(format!(
                "timed out waiting for {counter} >= {at_least} (at {got})"
            )));
        }
        thread::sleep(Duration::from_millis(2));
    }
}

fn recv_n(client: &mut ServeClient, n: usize) -> io::Result<Vec<Response>> {
    (0..n).map(|_| client.recv_response()).collect()
}

/// Scenario 1: short-deadline jobs flood queues wedged behind stalled
/// workers; everything must be shed by the deadline layer, nothing
/// compiled.
fn deadline_storm(seed: u64) -> Result<(ScenarioOutcome, Telemetry), String> {
    let workers = 2;
    let config = chaos_daemon(workers, 8);
    let gate = Arc::clone(&config.stall_gate);
    let mut config = config;
    let base = base_source();
    let mut sent: Vec<String> = Vec::new();
    // One stalled request per shard, each with a deadline that lapses
    // while it is wedged: released, it must cancel at the first
    // checkpoint instead of compiling.
    let stall_ids = ["storm-stall-0".to_string(), "storm-stall-1".to_string()];
    for id in &stall_ids {
        config.faults.stall_request_ids.insert(id.clone());
    }
    let handle = serve(config).map_err(|e| format!("deadline-storm: bind: {e}"))?;
    let mut client = ServeClient::connect_with_retry(handle.addr(), Duration::from_secs(5))
        .map_err(|e| format!("deadline-storm: connect: {e}"))?;

    for (si, id) in stall_ids.iter().enumerate() {
        let src = source_for_shard(&base, &format!("{seed:x}-storm-stall{si}"), si, workers);
        client
            .send_line(&request_compile_source_v2(
                id,
                &src,
                APPROACH,
                Some(400),
                Priority::Interactive,
            ))
            .map_err(|e| format!("deadline-storm: send: {e}"))?;
        sent.push(id.clone());
    }
    // Wait until both workers hold their stalled jobs (counted at
    // dequeue) so the flood queues strictly behind them.
    wait_for_counter(&mut client, "serve.requests", 2)
        .map_err(|e| format!("deadline-storm: {e}"))?;
    // The flood: six jobs with 40 ms deadlines that cannot be served
    // while the workers are wedged.
    for i in 0..6 {
        let id = format!("storm-flood-{i}");
        let src = format!("{base}\n; chaos {seed:x}-storm-flood-{i}\n");
        client
            .send_line(&request_compile_source_v2(
                &id,
                &src,
                APPROACH,
                Some(40),
                Priority::Interactive,
            ))
            .map_err(|e| format!("deadline-storm: send: {e}"))?;
        sent.push(id);
    }
    // Let every deadline lapse, then open the gate.
    thread::sleep(Duration::from_millis(600));
    gate.store(true, Ordering::SeqCst);
    let responses = recv_n(&mut client, sent.len())
        .map_err(|e| format!("deadline-storm: recv: {e}"))?;

    handle.shutdown();
    let telemetry = handle
        .join()
        .map_err(|e| format!("deadline-storm: join: {e}"))?;
    let outcome = tally(
        "deadline-storm",
        &sent,
        &responses,
        telemetry.counter("serve.worker_restarts"),
    )?;
    if outcome.shed_deadline != 8 || outcome.ok != 0 {
        return Err(format!(
            "deadline-storm: expected 8 deadline sheds and 0 ok, got {outcome:?}"
        ));
    }
    if telemetry.counter("serve.deadline.shed_queued") != 6
        || telemetry.counter("serve.deadline.cancelled") != 2
    {
        return Err(format!(
            "deadline-storm: expected 6 queued sheds + 2 cancellations, got {} + {}",
            telemetry.counter("serve.deadline.shed_queued"),
            telemetry.counter("serve.deadline.cancelled"),
        ));
    }
    Ok((outcome, telemetry))
}

/// Scenario 2: more work than the bounded queues accept. Exact shed
/// counts, bounded peak depth, and completion of everything admitted.
fn queue_flood(seed: u64) -> Result<(ScenarioOutcome, Telemetry), String> {
    let workers = 2;
    let cap = 2;
    let config = chaos_daemon(workers, cap);
    let gate = Arc::clone(&config.stall_gate);
    let mut config = config;
    let base = base_source();
    let stall_ids = ["flood-stall-0".to_string(), "flood-stall-1".to_string()];
    for id in &stall_ids {
        config.faults.stall_request_ids.insert(id.clone());
    }
    let handle = serve(config).map_err(|e| format!("queue-flood: bind: {e}"))?;
    let mut client = ServeClient::connect_with_retry(handle.addr(), Duration::from_secs(5))
        .map_err(|e| format!("queue-flood: connect: {e}"))?;

    let mut sent: Vec<String> = Vec::new();
    for (si, id) in stall_ids.iter().enumerate() {
        let src = source_for_shard(&base, &format!("{seed:x}-flood-stall{si}"), si, workers);
        client
            .send_line(&request_compile_source(id, &src, APPROACH))
            .map_err(|e| format!("queue-flood: send: {e}"))?;
        sent.push(id.clone());
    }
    // Both workers wedged and their jobs out of the queues: admission
    // decisions below are now a pure function of send order.
    wait_for_counter(&mut client, "serve.requests", 2).map_err(|e| format!("queue-flood: {e}"))?;

    // Per shard: 6 batch jobs (cap admits 2, sheds 4), then 3
    // interactive (2 fit the 2× reserve, 1 sheds).
    let mut expect_shed = 0usize;
    let mut expect_admitted = 2; // the stalled jobs
    for si in 0..workers {
        for b in 0..6 {
            let id = format!("flood-batch-{si}-{b}");
            let src = source_for_shard(&base, &format!("{seed:x}-fb-{si}-{b}"), si, workers);
            client
                .send_line(&request_compile_source_v2(
                    &id,
                    &src,
                    APPROACH,
                    None,
                    Priority::Batch,
                ))
                .map_err(|e| format!("queue-flood: send: {e}"))?;
            sent.push(id);
            if b < cap {
                expect_admitted += 1;
            } else {
                expect_shed += 1;
            }
        }
        for iv in 0..3 {
            let id = format!("flood-inter-{si}-{iv}");
            let src = source_for_shard(&base, &format!("{seed:x}-fi-{si}-{iv}"), si, workers);
            client
                .send_line(&request_compile_source_v2(
                    &id,
                    &src,
                    APPROACH,
                    None,
                    Priority::Interactive,
                ))
                .map_err(|e| format!("queue-flood: send: {e}"))?;
            sent.push(id);
            if iv < cap {
                expect_admitted += 1;
            } else {
                expect_shed += 1;
            }
        }
    }
    // The shed responses arrive immediately (admission control answers
    // from the connection thread); the workers are still wedged, so
    // exactly `expect_shed` responses can exist before the gate opens.
    let mut responses =
        recv_n(&mut client, expect_shed).map_err(|e| format!("queue-flood: recv shed: {e}"))?;
    for r in &responses {
        if r.error.as_ref().map(|(k, _)| k.as_str()) != Some("overloaded") {
            return Err(format!("queue-flood: early response not a shed: {}", r.raw));
        }
    }
    gate.store(true, Ordering::SeqCst);
    responses.extend(
        recv_n(&mut client, expect_admitted).map_err(|e| format!("queue-flood: recv ok: {e}"))?,
    );

    handle.shutdown();
    let telemetry = handle.join().map_err(|e| format!("queue-flood: join: {e}"))?;
    let outcome = tally(
        "queue-flood",
        &sent,
        &responses,
        telemetry.counter("serve.worker_restarts"),
    )?;
    if outcome.shed_overload != expect_shed as u64 || outcome.ok != expect_admitted as u64 {
        return Err(format!(
            "queue-flood: expected {expect_shed} sheds + {expect_admitted} ok, got {outcome:?}"
        ));
    }
    // Bounded memory: the queues never grew past the interactive
    // reserve, even under flood.
    let peak = telemetry.counter("serve.overload.peak_depth");
    if peak > (2 * cap) as u64 {
        return Err(format!("queue-flood: peak depth {peak} exceeds 2*cap"));
    }
    if telemetry.counter("serve.overload.shed_interactive") != 2 {
        return Err(format!(
            "queue-flood: expected 2 interactive sheds, got {}",
            telemetry.counter("serve.overload.shed_interactive")
        ));
    }
    Ok((outcome, telemetry))
}

/// Scenario 3: worker panics that escape isolation. Supervision must
/// answer the orphaned requests, restart on the same shard cache, and
/// the warm cache must survive.
fn worker_kill(seed: u64) -> Result<(ScenarioOutcome, Telemetry), String> {
    let workers = 2;
    let config = chaos_daemon(workers, 8);
    let mut config = config;
    let kill_ids = ["kill-0".to_string(), "kill-1".to_string()];
    for id in &kill_ids {
        config.faults.kill_request_ids.insert(id.clone());
    }
    let handle = serve(config).map_err(|e| format!("worker-kill: bind: {e}"))?;
    let mut client = ServeClient::connect_with_retry(handle.addr(), Duration::from_secs(5))
        .map_err(|e| format!("worker-kill: connect: {e}"))?;

    let base = base_source();
    let mut sent: Vec<String> = Vec::new();
    let mut responses: Vec<Response> = Vec::new();
    let warm: Vec<String> = (0..workers)
        .map(|si| source_for_shard(&base, &format!("{seed:x}-warm-{si}"), si, workers))
        .collect();
    // Warm each shard's cache...
    for (si, src) in warm.iter().enumerate() {
        let id = format!("warm-{si}");
        let r = client
            .request(&request_compile_source(&id, src, APPROACH))
            .map_err(|e| format!("worker-kill: warm: {e}"))?;
        if !r.ok || r.cached {
            return Err(format!("worker-kill: warm compile wrong: {}", r.raw));
        }
        sent.push(id);
        responses.push(r);
    }
    // ...kill each shard's worker mid-request...
    for (si, id) in kill_ids.iter().enumerate() {
        let src = source_for_shard(&base, &format!("{seed:x}-kill-{si}"), si, workers);
        let r = client
            .request(&request_compile_source(id, &src, APPROACH))
            .map_err(|e| format!("worker-kill: kill: {e}"))?;
        if r.error.as_ref().map(|(k, _)| k.as_str()) != Some("worker-lost") || !r.retryable {
            return Err(format!("worker-kill: expected worker-lost: {}", r.raw));
        }
        sent.push(id.clone());
        responses.push(r);
    }
    // ...and prove the replacement workers inherited the warm cache.
    for (si, src) in warm.iter().enumerate() {
        let id = format!("rewarm-{si}");
        let r = client
            .request(&request_compile_source(&id, src, APPROACH))
            .map_err(|e| format!("worker-kill: rewarm: {e}"))?;
        if !r.ok || !r.cached {
            return Err(format!(
                "worker-kill: cache did not survive restart: {}",
                r.raw
            ));
        }
        sent.push(id);
        responses.push(r);
    }

    handle.shutdown();
    let telemetry = handle.join().map_err(|e| format!("worker-kill: join: {e}"))?;
    let outcome = tally(
        "worker-kill",
        &sent,
        &responses,
        telemetry.counter("serve.worker_restarts"),
    )?;
    if outcome.worker_restarts != 2 || outcome.worker_lost != 2 || outcome.ok != 4 {
        return Err(format!(
            "worker-kill: expected 2 restarts, 2 lost, 4 ok, got {outcome:?}"
        ));
    }
    if telemetry.counter("serve.worker_lost_requests") != 2 {
        return Err(format!(
            "worker-kill: expected 2 lost requests, got {}",
            telemetry.counter("serve.worker_lost_requests")
        ));
    }
    Ok((outcome, telemetry))
}

/// Scenario 4: clients that vanish — after a full request, and mid-line
/// — must not wedge or panic anything; a healthy client still gets
/// service.
fn client_vanish(seed: u64) -> Result<(ScenarioOutcome, Telemetry), String> {
    let workers = 1;
    let config = chaos_daemon(workers, 4);
    let handle = serve(config).map_err(|e| format!("client-vanish: bind: {e}"))?;
    let base = base_source();
    let orphan_src = format!("{base}\n; chaos {seed:x}-orphan\n");

    // A client that sends a compile and hangs up without reading the
    // response: the worker's reply hits a dead socket (swallowed), the
    // compile itself still lands in the cache.
    {
        let mut vanisher =
            ServeClient::connect_with_retry(handle.addr(), Duration::from_secs(5))
                .map_err(|e| format!("client-vanish: connect: {e}"))?;
        vanisher
            .send_line(&request_compile_source("orphan", &orphan_src, APPROACH))
            .map_err(|e| format!("client-vanish: send: {e}"))?;
        // Dropping both halves here closes the socket mid-service.
    }
    // A client that dies mid-line: truncated frame, structured error
    // written to a possibly-dead socket, no panic. Raw socket — the
    // point is an *unterminated* line.
    {
        let ServeAddr::Tcp(addr) = handle.addr() else {
            return Err("client-vanish: expected a TCP daemon".to_string());
        };
        let mut half = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("client-vanish: raw connect: {e}"))?;
        io::Write::write_all(&mut half, b"{\"schema\":\"dra-serve-v1\",\"id\":\"ha")
            .map_err(|e| format!("client-vanish: raw write: {e}"))?;
        // Dropped here: EOF with a partial line buffered.
    }

    let mut client = ServeClient::connect_with_retry(handle.addr(), Duration::from_secs(5))
        .map_err(|e| format!("client-vanish: connect: {e}"))?;
    // Wait for the orphan compile to finish and the truncated line to
    // be flagged, so the healthy requests below observe a fixed state.
    wait_for_counter(&mut client, "serve.ok", 1).map_err(|e| format!("client-vanish: {e}"))?;
    wait_for_counter(&mut client, "serve.truncated", 1)
        .map_err(|e| format!("client-vanish: {e}"))?;

    let mut sent: Vec<String> = Vec::new();
    let mut responses: Vec<Response> = Vec::new();
    let r = client
        .ping("vanish-ping")
        .map_err(|e| format!("client-vanish: ping: {e}"))?;
    if !r.ok {
        return Err(format!("client-vanish: ping failed: {}", r.raw));
    }
    sent.push("vanish-ping".to_string());
    responses.push(r);
    // The orphan's result must be in the cache: the daemon finished the
    // request even though its client vanished.
    let r = client
        .request(&request_compile_source("vanish-again", &orphan_src, APPROACH))
        .map_err(|e| format!("client-vanish: compile: {e}"))?;
    if !r.ok || !r.cached {
        return Err(format!(
            "client-vanish: orphan compile not cached: {}",
            r.raw
        ));
    }
    sent.push("vanish-again".to_string());
    responses.push(r);

    handle.shutdown();
    let telemetry = handle
        .join()
        .map_err(|e| format!("client-vanish: join: {e}"))?;
    let outcome = tally(
        "client-vanish",
        &sent,
        &responses,
        telemetry.counter("serve.worker_restarts"),
    )?;
    if telemetry.counter("serve.conn_panics") != 0 {
        return Err(format!(
            "client-vanish: {} connection threads panicked",
            telemetry.counter("serve.conn_panics")
        ));
    }
    if telemetry.counter("serve.truncated") != 1 || telemetry.counter("serve.ok") != 2 {
        return Err(format!(
            "client-vanish: expected 1 truncation + 2 ok, got {} + {}",
            telemetry.counter("serve.truncated"),
            telemetry.counter("serve.ok"),
        ));
    }
    Ok((outcome, telemetry))
}

/// Counters whose totals are *expected* to vary run to run: the
/// harness's own synchronization polls.
const OBSERVER_COUNTERS: &[&str] = &["serve.stats_requests", "serve.lines"];

fn comparable_counters(frames: &[Telemetry]) -> BTreeMap<String, u64> {
    let mut out: BTreeMap<String, u64> = BTreeMap::new();
    for t in frames {
        for (k, v) in t.counters() {
            if OBSERVER_COUNTERS.contains(&k.as_str()) {
                continue;
            }
            *out.entry(k.clone()).or_insert(0) += v;
        }
    }
    out
}

fn run_campaign(seed: u64) -> Result<(Vec<ScenarioOutcome>, Vec<Telemetry>), String> {
    let mut outcomes = Vec::new();
    let mut frames = Vec::new();
    for scenario in [deadline_storm, queue_flood, worker_kill, client_vanish] {
        let (outcome, telemetry) = scenario(seed)?;
        outcomes.push(outcome);
        frames.push(telemetry);
    }
    Ok((outcomes, frames))
}

/// Run the campaign twice with the same seed, compare, and write the
/// verdict artifacts.
///
/// # Errors
///
/// A description of the first violated invariant. (A *hang* does not
/// error — the watchdog kills the process with exit code 3.)
pub fn run_chaos_serve(config: &ChaosServeConfig) -> Result<ChaosServeReport, String> {
    let done = Arc::new(AtomicBool::new(false));
    if config.watchdog_secs > 0 {
        let done = Arc::clone(&done);
        let limit = Duration::from_secs(config.watchdog_secs);
        thread::spawn(move || {
            let start = Instant::now();
            while start.elapsed() < limit {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_millis(50));
            }
            eprintln!(
                "chaos --serve: watchdog fired after {}s — a scenario hung",
                limit.as_secs()
            );
            std::process::exit(3);
        });
    }

    let result = (|| {
        let (outcomes_a, frames_a) = run_campaign(config.seed)?;
        let (outcomes_b, frames_b) = run_campaign(config.seed)?;
        let totals_a = comparable_counters(&frames_a);
        let totals_b = comparable_counters(&frames_b);
        let deterministic = totals_a == totals_b && outcomes_a == outcomes_b;
        if !deterministic {
            for (k, va) in &totals_a {
                let vb = totals_b.get(k).copied().unwrap_or(0);
                if *va != vb {
                    eprintln!("chaos --serve: counter {k}: run A {va}, run B {vb}");
                }
            }
            for (k, vb) in &totals_b {
                if !totals_a.contains_key(k) {
                    eprintln!("chaos --serve: counter {k}: run A absent, run B {vb}");
                }
            }
        }
        let report = ChaosServeReport {
            seed: config.seed,
            scenarios: outcomes_a,
            deterministic,
            counter_totals: totals_a,
        };
        if let Some(path) = &config.out_path {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
            }
            std::fs::write(path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        }
        if let Some(root) = &config.telemetry_root {
            let mut merged = Telemetry::new();
            for t in &frames_a {
                merged.merge(t);
            }
            merged
                .write_results(root, "chaos_serve")
                .map_err(|e| format!("telemetry: {e}"))?;
        }
        Ok(report)
    })();
    done.store(true, Ordering::SeqCst);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_targeted_sources_land_where_aimed() {
        let base = base_source();
        for workers in [2usize, 3] {
            for shard in 0..workers {
                let s = source_for_shard(&base, "t", shard, workers);
                assert_eq!(
                    (result_key("src", &s, APPROACH)[0] % workers as u64) as usize,
                    shard
                );
                dra_ir::parse::parse_program(&s).expect("nonce comment must stay parseable");
            }
        }
    }

    #[test]
    fn report_json_shape() {
        let report = ChaosServeReport {
            seed: 3,
            scenarios: vec![ScenarioOutcome {
                name: "deadline-storm",
                requests: 8,
                responses: 8,
                ok: 0,
                shed_overload: 0,
                shed_deadline: 8,
                worker_lost: 0,
                worker_restarts: 0,
            }],
            deterministic: true,
            counter_totals: BTreeMap::from([("serve.requests".to_string(), 8)]),
        };
        assert!(report.passed());
        let doc = crate::telemetry::parse_json(&report.to_json()).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(
            obj.get("schema").and_then(|j| j.as_str()),
            Some(CHAOS_SERVE_SCHEMA)
        );
        assert!(matches!(
            obj.get("deterministic"),
            Some(crate::telemetry::Json::Bool(true))
        ));
        // A dropped response fails the verdict.
        let mut bad = report.clone();
        bad.scenarios[0].responses = 7;
        assert!(!bad.passed());
    }
}
