//! The Section 10.1 pipeline: allocate → encode → verify → simulate.

use crate::faults::PipelineFaults;
use crate::telemetry::Telemetry;
use dra_adjgraph::DiffParams;
use dra_encoding::{insert_set_last_reg_program, verify_program, EncodingConfig};
use dra_ir::parse::ParseError;
use dra_ir::{Function, Program};
use dra_isa::{code_size_bits, IsaGeometry};
use dra_regalloc::{
    allocate_program, check_allocation, check_function_encoding, remap_program, AllocConfig,
    AllocStats, AllocationRecord, Allocator, AllocatorStats, CheckError, CheckStats, Coalescing,
    DenseIrc, Ospill, RemapConfig, RemapStats, RemapStrategy,
};
use dra_sim::{simulate, LowEndConfig, SimResult};
use dra_workloads::benchmark;
use std::error::Error;
use std::fmt;

/// The five experimental setups of Section 10.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Iterated register coalescing with the 8 directly-encodable
    /// registers (`RegN = DiffN = 8`; no differential encoding).
    Baseline,
    /// Baseline allocation with 12 registers, then post-pass differential
    /// remapping (Section 5).
    Remapping,
    /// Differential select inside the allocator (Section 6).
    Select,
    /// Optimal-spill allocation with 8 registers, direct encoding
    /// (the `O-spill` comparator).
    OSpill,
    /// Differential coalesce on the optimal-spill pipeline (Section 7).
    Coalesce,
    /// Section 8.2 selective enabling (an extension beyond the paper's
    /// five evaluated setups): differential encoding per *function*, only
    /// where register pressure exceeds the direct registers — low-pressure
    /// functions stay direct-encoded and repair-free.
    Adaptive,
}

impl Approach {
    /// All five setups in the paper's presentation order.
    pub const ALL: [Approach; 5] = [
        Approach::Baseline,
        Approach::Remapping,
        Approach::Select,
        Approach::OSpill,
        Approach::Coalesce,
    ];

    /// Parse a user- or wire-supplied approach name (the inverse of
    /// [`Approach::label`], case-insensitive, with the common aliases the
    /// CLI has always taken). Shared by `drac`'s argument parsing and the
    /// `dra-serve-v1` request decoder.
    pub fn parse(s: &str) -> Option<Approach> {
        Some(match s.to_ascii_lowercase().as_str() {
            "baseline" => Approach::Baseline,
            "remapping" | "remap" => Approach::Remapping,
            "select" => Approach::Select,
            "o-spill" | "ospill" => Approach::OSpill,
            "coalesce" => Approach::Coalesce,
            "adaptive" => Approach::Adaptive,
            _ => return None,
        })
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Approach::Baseline => "baseline",
            Approach::Remapping => "remapping",
            Approach::Select => "select",
            Approach::OSpill => "O-spill",
            Approach::Coalesce => "coalesce",
            Approach::Adaptive => "adaptive",
        }
    }

    /// Does this approach use differential encoding (RegN > DiffN)?
    /// (`Adaptive` decides per function and handles its own repairs.)
    pub fn is_differential(self) -> bool {
        matches!(
            self,
            Approach::Remapping | Approach::Select | Approach::Coalesce
        )
    }

    /// Does this approach have a *differential path* that can degrade to
    /// direct encoding? The direct approaches (`Baseline`, `O-spill`) are
    /// already at the bottom of the lattice — there is nothing to fall
    /// back to.
    pub fn can_degrade(self) -> bool {
        self.is_differential() || self == Approach::Adaptive
    }
}

/// Machine and encoding parameters of the low-end experiment.
#[derive(Clone, Debug)]
pub struct LowEndSetup {
    /// Registers for the direct-encoded setups (`RegN = DiffN = 8`).
    pub direct_regs: u16,
    /// Differential parameters for the differential setups
    /// (`RegN = 12, DiffN = 8` in Figures 11–14).
    pub diff: DiffParams,
    /// Call-clobbered physical registers (calling-convention pressure).
    pub call_clobbers: Vec<dra_ir::PReg>,
    /// The simulated machine.
    pub machine: LowEndConfig,
    /// Entry arguments for simulation.
    pub args: Vec<i64>,
    /// Random restarts for the remapping search (the paper uses 1000).
    pub remap_starts: u32,
    /// Worker threads for the remapping restarts (`0` = one per CPU).
    /// The search result is identical at any thread count.
    pub remap_threads: usize,
    /// Search strategy for the remapping pass (greedy restarts by
    /// default — the paper's algorithm; see [`RemapStrategy`]).
    pub remap_strategy: RemapStrategy,
    /// Portfolio-wide evaluation budget for the remapping search, split
    /// deterministically across restart tasks.
    pub remap_eval_budget: u64,
    /// Worker threads for the batch driver ([`crate::batch`]) when running
    /// many (benchmark, approach) cells (`0` = one per CPU). Like
    /// `remap_threads`, results are identical at any thread count.
    pub batch_threads: usize,
    /// Enable the degradation lattice: a per-function differential-path
    /// failure (allocation, repair, verification) falls back to direct
    /// encoding for that function, and a simulation failure of a
    /// differential artifact falls back to a direct recompile of the whole
    /// program — recorded in [`RemapStats::degraded`] and the `degrade.*`
    /// counters instead of failing the run. Off (`false`) turns every such
    /// failure back into a hard [`PipelineError`].
    pub degrade: bool,
    /// Panic re-attempts per batch cell before it is recorded as failed
    /// (see [`crate::batch::run_batch_isolated`]).
    pub cell_retries: u32,
    /// Deterministic fault injection plan (clean by default); see
    /// [`PipelineFaults`].
    pub faults: PipelineFaults,
    /// Run the symbolic allocation checker over every compiled function:
    /// each engine's [`AllocationRecord`] is replayed through
    /// [`check_allocation`] after the full pipeline (including remapping),
    /// and differential functions additionally replay their register
    /// fields through the decoder ([`check_function_encoding`]). A
    /// rejection is a [`PipelineError::Check`] — subject to the same
    /// degradation lattice as a verification failure. Off by default
    /// (`drac --check` turns it on).
    pub check: bool,
    /// Entry bound for the session's parsed-source cache
    /// ([`crate::batch::SourceCache`]). The `DRA_CACHE_CAP` knob
    /// ([`crate::knob::apply_cache_cap`]) overrides it for low-memory
    /// deployments.
    pub source_cache_cap: usize,
    /// Entry bound for the session's allocation-result cache (tighter by
    /// default: a cached [`LowEndRun`] retains the compiled program).
    /// Also overridden by `DRA_CACHE_CAP`.
    pub result_cache_cap: usize,
}

impl Default for LowEndSetup {
    fn default() -> Self {
        LowEndSetup {
            direct_regs: 8,
            diff: DiffParams::new(12, 8),
            call_clobbers: vec![dra_ir::PReg(0), dra_ir::PReg(1)],
            machine: LowEndConfig::default(),
            args: vec![],
            remap_starts: 1000,
            remap_threads: 0,
            remap_strategy: RemapStrategy::Greedy,
            remap_eval_budget: dra_regalloc::DEFAULT_EVAL_BUDGET,
            batch_threads: 0,
            degrade: true,
            cell_retries: 1,
            faults: PipelineFaults::default(),
            check: false,
            source_cache_cap: crate::batch::DEFAULT_SOURCE_CAPACITY,
            result_cache_cap: crate::session::DEFAULT_RESULT_CAPACITY,
        }
    }
}

impl LowEndSetup {
    /// The remapping configuration this setup implies.
    pub fn remap_config(&self) -> RemapConfig {
        let mut cfg = RemapConfig::new(self.diff);
        cfg.starts = self.remap_starts;
        cfg.threads = self.remap_threads;
        cfg.strategy = self.remap_strategy;
        cfg.eval_budget = self.remap_eval_budget;
        // The allocator keeps values that live across calls out of the
        // clobbered registers; an unpinned permutation could move such a
        // value *into* one. Pinning the clobbers preserves the allocator's
        // calling-convention guarantees through the search.
        cfg.pinned = self.call_clobbers.clone();
        cfg
    }
}

/// Everything measured about one compiled-and-simulated benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct LowEndRun {
    /// Which setup produced it.
    pub approach: Approach,
    /// Static spill instructions.
    pub spill_insts: usize,
    /// Static `set_last_reg` instructions.
    pub set_last_regs: usize,
    /// Total static instructions (including spills and repairs).
    pub total_insts: usize,
    /// Code size in bits under the LEAF16 geometry.
    pub code_bits: u64,
    /// Cycles on the 5-stage machine.
    pub cycles: u64,
    /// Dynamic spill accesses.
    pub dynamic_spills: u64,
    /// Dynamic `set_last_reg` fetches.
    pub dynamic_set_last_regs: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// The program's result (must agree across approaches).
    pub ret_value: Option<i64>,
    /// Per-function remapping-search statistics (empty for approaches that
    /// never remap).
    pub remap: Vec<RemapStats>,
    /// Dynamic block trace of the entry function (for decode round-trips).
    pub entry_trace: Vec<dra_ir::BlockId>,
    /// Per-(function, block) execution counts (profile feedback).
    pub block_counts: std::collections::HashMap<(u32, u32), u64>,
    /// Per-stage spans and work counters recorded while producing this
    /// run (see [`crate::telemetry`] for the determinism contract).
    pub telemetry: Telemetry,
    /// The compiled program (for further inspection).
    pub program: Program,
}

impl LowEndRun {
    /// Static spill instructions as a percentage of all instructions
    /// (the Figure 11 metric).
    pub fn spill_percent(&self) -> f64 {
        100.0 * self.spill_insts as f64 / self.total_insts.max(1) as f64
    }

    /// Static `set_last_reg` percentage (the Figure 12 metric).
    pub fn cost_percent(&self) -> f64 {
        100.0 * self.set_last_regs as f64 / self.total_insts.max(1) as f64
    }
}

/// Pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The program text failed to parse (see [`compile_and_run_source`]).
    Parse(ParseError),
    /// The parsed program failed structural validation.
    Validate {
        /// Index of the offending function.
        func: usize,
        /// The validator's diagnostic.
        message: String,
    },
    /// Register allocation failed.
    Alloc(dra_regalloc::AllocError),
    /// The encoded program failed decode verification.
    Encoding(dra_encoding::DecodeError),
    /// Simulation failed.
    Sim(dra_sim::SimError),
    /// The symbolic allocation checker rejected a compiled function
    /// ([`LowEndSetup::check`]).
    Check(CheckError),
    /// A precomputed per-function pressure slice didn't cover the
    /// program's functions (stale cache entry or caller error).
    PressureMismatch {
        /// Functions in the program being compiled.
        funcs: usize,
        /// Entries in the supplied pressures slice.
        pressures: usize,
    },
    /// A failure injected by [`PipelineFaults`] (fault-injection runs
    /// only; never produced by a clean pipeline).
    Injected {
        /// Pipeline stage the fault was injected into.
        stage: &'static str,
        /// Index of the targeted function.
        func: usize,
    },
    /// A batch cell panicked through every retry; the panic was contained
    /// by [`crate::batch::run_batch_isolated`] and recorded here instead
    /// of aborting the matrix.
    Panic {
        /// The innermost telemetry stage active when the cell panicked.
        stage: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl PipelineError {
    /// A stable, wire-safe discriminator for structured error reporting
    /// (the `error.kind` field of `dra-serve-v1` responses).
    pub fn kind(&self) -> &'static str {
        match self {
            PipelineError::Parse(_) => "parse",
            PipelineError::Validate { .. } => "validate",
            PipelineError::Alloc(_) => "alloc",
            PipelineError::Encoding(_) => "encoding",
            PipelineError::Sim(_) => "sim",
            PipelineError::Check(_) => "check",
            PipelineError::PressureMismatch { .. } => "pressure",
            PipelineError::Injected { .. } => "injected",
            PipelineError::Panic { .. } => "panic",
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Validate { func, message } => {
                write!(f, "validate: function {func}: {message}")
            }
            PipelineError::Alloc(e) => write!(f, "allocation: {e}"),
            PipelineError::Encoding(e) => write!(f, "encoding: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation: {e}"),
            PipelineError::Check(e) => write!(f, "checker: {e}"),
            PipelineError::PressureMismatch { funcs, pressures } => write!(
                f,
                "pressure table has {pressures} entries for a {funcs}-function program"
            ),
            PipelineError::Injected { stage, func } => {
                write!(f, "injected fault: stage {stage}, function {func}")
            }
            PipelineError::Panic { stage, message } => {
                write!(f, "cell panicked in stage {stage}: {message}")
            }
        }
    }
}

impl Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<dra_regalloc::AllocError> for PipelineError {
    fn from(e: dra_regalloc::AllocError) -> Self {
        PipelineError::Alloc(e)
    }
}

impl From<dra_encoding::DecodeError> for PipelineError {
    fn from(e: dra_encoding::DecodeError) -> Self {
        PipelineError::Encoding(e)
    }
}

impl From<dra_sim::SimError> for PipelineError {
    fn from(e: dra_sim::SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<CheckError> for PipelineError {
    fn from(e: CheckError) -> Self {
        PipelineError::Check(e)
    }
}

/// Compile a named benchmark under `approach`.
///
/// Returns the fully physical, differential-encoded (where applicable),
/// decode-verified program plus the static `set_last_reg` count and the
/// per-function remapping statistics (empty when the approach never
/// remaps).
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_benchmark(
    name: &str,
    approach: Approach,
    setup: &LowEndSetup,
) -> Result<(Program, usize, Vec<RemapStats>), PipelineError> {
    let mut p = benchmark(name);
    let remap = compile_program(&mut p, approach, setup)?;
    let set_last_regs = p.count_insts(|i| i.is_set_last_reg());
    Ok((p, set_last_regs, remap))
}

/// Compile an arbitrary program in place under `approach`.
///
/// Returns the per-function remapping-search statistics, in function
/// order; empty for approaches that never remap.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_program(
    p: &mut Program,
    approach: Approach,
    setup: &LowEndSetup,
) -> Result<Vec<RemapStats>, PipelineError> {
    compile_program_with(p, approach, setup, None)
}

/// [`compile_program`] with optionally precomputed per-function register
/// pressures (MAXLIVE, in `p.funcs` order).
///
/// Only the `Adaptive` approach consults pressure; passing a memoized
/// slice (see [`crate::batch::SourceCache`]) skips its per-function
/// liveness recomputation. `None` computes pressures on demand.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_program_with(
    p: &mut Program,
    approach: Approach,
    setup: &LowEndSetup,
    pressures: Option<&[usize]>,
) -> Result<Vec<RemapStats>, PipelineError> {
    let mut scratch = Telemetry::new();
    compile_program_telemetry(p, approach, setup, pressures, &mut scratch)
}

/// Record an allocation's work counters and phase spans.
fn record_alloc(t: &mut Telemetry, s: &AllocStats) {
    t.count("alloc.rounds", s.rounds as u64);
    t.count("alloc.spilled_vregs", s.spilled_vregs as u64);
    t.count("alloc.moves_coalesced", s.moves_coalesced as u64);
    t.span_ns("alloc.liveness", s.liveness_nanos);
    t.span_ns("alloc.build", s.build_nanos);
    t.span_ns("alloc.color", s.color_nanos);
    record_irc_steps(t, s);
}

/// Record the IRC engine's per-stage work counters (schedule-invariant:
/// pure worklist step counts, no wall-clock contribution).
fn record_irc_steps(t: &mut Telemetry, s: &AllocStats) {
    t.count("irc.simplify", s.simplify_steps);
    t.count("irc.coalesce", s.coalesce_steps);
    t.count("irc.freeze", s.freeze_steps);
    t.count("irc.spill", s.spill_selects);
}

/// Record the remapping search's work counters and wall-clock span.
///
/// Every counter here is a pure function of the input (the portfolio's
/// budget split and tie-breaks are schedule-invariant), so aggregates are
/// identical at any `remap_threads` / batch thread count; only the `remap`
/// span varies with the wall clock.
fn record_remap(t: &mut Telemetry, stats: &[RemapStats]) {
    t.count("remap.functions", stats.len() as u64);
    for st in stats {
        t.count("remap.evaluations", st.evaluations);
        t.count("remap.starts_run", st.starts_run as u64);
        t.count("remap.cycle_moves", st.cycle_moves);
        t.count("remap.bb_nodes", st.bb_nodes);
        t.count(
            match st.winner {
                dra_regalloc::RemapWinner::Identity => "remap.win.identity",
                dra_regalloc::RemapWinner::Exhaustive => "remap.win.exhaustive",
                dra_regalloc::RemapWinner::Greedy => "remap.win.greedy",
                dra_regalloc::RemapWinner::Anneal => "remap.win.anneal",
                dra_regalloc::RemapWinner::Lns => "remap.win.lns",
                dra_regalloc::RemapWinner::BranchBound => "remap.win.branch-bound",
            },
            1,
        );
        if st.certified {
            t.count("remap.certified", 1);
        }
        t.span_ns("remap", st.search_nanos);
    }
}

fn record_repair(t: &mut Telemetry, s: &dra_encoding::RepairStats) {
    t.count("repair.inserted", s.inserted as u64);
    t.count("repair.out_of_range", s.out_of_range as u64);
    t.count("repair.inconsistency", s.inconsistency as u64);
}

/// Record an engine's statistics under the telemetry names the
/// engine-specific arms have always used.
fn record_allocator_stats(t: &mut Telemetry, s: &AllocatorStats) {
    match s {
        AllocatorStats::Irc(s) => record_alloc(t, s),
        AllocatorStats::Ospill(s) => {
            t.count("alloc.pressure_spills", s.pressure_spills as u64);
            t.count("alloc.coloring_spills", s.coloring_spills as u64);
            t.count("alloc.moves_coalesced", s.moves_coalesced as u64);
        }
        AllocatorStats::Coalesce(s) => {
            t.count("alloc.pressure_spills", s.pressure_spills as u64);
            t.count("alloc.coloring_spills", s.coloring_spills as u64);
            t.count("alloc.moves_coalesced", s.moves_coalesced as u64);
            // The final coloring pass is a full IRC run; surface its
            // per-stage work counters alongside the direct approaches'.
            record_irc_steps(t, &s.irc);
            t.span_ns("alloc.liveness", s.irc.liveness_nanos);
            t.span_ns("alloc.build", s.irc.build_nanos);
            t.span_ns("alloc.color", s.irc.color_nanos);
        }
    }
}

/// Run the symbolic checker on one compiled function: the substitution
/// check against its [`AllocationRecord`] and, when `enc` is supplied
/// (differential functions), the decoder replay of its register fields.
/// Records the `checker` span and the `checker.*` work counters.
fn check_function(
    f: &Function,
    rec: Option<&AllocationRecord>,
    enc: Option<&EncodingConfig>,
    t: &mut Telemetry,
) -> Result<(), PipelineError> {
    let result = t.time("checker", || {
        let mut stats = CheckStats::default();
        if let Some(rec) = rec {
            stats.merge(&check_allocation(f, rec)?);
        }
        if let Some(enc) = enc {
            stats.merge(&check_function_encoding(f, enc)?);
        }
        Ok::<_, CheckError>(stats)
    });
    match result {
        Ok(stats) => {
            t.count("checker.functions", 1);
            t.count("checker.insts", stats.insts as u64);
            t.count("checker.deleted_moves", stats.deleted_moves as u64);
            t.count("checker.fields_replayed", stats.fields_replayed as u64);
            t.count("checker.violations", 0); // ensure the key exists
            Ok(())
        }
        Err(e) => {
            t.count(
                "checker.violations",
                match &e {
                    CheckError::Violations(v) => v.len() as u64,
                    _ => 1,
                },
            );
            Err(PipelineError::Check(e))
        }
    }
}

/// [`check_function`] over a whole program. `records` is in `p.funcs`
/// order (as produced by [`allocate_program`]); `enc_flags[fi]` marks the
/// functions that are differential-encoded and must also replay through
/// the decoder.
fn check_program(
    p: &Program,
    records: &[Option<AllocationRecord>],
    enc_flags: &[bool],
    setup: &LowEndSetup,
    t: &mut Telemetry,
) -> Result<(), PipelineError> {
    let enc = EncodingConfig::new(setup.diff);
    for (fi, f) in p.funcs.iter().enumerate() {
        let rec = records.get(fi).and_then(|r| r.as_ref());
        let e = enc_flags.get(fi).copied().unwrap_or(false);
        check_function(f, rec, e.then_some(&enc), t)?;
    }
    Ok(())
}

/// Map a differential-path failure to its `degrade.*` cause counter.
fn degrade_counter(e: &PipelineError) -> &'static str {
    match e {
        PipelineError::Alloc(_) => "degrade.alloc",
        PipelineError::Encoding(_) => "degrade.verify",
        PipelineError::Check(_) => "degrade.check",
        PipelineError::Injected { .. } => "degrade.injected",
        _ => "degrade.other",
    }
}

/// Fail with [`PipelineError::Injected`] when the fault plan targets any
/// in-range function of the program being compiled.
fn check_injected(
    targets: &std::collections::BTreeSet<usize>,
    stage: &'static str,
    nfuncs: usize,
) -> Result<(), PipelineError> {
    match targets.iter().copied().find(|&fi| fi < nfuncs) {
        Some(func) => Err(PipelineError::Injected { stage, func }),
        None => Ok(()),
    }
}

/// [`compile_program_with`], recording per-stage spans and work counters
/// into `t` (see [`crate::telemetry`] for the names and the determinism
/// contract).
///
/// When [`LowEndSetup::degrade`] is set (the default) and the approach
/// has a differential path, a failure anywhere in that path does not fail
/// the program: the pipeline restores the pristine input and recompiles
/// it function by function, degrading exactly the failing functions to
/// direct encoding ([`compile_program_degraded`]). The happy path is
/// byte-identical to a `degrade = false` compile — the fallback only
/// costs one up-front program clone.
///
/// # Errors
///
/// See [`PipelineError`]. A `pressures` slice that doesn't cover
/// `p.funcs` is rejected up front as
/// [`PipelineError::PressureMismatch`] — for any approach, since a
/// mismatched table always signals a stale cache entry or caller error
/// even when the approach would not consult it. The pressure check is
/// *not* subject to degradation: it indicts the caller, not the
/// differential path.
pub fn compile_program_telemetry(
    p: &mut Program,
    approach: Approach,
    setup: &LowEndSetup,
    pressures: Option<&[usize]>,
    t: &mut Telemetry,
) -> Result<Vec<RemapStats>, PipelineError> {
    if let Some(ps) = pressures {
        if ps.len() != p.funcs.len() {
            return Err(PipelineError::PressureMismatch {
                funcs: p.funcs.len(),
                pressures: ps.len(),
            });
        }
    }
    let fallback = (setup.degrade && approach.can_degrade()).then(|| p.clone());
    match compile_program_attempt(p, approach, setup, pressures, t) {
        Ok(rs) => Ok(rs),
        Err(e) => match fallback {
            Some(pristine) => {
                t.count("degrade.programs", 1);
                t.count(degrade_counter(&e), 0); // ensure the cause key exists
                compile_program_degraded(p, pristine, approach, setup, pressures, t)
            }
            None => Err(e),
        },
    }
}

/// One full program-level compile under `approach` — the pre-lattice
/// pipeline, plus the [`PipelineFaults`] injection points. May leave `p`
/// partially compiled on failure; the caller holds the pristine clone.
fn compile_program_attempt(
    p: &mut Program,
    approach: Approach,
    setup: &LowEndSetup,
    pressures: Option<&[usize]>,
    t: &mut Telemetry,
) -> Result<Vec<RemapStats>, PipelineError> {
    let mut remap_stats: Vec<RemapStats> = Vec::new();
    // Checker snapshots (one per function, captured only under
    // `setup.check`) and which functions are differential-encoded.
    let record = setup.check;
    let mut records: Vec<Option<AllocationRecord>> = Vec::new();
    let mut enc_flags: Vec<bool> = Vec::new();
    match approach {
        Approach::Baseline => {
            let mut cfg = AllocConfig::baseline(setup.direct_regs);
            cfg.call_clobbers = setup.call_clobbers.clone();
            let (s, recs) = t.time("alloc", || allocate_program(&DenseIrc, p, &cfg, record))?;
            record_allocator_stats(t, &s);
            records = recs;
        }
        Approach::Remapping => {
            // Allocate with the larger register file using the plain
            // allocator, then permute the numbers post-pass.
            check_injected(&setup.faults.fail_alloc_funcs, "alloc", p.funcs.len())?;
            let mut cfg = AllocConfig::baseline(setup.diff.reg_n());
            cfg.call_clobbers = setup.call_clobbers.clone();
            let (s, recs) = t.time("alloc", || allocate_program(&DenseIrc, p, &cfg, record))?;
            record_allocator_stats(t, &s);
            records = recs;
            remap_stats = remap_program(p, &setup.remap_config());
            record_remap(t, &remap_stats);
        }
        Approach::Select => {
            check_injected(&setup.faults.fail_alloc_funcs, "alloc", p.funcs.len())?;
            let mut cfg = AllocConfig::differential(setup.diff);
            cfg.call_clobbers = setup.call_clobbers.clone();
            let (s, recs) = t.time("alloc", || allocate_program(&DenseIrc, p, &cfg, record))?;
            record_allocator_stats(t, &s);
            records = recs;
            // Figure 4: remapping may always run after approach 2.
            remap_stats = remap_program(p, &setup.remap_config());
            record_remap(t, &remap_stats);
        }
        Approach::OSpill => {
            let mut cfg = AllocConfig::baseline(setup.direct_regs);
            cfg.call_clobbers = setup.call_clobbers.clone();
            let (s, recs) = t.time("alloc", || allocate_program(&Ospill, p, &cfg, record))?;
            record_allocator_stats(t, &s);
            records = recs;
        }
        Approach::Coalesce => {
            check_injected(&setup.faults.fail_alloc_funcs, "alloc", p.funcs.len())?;
            let mut cfg = AllocConfig::differential(setup.diff);
            cfg.call_clobbers = setup.call_clobbers.clone();
            let (s, recs) = t.time("alloc", || allocate_program(&Coalescing, p, &cfg, record))?;
            record_allocator_stats(t, &s);
            records = recs;
            // Figure 4: remapping may always run after approach 3.
            remap_stats = remap_program(p, &setup.remap_config());
            record_remap(t, &remap_stats);
        }
        Approach::Adaptive => {
            // Section 8.2: "we only need to enable differential encoding
            // when the benefits … exceed the extra costs due to
            // set_last_reg instructions." Functions whose pressure fits
            // the direct registers stay direct-encoded (no repairs at
            // all); the pressured ones get the full differential-select
            // treatment.
            let enc = EncodingConfig::new(setup.diff);
            for (fi, f) in p.funcs.iter_mut().enumerate() {
                let pressure = match pressures {
                    Some(ps) => ps[fi],
                    None => dra_ir::liveness::max_pressure_of(f),
                };
                if pressure <= setup.direct_regs as usize {
                    let mut cfg = AllocConfig::baseline(setup.direct_regs);
                    cfg.call_clobbers = setup.call_clobbers.clone();
                    let (s, rec) = t.time("alloc", || DenseIrc.allocate_fn(f, &cfg, record))?;
                    record_allocator_stats(t, &s);
                    records.push(rec);
                    enc_flags.push(false);
                } else {
                    if setup.faults.fail_alloc_funcs.contains(&fi) {
                        return Err(PipelineError::Injected {
                            stage: "alloc",
                            func: fi,
                        });
                    }
                    let mut cfg = AllocConfig::differential(setup.diff);
                    cfg.call_clobbers = setup.call_clobbers.clone();
                    let (s, rec) = t.time("alloc", || DenseIrc.allocate_fn(f, &cfg, record))?;
                    record_allocator_stats(t, &s);
                    records.push(rec);
                    enc_flags.push(true);
                    let rs = dra_regalloc::remap_function(f, &setup.remap_config());
                    record_remap(t, std::slice::from_ref(&rs));
                    remap_stats.push(rs);
                    let repair = t.time("repair", || dra_encoding::insert_set_last_reg(f, &enc));
                    record_repair(t, &repair);
                    if setup.faults.fail_verify_funcs.contains(&fi) {
                        return Err(PipelineError::Injected {
                            stage: "verify",
                            func: fi,
                        });
                    }
                    t.time("verify", || dra_encoding::verify_function(f, &enc))?;
                }
            }
        }
    }

    // Differential approaches need the repair pass and verification.
    // (Adaptive handled repairs per function above.)
    if approach.is_differential() {
        let enc = EncodingConfig::new(setup.diff);
        let repair = t.time("repair", || insert_set_last_reg_program(p, &enc));
        record_repair(t, &repair);
        check_injected(&setup.faults.fail_verify_funcs, "verify", p.funcs.len())?;
        t.time("verify", || verify_program(p, &enc))?;
    }
    if setup.check {
        if approach != Approach::Adaptive {
            enc_flags = vec![approach.is_differential(); p.funcs.len()];
        }
        check_program(p, &records, &enc_flags, setup, t)?;
    }
    Ok(remap_stats)
}

/// One function's share of the differential pipeline. The `*_program`
/// passes are per-function loops, so this produces exactly the code the
/// program-level attempt would have produced for that function — degraded
/// runs keep every *surviving* function bit-identical to a clean compile.
fn compile_function_attempt(
    f: &mut Function,
    fi: usize,
    approach: Approach,
    setup: &LowEndSetup,
    pressure: Option<usize>,
    t: &mut Telemetry,
) -> Result<Vec<RemapStats>, PipelineError> {
    let faults = &setup.faults;
    let enc = EncodingConfig::new(setup.diff);
    let mut remap_stats = Vec::new();
    let record = setup.check;
    let rec: Option<AllocationRecord>;
    match approach {
        Approach::Baseline | Approach::OSpill => {
            unreachable!("direct approaches have no differential path to retry")
        }
        Approach::Remapping | Approach::Select => {
            if faults.fail_alloc_funcs.contains(&fi) {
                return Err(PipelineError::Injected {
                    stage: "alloc",
                    func: fi,
                });
            }
            let mut cfg = if approach == Approach::Remapping {
                AllocConfig::baseline(setup.diff.reg_n())
            } else {
                AllocConfig::differential(setup.diff)
            };
            cfg.call_clobbers = setup.call_clobbers.clone();
            let (s, r) = t.time("alloc", || DenseIrc.allocate_fn(f, &cfg, record))?;
            record_allocator_stats(t, &s);
            rec = r;
            let rs = dra_regalloc::remap_function(f, &setup.remap_config());
            record_remap(t, std::slice::from_ref(&rs));
            remap_stats.push(rs);
        }
        Approach::Coalesce => {
            if faults.fail_alloc_funcs.contains(&fi) {
                return Err(PipelineError::Injected {
                    stage: "alloc",
                    func: fi,
                });
            }
            let mut cfg = AllocConfig::differential(setup.diff);
            cfg.call_clobbers = setup.call_clobbers.clone();
            let (s, r) = t.time("alloc", || Coalescing.allocate_fn(f, &cfg, record))?;
            record_allocator_stats(t, &s);
            rec = r;
            let rs = dra_regalloc::remap_function(f, &setup.remap_config());
            record_remap(t, std::slice::from_ref(&rs));
            remap_stats.push(rs);
        }
        Approach::Adaptive => {
            let pressure =
                pressure.unwrap_or_else(|| dra_ir::liveness::max_pressure_of(f));
            if pressure <= setup.direct_regs as usize {
                let mut cfg = AllocConfig::baseline(setup.direct_regs);
                cfg.call_clobbers = setup.call_clobbers.clone();
                let (s, r) = t.time("alloc", || DenseIrc.allocate_fn(f, &cfg, record))?;
                record_allocator_stats(t, &s);
                if setup.check {
                    check_function(f, r.as_ref(), None, t)?;
                }
            } else {
                if faults.fail_alloc_funcs.contains(&fi) {
                    return Err(PipelineError::Injected {
                        stage: "alloc",
                        func: fi,
                    });
                }
                let mut cfg = AllocConfig::differential(setup.diff);
                cfg.call_clobbers = setup.call_clobbers.clone();
                let (s, r) = t.time("alloc", || DenseIrc.allocate_fn(f, &cfg, record))?;
                record_allocator_stats(t, &s);
                let rs = dra_regalloc::remap_function(f, &setup.remap_config());
                record_remap(t, std::slice::from_ref(&rs));
                remap_stats.push(rs);
                let repair = t.time("repair", || dra_encoding::insert_set_last_reg(f, &enc));
                record_repair(t, &repair);
                if faults.fail_verify_funcs.contains(&fi) {
                    return Err(PipelineError::Injected {
                        stage: "verify",
                        func: fi,
                    });
                }
                t.time("verify", || dra_encoding::verify_function(f, &enc))?;
                if setup.check {
                    check_function(f, r.as_ref(), Some(&enc), t)?;
                }
            }
            return Ok(remap_stats);
        }
    }
    let repair = t.time("repair", || dra_encoding::insert_set_last_reg(f, &enc));
    record_repair(t, &repair);
    if faults.fail_verify_funcs.contains(&fi) {
        return Err(PipelineError::Injected {
            stage: "verify",
            func: fi,
        });
    }
    t.time("verify", || dra_encoding::verify_function(f, &enc))?;
    if setup.check {
        check_function(f, rec.as_ref(), Some(&enc), t)?;
    }
    Ok(remap_stats)
}

/// The degradation lattice's middle rung: recompile the pristine program
/// function by function, keeping every function whose differential
/// pipeline succeeds and dropping exactly the failing ones to direct
/// encoding (`RegN = DiffN =` [`LowEndSetup::direct_regs`], repair-free).
///
/// Each degraded function is recorded in the `degrade.*` counters (cause
/// via [`degrade_counter`]) and marked with
/// [`RemapStats::degraded_marker`] in the returned stats so downstream
/// reporting can see the holes. The bottom of the lattice — direct
/// allocation itself failing — is a hard error.
fn compile_program_degraded(
    p: &mut Program,
    pristine: Program,
    approach: Approach,
    setup: &LowEndSetup,
    pressures: Option<&[usize]>,
    t: &mut Telemetry,
) -> Result<Vec<RemapStats>, PipelineError> {
    *p = pristine;
    let mut remap_stats = Vec::new();
    for (fi, f) in p.funcs.iter_mut().enumerate() {
        let pressure = pressures.map(|ps| ps[fi]);
        let mut attempt = f.clone();
        match compile_function_attempt(&mut attempt, fi, approach, setup, pressure, t) {
            Ok(mut rs) => {
                *f = attempt;
                remap_stats.append(&mut rs);
            }
            Err(e) => {
                t.count("degrade.functions", 1);
                t.count(degrade_counter(&e), 1);
                // `f` is still pristine (the attempt ran on a clone):
                // compile it direct.
                let differential_func = match approach {
                    Approach::Adaptive => {
                        let pr = pressure
                            .unwrap_or_else(|| dra_ir::liveness::max_pressure_of(f));
                        pr > setup.direct_regs as usize
                    }
                    _ => true,
                };
                let mut cfg = AllocConfig::baseline(setup.direct_regs);
                cfg.call_clobbers = setup.call_clobbers.clone();
                let (s, rec) = t.time("alloc", || DenseIrc.allocate_fn(f, &cfg, setup.check))?;
                record_allocator_stats(t, &s);
                if setup.check {
                    // The degraded function is direct-encoded: the
                    // substitution check applies, the decoder replay
                    // doesn't.
                    check_function(f, rec.as_ref(), None, t)?;
                }
                if differential_func {
                    remap_stats.push(RemapStats::degraded_marker());
                }
            }
        }
    }
    Ok(remap_stats)
}

/// Shared tail of every `compile_and_run*` front end: simulate the
/// compiled program, record the simulator's counters and span into
/// `telemetry`, and assemble the [`LowEndRun`].
///
/// Failure returns the telemetry alongside the error so
/// [`finish_run_or_degrade`] can carry the attempt's record into the
/// degraded re-run.
pub(crate) fn finish_run(
    program: Program,
    approach: Approach,
    setup: &LowEndSetup,
    remap: Vec<RemapStats>,
    mut telemetry: Telemetry,
) -> Result<LowEndRun, (PipelineError, Telemetry)> {
    let set_last_regs = program.count_insts(|i| i.is_set_last_reg());
    let sim: SimResult =
        match telemetry.time("simulate", || simulate(&program, &setup.machine, &setup.args)) {
            Ok(sim) => sim,
            Err(e) => return Err((PipelineError::Sim(e), telemetry)),
        };
    for (name, value) in sim.counters() {
        telemetry.count(name, value);
    }
    let geometry: IsaGeometry = setup.machine.geometry;
    Ok(LowEndRun {
        approach,
        remap,
        spill_insts: program.count_insts(|i| i.is_spill()),
        set_last_regs,
        total_insts: program.num_insts(),
        code_bits: code_size_bits(&program, &geometry),
        cycles: sim.cycles,
        dynamic_spills: sim.spill_accesses,
        dynamic_set_last_regs: sim.set_last_regs,
        icache_misses: sim.icache_misses,
        dcache_misses: sim.dcache_misses,
        ret_value: sim.ret_value,
        entry_trace: sim.entry_trace,
        block_counts: sim.block_counts,
        telemetry,
        program,
    })
}

/// The last rung of the degradation lattice: run [`finish_run`], and on a
/// simulation failure of a *differential* artifact (including one
/// injected via [`PipelineFaults::fail_sim`]) recompile the pristine
/// `source` program direct-encoded and simulate that instead — counted as
/// `degrade.sim` (plus `degrade.programs`/`degrade.functions`) and marked
/// in every [`RemapStats`] slot.
///
/// With no `source`, with [`LowEndSetup::degrade`] off, or for an already
/// direct approach, a failure is simply returned.
pub(crate) fn finish_run_or_degrade(
    source: Option<&Program>,
    program: Program,
    approach: Approach,
    setup: &LowEndSetup,
    remap: Vec<RemapStats>,
    telemetry: Telemetry,
) -> Result<LowEndRun, PipelineError> {
    let attempt = if setup.faults.fail_sim && approach.can_degrade() {
        Err((
            PipelineError::Injected {
                stage: "simulate",
                func: 0,
            },
            telemetry,
        ))
    } else {
        finish_run(program, approach, setup, remap, telemetry)
    };
    match attempt {
        Ok(run) => Ok(run),
        Err((e, mut telemetry)) => {
            let degradable = setup.degrade && approach.can_degrade();
            let Some(src) = source.filter(|_| degradable) else {
                return Err(e);
            };
            telemetry.count("degrade.sim", 1);
            telemetry.count("degrade.programs", 1);
            telemetry.count(degrade_counter(&e), 0); // ensure the cause key exists
            // The differential artifact is unrunnable; rebuild the whole
            // program at the bottom of the lattice (direct encoding,
            // repair-free) and simulate that.
            let mut p = src.clone();
            let mut cfg = AllocConfig::baseline(setup.direct_regs);
            cfg.call_clobbers = setup.call_clobbers.clone();
            let (s, recs) =
                telemetry.time("alloc", || allocate_program(&DenseIrc, &mut p, &cfg, setup.check))?;
            record_allocator_stats(&mut telemetry, &s);
            if setup.check {
                let enc_flags = vec![false; p.funcs.len()];
                check_program(&p, &recs, &enc_flags, setup, &mut telemetry)?;
            }
            telemetry.count("degrade.functions", p.funcs.len() as u64);
            let remap = vec![RemapStats::degraded_marker(); p.funcs.len()];
            finish_run(p, approach, setup, remap, telemetry).map_err(|(e, _)| e)
        }
    }
}

/// Compile and simulate a benchmark; the full Figure 11–14 measurement.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_and_run(
    name: &str,
    approach: Approach,
    setup: &LowEndSetup,
) -> Result<LowEndRun, PipelineError> {
    let mut telemetry = Telemetry::new();
    let mut program = telemetry.time("parse", || benchmark(name));
    let source = (setup.degrade && approach.can_degrade()).then(|| program.clone());
    let remap = compile_program_telemetry(&mut program, approach, setup, None, &mut telemetry)?;
    finish_run_or_degrade(source.as_ref(), program, approach, setup, remap, telemetry)
}

/// [`compile_and_run`] over arbitrary (possibly hostile) program *text*
/// instead of a named benchmark: parse, validate, then run the normal
/// pipeline. Parse and validation failures are structured
/// [`PipelineError`]s — malformed text can never panic a batch.
///
/// # Errors
///
/// [`PipelineError::Parse`] / [`PipelineError::Validate`] for bad text,
/// otherwise as [`compile_and_run`].
pub fn compile_and_run_source(
    text: &str,
    approach: Approach,
    setup: &LowEndSetup,
) -> Result<LowEndRun, PipelineError> {
    let mut telemetry = Telemetry::new();
    let mut program = telemetry.time("parse", || dra_ir::parse::parse_program(text))?;
    for (fi, f) in program.funcs.iter().enumerate() {
        dra_ir::validate::validate_function(f).map_err(|e| PipelineError::Validate {
            func: fi,
            message: e.to_string(),
        })?;
    }
    // Cross-function checks (callee indices) on top of the per-function
    // pass above (which pinpointed the offending function).
    dra_ir::validate::validate_program(&program).map_err(|e| PipelineError::Validate {
        func: 0,
        message: e.to_string(),
    })?;
    let source = (setup.degrade && approach.can_degrade()).then(|| program.clone());
    let remap = compile_program_telemetry(&mut program, approach, setup, None, &mut telemetry)?;
    finish_run_or_degrade(source.as_ref(), program, approach, setup, remap, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_workloads::benchmark_names;

    #[test]
    fn all_approaches_compile_and_agree_on_crc32() {
        let setup = LowEndSetup::default();
        let runs: Vec<LowEndRun> = Approach::ALL
            .iter()
            .map(|&a| compile_and_run("crc32", a, &setup).unwrap())
            .collect();
        let expected = runs[0].ret_value;
        for r in &runs {
            assert_eq!(
                r.ret_value,
                expected,
                "{} computed a different answer",
                r.approach.label()
            );
        }
    }

    #[test]
    fn differential_approaches_reduce_spills_on_pressured_bench() {
        let setup = LowEndSetup::default();
        let base = compile_and_run("sha", Approach::Baseline, &setup).unwrap();
        let select = compile_and_run("sha", Approach::Select, &setup).unwrap();
        assert!(
            select.spill_insts < base.spill_insts,
            "12 registers must beat 8: {} vs {}",
            select.spill_insts,
            base.spill_insts
        );
        assert!(select.set_last_regs > 0, "differential encoding has a cost");
        assert_eq!(base.set_last_regs, 0, "baseline is direct-encoded");
    }

    #[test]
    fn remapping_has_higher_cost_than_select() {
        // Figure 12's headline: the post-pass generates far more
        // set_last_regs than the integrated approaches.
        let setup = LowEndSetup::default();
        let mut remap_total = 0usize;
        let mut select_total = 0usize;
        for name in ["sha", "blowfish", "fft"] {
            remap_total += compile_and_run(name, Approach::Remapping, &setup)
                .unwrap()
                .set_last_regs;
            select_total += compile_and_run(name, Approach::Select, &setup)
                .unwrap()
                .set_last_regs;
        }
        assert!(
            remap_total > select_total,
            "remapping {remap_total} vs select {select_total}"
        );
    }

    #[test]
    fn every_benchmark_runs_under_baseline_and_coalesce() {
        let setup = LowEndSetup::default();
        for name in benchmark_names() {
            let b = compile_and_run(name, Approach::Baseline, &setup)
                .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
            let c = compile_and_run(name, Approach::Coalesce, &setup)
                .unwrap_or_else(|e| panic!("{name} coalesce: {e}"));
            assert_eq!(b.ret_value, c.ret_value, "{name} result mismatch");
        }
    }

    #[test]
    fn metrics_are_consistent() {
        let setup = LowEndSetup::default();
        let r = compile_and_run("bitcount", Approach::Select, &setup).unwrap();
        assert!(r.spill_percent() >= 0.0 && r.spill_percent() <= 100.0);
        assert!(r.cost_percent() >= 0.0 && r.cost_percent() <= 100.0);
        assert!(r.code_bits >= 16 * r.total_insts as u64);
        assert!(r.cycles > 0);
    }
}
