//! Corpus-scale workloads: profile artifacts on disk and the end-to-end
//! throughput benchmark.
//!
//! The mibench substitutes are ten programs; the paper's high-end suite
//! is 1928 loops. Neither says anything about how the pipeline behaves
//! at *corpus* scale — tens of thousands of distinct functions through
//! one resident [`CompileSession`] — which is exactly the regime the
//! serving work (PR 7) and the scratch arenas (this PR) target. This
//! module closes the loop:
//!
//! * **`dra-profile-v1`** — a [`WorkloadProfile`] serialized with the
//!   same hand-rolled JSON the telemetry schema uses (no dependencies),
//!   so a profile extracted from any run can be checked in, diffed, and
//!   fed back to the generator ([`profile_to_json`] /
//!   [`profile_from_json`], both gated by
//!   [`dra_workloads::validate_profile`]).
//! * [`run_corpus_compile`] — `drac corpus`: generate a corpus from a
//!   profile and push every program through the session-backed batch
//!   driver with the symbolic checker on; any checker rejection is a
//!   hard failure.
//! * [`run_corpus_bench`] — `drac bench-corpus`: the throughput
//!   experiment. One generated corpus, compiled at each worker count
//!   with the scratch arenas off and then on, reporting jobs/sec, the
//!   arena speedup per thread count, per-stage spans, cache evictions
//!   (the caches are deliberately overrun — a 10k-function corpus
//!   against a 256-entry result cache is the eviction path's first real
//!   workout), and a peak-RSS estimate.
//!
//! Determinism: the corpus itself is a pure function of
//! `(profile, seed, count)` at any thread count (see
//! [`dra_workloads::generate_from_profile`]); the bench's *timings* are
//! wall-clock and excluded from any byte-stable artifact.

use crate::batch::run_batch;
use crate::lowend::{Approach, LowEndSetup};
use crate::session::CompileSession;
use crate::telemetry::{escape_json, parse_json, Json, Telemetry};
use dra_workloads::profile::{
    InstMix, WorkloadProfile, DEPTH_BUCKETS, PRESSURE_BUCKETS, PROFILE_SCHEMA,
};
use dra_workloads::{generate_from_profile, validate_profile};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

// ---------------------------------------------------------------------------
// dra-profile-v1 serialization
// ---------------------------------------------------------------------------

fn json_f64(v: f64) -> String {
    // `{}` on f64 prints the shortest representation that round-trips,
    // and never produces exponents for the magnitudes a profile holds.
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

fn json_array(values: &[f64]) -> String {
    let parts: Vec<String> = values.iter().map(|v| json_f64(*v)).collect();
    format!("[{}]", parts.join(","))
}

/// Serialize a profile as a `dra-profile-v1` JSON document (validated
/// first — a malformed profile must not reach disk).
///
/// # Errors
///
/// Whatever [`validate_profile`] rejects.
pub fn profile_to_json(p: &WorkloadProfile) -> Result<String, String> {
    validate_profile(p)?;
    let m = &p.inst_mix;
    let c = &p.cfg_shape;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema\": \"{PROFILE_SCHEMA}\",\n  \"name\": \"{}\",\n",
        escape_json(&p.name)
    );
    let _ = write!(
        out,
        "  \"inst_mix\": {{\"alu\": {}, \"muldiv\": {}, \"mem\": {}, \"mov\": {}, \"call\": {}, \"branch\": {}}},\n",
        json_f64(m.alu),
        json_f64(m.muldiv),
        json_f64(m.mem),
        json_f64(m.mov),
        json_f64(m.call),
        json_f64(m.branch),
    );
    let _ = write!(
        out,
        "  \"pressure_hist\": {},\n  \"loop_depth_hist\": {},\n",
        json_array(&p.pressure_hist),
        json_array(&p.loop_depth_hist),
    );
    let _ = write!(
        out,
        "  \"cfg_shape\": {{\"avg_blocks\": {}, \"avg_block_len\": {}, \"branch_density\": {}, \"avg_funcs\": {}}},\n",
        json_f64(c.avg_blocks),
        json_f64(c.avg_block_len),
        json_f64(c.branch_density),
        json_f64(c.avg_funcs),
    );
    let _ = write!(out, "  \"call_density\": {}\n}}\n", json_f64(p.call_density));
    Ok(out)
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn get_f64(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Json::Num(n) => Ok(*n),
        other => Err(format!("{key:?} is not a number: {other:?}")),
    }
}

fn get_hist<const N: usize>(obj: &BTreeMap<String, Json>, key: &str) -> Result<[f64; N], String> {
    let Json::Arr(items) = get(obj, key)? else {
        return Err(format!("{key:?} is not an array"));
    };
    if items.len() != N {
        return Err(format!("{key:?} has {} entries, expected {N}", items.len()));
    }
    let mut out = [0.0; N];
    for (i, item) in items.iter().enumerate() {
        match item {
            Json::Num(n) => out[i] = *n,
            other => return Err(format!("{key:?}[{i}] is not a number: {other:?}")),
        }
    }
    Ok(out)
}

/// Parse and validate a `dra-profile-v1` JSON document.
///
/// # Errors
///
/// Malformed JSON, a wrong/missing `schema`, missing or mistyped keys,
/// or a profile [`validate_profile`] rejects.
pub fn profile_from_json(src: &str) -> Result<WorkloadProfile, String> {
    let doc = parse_json(src)?;
    let obj = doc.as_obj().ok_or("profile document is not an object")?;
    match get(obj, "schema")?.as_str() {
        Some(PROFILE_SCHEMA) => {}
        Some(other) => return Err(format!("schema {other:?}, expected {PROFILE_SCHEMA:?}")),
        None => return Err("schema is not a string".to_string()),
    }
    let name = get(obj, "name")?
        .as_str()
        .ok_or("name is not a string")?
        .to_string();
    let mix = get(obj, "inst_mix")?
        .as_obj()
        .ok_or("inst_mix is not an object")?;
    let shape = get(obj, "cfg_shape")?
        .as_obj()
        .ok_or("cfg_shape is not an object")?;
    let profile = WorkloadProfile {
        name,
        inst_mix: InstMix {
            alu: get_f64(mix, "alu")?,
            muldiv: get_f64(mix, "muldiv")?,
            mem: get_f64(mix, "mem")?,
            mov: get_f64(mix, "mov")?,
            call: get_f64(mix, "call")?,
            branch: get_f64(mix, "branch")?,
        },
        pressure_hist: get_hist::<PRESSURE_BUCKETS>(obj, "pressure_hist")?,
        loop_depth_hist: get_hist::<DEPTH_BUCKETS>(obj, "loop_depth_hist")?,
        cfg_shape: dra_workloads::profile::CfgShape {
            avg_blocks: get_f64(shape, "avg_blocks")?,
            avg_block_len: get_f64(shape, "avg_block_len")?,
            branch_density: get_f64(shape, "branch_density")?,
            avg_funcs: get_f64(shape, "avg_funcs")?,
        },
        call_density: get_f64(obj, "call_density")?,
    };
    validate_profile(&profile)?;
    Ok(profile)
}

/// Write `profile` to `<root>/results/profiles/<name>.json`, creating
/// the directory as needed, and return the path.
///
/// # Errors
///
/// Serialization failures (invalid profile) as `String`, I/O failures
/// stringified with the path they concern.
pub fn write_profile(root: &Path, profile: &WorkloadProfile) -> Result<PathBuf, String> {
    let json = profile_to_json(profile)?;
    let dir = root.join("results").join("profiles");
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(format!("{}.json", profile.name));
    std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Resolve a profile spec: a builtin name (`embedded-dsp`,
/// `pointer-chasing`, `deep-cfg`, `call-heavy`) or a path to a
/// `dra-profile-v1` JSON file.
///
/// # Errors
///
/// An unknown name that is not a readable file, or an invalid document.
pub fn resolve_profile(spec: &str) -> Result<WorkloadProfile, String> {
    if let Some(p) = dra_workloads::builtin_profile(spec) {
        return Ok(p);
    }
    let path = Path::new(spec);
    if !path.is_file() {
        let names: Vec<String> = dra_workloads::builtin_profiles()
            .into_iter()
            .map(|p| p.name)
            .collect();
        return Err(format!(
            "{spec:?} is neither a builtin profile ({}) nor a profile JSON file",
            names.join(", ")
        ));
    }
    let src = std::fs::read_to_string(path).map_err(|e| format!("{spec}: {e}"))?;
    profile_from_json(&src).map_err(|e| format!("{spec}: {e}"))
}

// ---------------------------------------------------------------------------
// Corpus compilation (drac corpus)
// ---------------------------------------------------------------------------

/// The setup corpus runs compile under: single-threaded remap with a
/// reduced restart budget (the batch driver is the parallelism, and a
/// thousand restarts per generated function would measure the search,
/// not the pipeline).
pub fn corpus_setup() -> LowEndSetup {
    let mut setup = LowEndSetup::default();
    setup.remap_starts = 24;
    setup.remap_threads = 1;
    setup
}

/// What one corpus compile+check run observed.
pub struct CorpusReport {
    /// Programs pushed through the session.
    pub programs: usize,
    /// Functions across those programs (the requested `--count`).
    pub functions: usize,
    /// Compiles that errored (checker rejections included).
    pub errors: u64,
    /// Symbolic-checker violations (from the merged `checker.*` counters).
    pub violations: u64,
    /// Merged per-cell telemetry plus the `corpus.*` counters.
    pub telemetry: Telemetry,
}

/// Generate `count` functions from `profile` and compile every program
/// through a fresh [`CompileSession`] with the symbolic checker on.
/// Degradation stays enabled (matching production corpus compiles), so
/// a violation surfaces in `checker.violations` rather than as an
/// error; both are reported.
///
/// # Errors
///
/// Generation failures (invalid profile) as `String`.
pub fn run_corpus_compile(
    profile: &WorkloadProfile,
    count: usize,
    seed: u64,
    threads: usize,
    setup: &LowEndSetup,
) -> Result<CorpusReport, String> {
    let mut setup = setup.clone();
    setup.check = true;
    let programs = generate_from_profile(profile, seed, count)?;
    let texts: Vec<String> = programs.iter().map(|p| p.to_string()).collect();
    drop(programs);

    let session = CompileSession::new(setup);
    let mut telemetry = Telemetry::new();
    let t0 = Instant::now();
    let cells = run_batch(&texts, threads, |_, text| {
        session
            .compile_source(text, Approach::Adaptive)
            .map(|(run, _)| run.telemetry.clone())
    });
    let elapsed = t0.elapsed().as_nanos() as u64;

    let mut errors = 0u64;
    for cell in &cells {
        match cell {
            Ok(t) => telemetry.merge(t),
            Err(_) => errors += 1,
        }
    }
    session.record_counters(&mut telemetry);
    telemetry.count("corpus.programs", texts.len() as u64);
    telemetry.count("corpus.functions", count as u64);
    telemetry.count("corpus.errors", errors);
    telemetry.span_ns("corpus", elapsed);
    Ok(CorpusReport {
        programs: texts.len(),
        functions: count,
        errors,
        violations: telemetry.counter("checker.violations"),
        telemetry,
    })
}

// ---------------------------------------------------------------------------
// Throughput benchmark (drac bench-corpus)
// ---------------------------------------------------------------------------

/// Configuration for [`run_corpus_bench`].
pub struct CorpusBenchConfig {
    /// The workload shape to synthesize.
    pub profile: WorkloadProfile,
    /// Total functions in the corpus.
    pub count: usize,
    /// Generator seed.
    pub seed: u64,
    /// Worker counts to sweep.
    pub threads: Vec<usize>,
    /// The per-compile setup (see [`corpus_setup`]).
    pub setup: LowEndSetup,
}

impl CorpusBenchConfig {
    /// The headline experiment: 10k functions at 1, 2, and 8 workers.
    pub fn standard(profile: WorkloadProfile) -> CorpusBenchConfig {
        CorpusBenchConfig {
            profile,
            count: 10_000,
            seed: 0,
            threads: vec![1, 2, 8],
            setup: corpus_setup(),
        }
    }

    /// CI scale: a few hundred functions, two worker counts.
    pub fn smoke(profile: WorkloadProfile) -> CorpusBenchConfig {
        CorpusBenchConfig {
            profile,
            count: 200,
            seed: 0,
            threads: vec![1, 2],
            setup: corpus_setup(),
        }
    }
}

/// One (worker count, arenas on/off) measurement.
pub struct CorpusPhase {
    /// Batch-driver workers.
    pub threads: usize,
    /// Whether the scratch arenas were enabled.
    pub arena: bool,
    /// Wall-clock for the whole corpus.
    pub elapsed_ns: u64,
    /// Programs compiled per second.
    pub jobs_per_sec: f64,
    /// Functions compiled per second.
    pub functions_per_sec: f64,
    /// Failed compiles (must be zero on a healthy corpus).
    pub errors: u64,
    /// Source-cache evictions during the phase.
    pub source_evictions: u64,
    /// Result-cache evictions during the phase (a corpus overruns the
    /// result cache by design — this counts the overrun).
    pub result_evictions: u64,
}

/// The full bench result.
pub struct CorpusBenchReport {
    /// Profile name.
    pub profile: String,
    /// Requested function count.
    pub functions: usize,
    /// Programs those functions were grouped into.
    pub programs: usize,
    /// Generator seed.
    pub seed: u64,
    /// Wall-clock spent generating + rendering the corpus.
    pub generate_ns: u64,
    /// Every measured phase, in sweep order.
    pub phases: Vec<CorpusPhase>,
    /// Per-stage spans from the single-threaded arenas-on phase (the
    /// only phase whose span sum decomposes its own wall-clock).
    pub spans_ns: BTreeMap<String, u64>,
    /// `VmHWM` after the sweep, if the platform exposes it (linux).
    pub peak_rss_bytes: Option<u64>,
}

impl CorpusBenchReport {
    /// Arena speedup (arenas-off elapsed / arenas-on elapsed) per worker
    /// count, in sweep order.
    pub fn arena_speedups(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        for pair in self.phases.chunks(2) {
            if let [off, on] = pair {
                debug_assert!(!off.arena && on.arena && off.threads == on.threads);
                out.push((off.threads, off.elapsed_ns as f64 / on.elapsed_ns.max(1) as f64));
            }
        }
        out
    }

    /// The `dra-corpus-bench-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"dra-corpus-bench-v1\",\n  \"profile\": \"{}\",\n  \"functions\": {},\n  \"programs\": {},\n  \"seed\": {},\n  \"generate_ns\": {},\n",
            escape_json(&self.profile),
            self.functions,
            self.programs,
            self.seed,
            self.generate_ns,
        );
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"threads\": {}, \"arena\": {}, \"elapsed_ns\": {}, \"jobs_per_sec\": {:.3}, \"functions_per_sec\": {:.3}, \"errors\": {}, \"source_evictions\": {}, \"result_evictions\": {}}}{}\n",
                p.threads,
                p.arena,
                p.elapsed_ns,
                p.jobs_per_sec,
                p.functions_per_sec,
                p.errors,
                p.source_evictions,
                p.result_evictions,
                if i + 1 < self.phases.len() { "," } else { "" },
            );
        }
        out.push_str("  ],\n  \"arena_speedup\": {");
        let speedups = self.arena_speedups();
        for (i, (threads, s)) in speedups.iter().enumerate() {
            let _ = write!(
                out,
                "\"{threads}\": {s:.4}{}",
                if i + 1 < speedups.len() { ", " } else { "" }
            );
        }
        out.push_str("},\n  \"spans_ns\": {");
        for (i, (k, v)) in self.spans_ns.iter().enumerate() {
            let _ = write!(
                out,
                "\"{}\": {v}{}",
                escape_json(k),
                if i + 1 < self.spans_ns.len() { ", " } else { "" }
            );
        }
        let _ = write!(
            out,
            "}},\n  \"peak_rss_bytes\": {}\n}}\n",
            self.peak_rss_bytes
                .map_or("null".to_string(), |v| v.to_string()),
        );
        out
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "corpus: {} — {} functions in {} programs (seed {})",
            self.profile, self.functions, self.programs, self.seed
        );
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>12} {:>12} {:>8}",
            "threads", "arena", "jobs/sec", "funcs/sec", "errors"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<8} {:>6} {:>12.1} {:>12.1} {:>8}",
                p.threads,
                if p.arena { "on" } else { "off" },
                p.jobs_per_sec,
                p.functions_per_sec,
                p.errors
            );
        }
        for (threads, s) in self.arena_speedups() {
            let _ = writeln!(out, "arena speedup @{threads} threads: {s:.3}x");
        }
        if let Some(rss) = self.peak_rss_bytes {
            let _ = writeln!(out, "peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
        }
        out
    }
}

/// `VmHWM` (peak resident set) from `/proc/self/status`, in bytes.
/// `None` where proc is unavailable — the bench reports the estimate as
/// absent rather than faking one.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Run the corpus throughput benchmark: one generated corpus, each
/// worker count measured with the scratch arenas off and then on (a
/// fresh [`CompileSession`] per phase, so phases are independent and
/// every phase compiles every program). The global arena switch is
/// restored on exit.
///
/// # Errors
///
/// Generation failures as `String`.
pub fn run_corpus_bench(cfg: &CorpusBenchConfig) -> Result<CorpusBenchReport, String> {
    let t0 = Instant::now();
    let programs = generate_from_profile(&cfg.profile, cfg.seed, cfg.count)?;
    let texts: Vec<String> = programs.iter().map(|p| p.to_string()).collect();
    let generate_ns = t0.elapsed().as_nanos() as u64;
    drop(programs);

    let prev = dra_ir::scratch::reuse_enabled();
    let mut phases = Vec::new();
    let mut spans: BTreeMap<String, u64> = BTreeMap::new();
    for &threads in &cfg.threads {
        for arena in [false, true] {
            dra_ir::scratch::set_reuse(arena);
            let session = CompileSession::new(cfg.setup.clone());
            let t0 = Instant::now();
            let cells = run_batch(&texts, threads, |_, text| {
                session
                    .compile_source(text, Approach::Adaptive)
                    .map(|(run, _)| run.telemetry.clone())
            });
            let elapsed = t0.elapsed().as_nanos().max(1) as u64;
            let errors = cells.iter().filter(|c| c.is_err()).count() as u64;
            // Per-stage spans: only the single-threaded arenas-on phase
            // decomposes its own wall-clock (parallel phases sum worker
            // time across threads).
            if arena && threads == 1 {
                let mut merged = Telemetry::new();
                for t in cells.iter().flatten() {
                    merged.merge(t);
                }
                spans = merged.spans().clone();
            }
            let mut counters = Telemetry::new();
            session.record_counters(&mut counters);
            let secs = elapsed as f64 / 1e9;
            phases.push(CorpusPhase {
                threads,
                arena,
                elapsed_ns: elapsed,
                jobs_per_sec: texts.len() as f64 / secs,
                functions_per_sec: cfg.count as f64 / secs,
                errors,
                source_evictions: counters.counter("source_cache.evictions"),
                result_evictions: counters.counter("result_cache.evictions"),
            });
        }
    }
    dra_ir::scratch::set_reuse(prev);

    Ok(CorpusBenchReport {
        profile: cfg.profile.name.clone(),
        functions: cfg.count,
        programs: texts.len(),
        seed: cfg.seed,
        generate_ns,
        phases,
        spans_ns: spans,
        peak_rss_bytes: peak_rss_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_round_trip_through_json() {
        for profile in dra_workloads::builtin_profiles() {
            let json = profile_to_json(&profile).unwrap();
            let back = profile_from_json(&json).unwrap();
            assert_eq!(profile, back, "{}", profile.name);
        }
    }

    #[test]
    fn malformed_profile_documents_are_rejected() {
        let good = profile_to_json(&dra_workloads::builtin_profile("deep-cfg").unwrap()).unwrap();
        for (label, doc) in [
            ("garbage", "not json".to_string()),
            ("array", "[1,2,3]".to_string()),
            ("schema", good.replace("dra-profile-v1", "dra-profile-v0")),
            ("missing", good.replace("\"call_density\"", "\"call_densities\"")),
            ("histogram", good.replace("\"pressure_hist\": [", "\"pressure_hist\": [0.5,")),
        ] {
            assert!(profile_from_json(&doc).is_err(), "{label} must be rejected");
        }
        // Structurally valid JSON carrying an invalid profile (negative
        // mass) must fail the validate gate, not just the parser.
        let negative = good.replace("\"call_density\": 0", "\"call_density\": -1");
        assert!(profile_from_json(&negative).is_err());
    }

    #[test]
    fn write_profile_emits_a_readable_artifact() {
        let dir = std::env::temp_dir().join(format!("dra-profile-test-{}", std::process::id()));
        let profile = dra_workloads::builtin_profile("call-heavy").unwrap();
        let path = write_profile(&dir, &profile).unwrap();
        assert!(path.ends_with("results/profiles/call-heavy.json"));
        let back = profile_from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(profile, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_prefers_builtins_and_reports_unknowns() {
        assert_eq!(resolve_profile("deep-cfg").unwrap().name, "deep-cfg");
        let err = resolve_profile("no-such-profile").unwrap_err();
        assert!(err.contains("embedded-dsp"), "error lists builtins: {err}");
    }

    #[test]
    fn corpus_compiles_clean_under_the_checker() {
        let profile = dra_workloads::builtin_profile("embedded-dsp").unwrap();
        let report = run_corpus_compile(&profile, 40, 7, 2, &corpus_setup()).unwrap();
        assert_eq!(report.functions, 40);
        assert!(report.programs > 0 && report.programs <= 40);
        assert_eq!(report.errors, 0, "corpus compiles must not error");
        assert_eq!(report.violations, 0, "checker must accept the corpus");
        assert!(report.telemetry.counter("checker.functions") >= 40);
    }

    #[test]
    fn corpus_bench_reports_every_phase() {
        let profile = dra_workloads::builtin_profile("pointer-chasing").unwrap();
        let mut cfg = CorpusBenchConfig::smoke(profile);
        cfg.count = 30;
        cfg.threads = vec![1, 2];
        let report = run_corpus_bench(&cfg).unwrap();
        assert_eq!(report.phases.len(), 4, "2 thread counts x arena off/on");
        for p in &report.phases {
            assert_eq!(p.errors, 0);
            assert!(p.jobs_per_sec > 0.0);
        }
        assert_eq!(report.arena_speedups().len(), 2);
        assert!(!report.spans_ns.is_empty(), "per-stage spans captured");
        let json = report.to_json();
        let doc = parse_json(&json).expect("bench JSON parses");
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["schema"].as_str(), Some("dra-corpus-bench-v1"));
        assert!(obj.contains_key("arena_speedup"));
        // The arena switch is restored for the rest of the process.
        assert!(dra_ir::scratch::reuse_enabled());
    }
}
