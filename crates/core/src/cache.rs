//! A small, dependency-free LRU cache used by the long-lived serving
//! layer.
//!
//! Both process-resident caches — [`crate::batch::SourceCache`] (parsed
//! benchmarks + MAXLIVE) and [`crate::session::CompileSession`]'s
//! allocation-result cache — are bounded by this policy so a daemon
//! serving an unbounded request stream holds a bounded working set. The
//! figure/table batch pipelines touch at most a few dozen distinct keys,
//! far below the default capacities, so for them the bound is inert: hit
//! and miss counts are unchanged and `evictions` stays zero, keeping the
//! batch telemetry contract (counters are schedule-invariant) intact.
//!
//! The implementation is a `HashMap` of values stamped with a logical
//! access clock plus a `BTreeMap` recency index (stamp → key): `get` and
//! `insert` are O(log n), eviction pops the smallest stamp. No wall
//! clock, no randomness — eviction order is a pure function of the access
//! sequence, which keeps cache behavior reproducible under the
//! deterministic load harness.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A least-recently-used cache with a fixed entry capacity.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Recency index: access stamp → key. Stamps are unique (the clock
    /// only moves forward), so this is a total order of staleness.
    recency: BTreeMap<u64, K>,
    clock: u64,
    capacity: usize,
    evictions: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    stamp: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(key) {
            Some(slot) => {
                self.recency.remove(&slot.stamp);
                slot.stamp = clock;
                self.recency.insert(clock, key.clone());
                Some(&slot.value)
            }
            None => None,
        }
    }

    /// True when `key` is cached, without touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert `key`, evicting the least-recently-used entry if the cache
    /// is full and `key` is new. An existing key is overwritten in place
    /// (and marked most-recently-used) without eviction.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.map.get_mut(&key) {
            self.recency.remove(&slot.stamp);
            slot.stamp = clock;
            slot.value = value;
            self.recency.insert(clock, key);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((_, stale)) = self.recency.pop_first() {
                self.map.remove(&stale);
                self.evictions += 1;
            }
        }
        self.map.insert(key.clone(), Slot { value, stamp: clock });
        self.recency.insert(clock, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_insert_roundtrip() {
        let mut c: LruCache<&str, u32> = LruCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 is the LRU entry.
        assert_eq!(c.get(&1), Some(&10));
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&1), Some(&11));
        // The overwrite refreshed 1; 2 is now the LRU entry.
        c.insert(3, 30);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn capacity_one_always_holds_the_latest() {
        let mut c: LruCache<u32, u32> = LruCache::new(0); // clamped to 1
        assert_eq!(c.capacity(), 1);
        for i in 0..10 {
            c.insert(i, i);
            assert_eq!(c.get(&i), Some(&i));
            assert_eq!(c.len(), 1);
        }
        assert_eq!(c.evictions(), 9);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // Same access sequence → same eviction victims, twice over.
        let run = || {
            let mut c: LruCache<u32, u32> = LruCache::new(3);
            let mut survivors = Vec::new();
            for i in 0..10 {
                c.insert(i, i);
                c.get(&(i / 2));
            }
            for i in 0..10 {
                if c.contains(&i) {
                    survivors.push(i);
                }
            }
            (survivors, c.evictions())
        };
        assert_eq!(run(), run());
    }
}
