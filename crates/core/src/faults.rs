//! Deterministic fault injection for the differential-encoding pipeline.
//!
//! The paper's safety story is that every decode hazard is *repaired or
//! rejected*: a `DiffW`-bit field can address `RegN > 2^DiffW` registers
//! only because out-of-range differences and multi-path `last_reg`
//! disagreements are caught before the stream ships. The happy-path tests
//! prove the repair pass establishes consistency; this module proves the
//! *detection* side by attacking the encoded stream directly.
//!
//! Two layers:
//!
//! * **Stream faults** ([`StreamFault`], [`run_fault_campaign`]) mutate an
//!   encoded field stream (or the decoder's power-on state) and adjudicate
//!   the result with [`adjudicate`]: every injected fault must be either
//!   **detected** (a structured [`DecodeError`] naming the site) or
//!   **provably benign** (the decoded trace is bit-equal to the clean
//!   decode). A fault that decodes successfully to *different* registers
//!   would be silent divergence — the outcome the encoding exists to make
//!   impossible — and is counted separately ([`FaultOutcome::Diverged`])
//!   so tests can assert it never happens.
//! * **Pipeline faults** ([`PipelineFaults`]) inject failures into the
//!   compile pipeline itself — worker panics in batch cells, per-function
//!   allocation/verification failures, simulation failures — to exercise
//!   the panic isolation in [`crate::batch`] and the degradation lattice
//!   in [`crate::lowend`].
//!
//! All randomness is a seeded [`SplitMix64`] stream: the same seed always
//! produces the same fault list, so a failing campaign is a reproducible
//! test case, not a flake.

use crate::telemetry::Telemetry;
use dra_encoding::{
    decode_trace_fields, encode_fields, DecodeError, EncodingConfig, InstFields, LastReg,
};
use dra_ir::{BlockId, Function, Inst, RegClass};
use std::collections::BTreeSet;
use std::fmt;

/// A SplitMix64 generator — the same finalizer the remap search derives
/// its per-start streams from, packaged as a stateful stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// One injectable corruption of an encoded stream, a repair instruction,
/// or the decoder's power-on state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamFault {
    /// Replace one field code with a different (possibly invalid) code.
    CorruptField {
        /// Block of the corrupted field.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// Field index within the instruction.
        field: usize,
        /// The substituted code.
        new_code: u16,
    },
    /// Drop a `set_last_reg` (replaced by `nop`, preserving stream shape).
    DropSet {
        /// Block of the dropped repair.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
    },
    /// Duplicate a `set_last_reg` immediately after itself.
    DuplicateSet {
        /// Block of the duplicated repair.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
    },
    /// Reorder a `set_last_reg` with the following instruction.
    SwapWithNext {
        /// Block of the reordered repair.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
    },
    /// Rewrite a `set_last_reg`'s value operand.
    FlipSetValue {
        /// Block of the rewritten repair.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
        /// The substituted value.
        new_value: u8,
    },
    /// Flip the decoder's power-on `last_reg` from unknown to a concrete
    /// (possibly out-of-range) value.
    FlipEntryState {
        /// The injected power-on register.
        value: u8,
    },
    /// Truncate one block's field stream before instruction `inst`.
    Truncate {
        /// Block whose stream is cut.
        block: BlockId,
        /// First instruction index with no stream entry after the cut.
        inst: usize,
    },
}

impl StreamFault {
    /// Short kind label for reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            StreamFault::CorruptField { .. } => "corrupt_field",
            StreamFault::DropSet { .. } => "drop_set",
            StreamFault::DuplicateSet { .. } => "duplicate_set",
            StreamFault::SwapWithNext { .. } => "swap_set",
            StreamFault::FlipSetValue { .. } => "flip_set_value",
            StreamFault::FlipEntryState { .. } => "flip_entry_state",
            StreamFault::Truncate { .. } => "truncate",
        }
    }
}

impl fmt::Display for StreamFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamFault::CorruptField {
                block,
                inst,
                field,
                new_code,
            } => write!(f, "corrupt field {block}:{inst}.{field} -> {new_code}"),
            StreamFault::DropSet { block, inst } => write!(f, "drop set_last_reg {block}:{inst}"),
            StreamFault::DuplicateSet { block, inst } => {
                write!(f, "duplicate set_last_reg {block}:{inst}")
            }
            StreamFault::SwapWithNext { block, inst } => {
                write!(f, "swap set_last_reg {block}:{inst} with successor")
            }
            StreamFault::FlipSetValue {
                block,
                inst,
                new_value,
            } => write!(f, "flip set_last_reg {block}:{inst} value -> r{new_value}"),
            StreamFault::FlipEntryState { value } => {
                write!(f, "flip power-on last_reg -> r{value}")
            }
            StreamFault::Truncate { block, inst } => {
                write!(f, "truncate stream of {block} before inst {inst}")
            }
        }
    }
}

/// Adjudication of one injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The decoder rejected the corrupted stream with a precise error.
    Detected(DecodeError),
    /// The dynamic decode along the trace was bit-equal to the clean
    /// decode, but the *static* symbolic checker
    /// ([`dra_regalloc::check_encoded_fields`]) rejected the faulted
    /// artifact — the fault is latent on this trace yet provably unsafe
    /// on some path. Counts as detected.
    DetectedStatic(String),
    /// Both adjudicators agree the fault is harmless: the decode is
    /// bit-equal to the clean decode *and* the symbolic checker accepts
    /// the faulted artifact on every path.
    Benign,
    /// The decode succeeded but produced different registers — silent
    /// divergence. Must never happen; campaigns assert the count is 0.
    Diverged,
}

/// Every `(block, inst, field)` holding a code in the stream.
fn field_sites(encoded: &[Vec<InstFields>]) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for (b, block) in encoded.iter().enumerate() {
        for (ii, codes) in block.iter().enumerate() {
            for k in 0..codes.len() {
                out.push((b, ii, k));
            }
        }
    }
    out
}

/// Every `(block, inst)` holding a `set_last_reg` of `class`.
fn set_sites(f: &Function, class: RegClass) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (b, blk) in f.blocks.iter().enumerate() {
        for (ii, inst) in blk.insts.iter().enumerate() {
            if matches!(inst, Inst::SetLastReg { class: c, .. } if *c == class) {
                out.push((b, ii));
            }
        }
    }
    out
}

/// Draw `n` faults from the seeded stream, covering whichever fault kinds
/// the function and stream make injectable. Deterministic per
/// `(f, cfg, encoded, seed, n)`.
pub fn sample_faults(
    f: &Function,
    cfg: &EncodingConfig,
    encoded: &[Vec<InstFields>],
    seed: u64,
    n: usize,
) -> Vec<StreamFault> {
    let fields = field_sites(encoded);
    let sets = set_sites(f, cfg.class);
    let swappable: Vec<(usize, usize)> = sets
        .iter()
        .copied()
        .filter(|&(b, ii)| ii + 1 < f.blocks[b].insts.len())
        .collect();
    let reg_n = u64::from(cfg.params.reg_n());
    // Codes one past the reserved window are *invalid*; include them so
    // the campaign also proves undecodable codes are rejected.
    let code_space = u64::from(cfg.effective_diff_n()) + cfg.reserved.len() as u64 + 4;

    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match rng.below(7) {
            0 if !fields.is_empty() => {
                let (b, ii, k) = fields[rng.below(fields.len() as u64) as usize];
                let old = encoded[b][ii][k];
                let mut new_code = rng.below(code_space) as u16;
                if new_code == old {
                    new_code = (new_code + 1) % code_space as u16;
                }
                out.push(StreamFault::CorruptField {
                    block: BlockId(b as u32),
                    inst: ii,
                    field: k,
                    new_code,
                });
            }
            1 if !sets.is_empty() => {
                let (b, ii) = sets[rng.below(sets.len() as u64) as usize];
                out.push(StreamFault::DropSet {
                    block: BlockId(b as u32),
                    inst: ii,
                });
            }
            2 if !sets.is_empty() => {
                let (b, ii) = sets[rng.below(sets.len() as u64) as usize];
                out.push(StreamFault::DuplicateSet {
                    block: BlockId(b as u32),
                    inst: ii,
                });
            }
            3 if !swappable.is_empty() => {
                let (b, ii) = swappable[rng.below(swappable.len() as u64) as usize];
                out.push(StreamFault::SwapWithNext {
                    block: BlockId(b as u32),
                    inst: ii,
                });
            }
            4 if !sets.is_empty() => {
                let (b, ii) = sets[rng.below(sets.len() as u64) as usize];
                let old = match &f.blocks[b].insts[ii] {
                    Inst::SetLastReg { value, .. } => *value,
                    _ => unreachable!("set_sites returned a non-set"),
                };
                let mut new_value = rng.below(reg_n) as u8;
                if new_value == old {
                    new_value = ((u64::from(new_value) + 1) % reg_n) as u8;
                }
                out.push(StreamFault::FlipSetValue {
                    block: BlockId(b as u32),
                    inst: ii,
                    new_value,
                });
            }
            5 => {
                // Past RegN on purpose sometimes: corrupt state must be
                // rejected, not fed to the modulo adder.
                let value = rng.below(reg_n + 4) as u8;
                out.push(StreamFault::FlipEntryState { value });
            }
            6 if !fields.is_empty() => {
                let (b, ii, _) = fields[rng.below(fields.len() as u64) as usize];
                out.push(StreamFault::Truncate {
                    block: BlockId(b as u32),
                    inst: ii,
                });
            }
            _ => {} // kind not injectable here; redraw
        }
    }
    out
}

/// Apply `fault` to the mutable decode inputs: the function clone (repair
/// instructions live there), the field stream, and the power-on state.
/// Stream shape stays aligned with the instruction list for every kind —
/// misalignment *detection* is the decoder's job, so the mutations model
/// hardware-plausible corruption, not harness bugs.
pub fn apply_fault(
    f: &mut Function,
    encoded: &mut [Vec<InstFields>],
    init: &mut LastReg,
    fault: &StreamFault,
) {
    match fault {
        StreamFault::CorruptField {
            block,
            inst,
            field,
            new_code,
        } => encoded[block.index()][*inst][*field] = *new_code,
        StreamFault::DropSet { block, inst } => {
            f.blocks[block.index()].insts[*inst] = Inst::Nop;
        }
        StreamFault::DuplicateSet { block, inst } => {
            let copy = f.blocks[block.index()].insts[*inst].clone();
            f.blocks[block.index()].insts.insert(inst + 1, copy);
            encoded[block.index()].insert(inst + 1, Vec::new());
        }
        StreamFault::SwapWithNext { block, inst } => {
            f.blocks[block.index()].insts.swap(*inst, inst + 1);
            encoded[block.index()].swap(*inst, inst + 1);
        }
        StreamFault::FlipSetValue {
            block,
            inst,
            new_value,
        } => {
            if let Inst::SetLastReg { value, .. } = &mut f.blocks[block.index()].insts[*inst] {
                *value = *new_value;
            }
        }
        StreamFault::FlipEntryState { value } => *init = LastReg::known(*value),
        StreamFault::Truncate { block, inst } => encoded[block.index()].truncate(*inst),
    }
}

/// Inject `fault` into a clean encode of `f` and classify the decode of
/// `trace` against the clean decode, with the symbolic checker as second
/// adjudicator: a fault is only [`FaultOutcome::Benign`] when the dynamic
/// decode is bit-equal to the clean decode *and*
/// [`dra_regalloc::check_encoded_fields`] accepts the faulted artifact on
/// every static path. A trace-equal decode the checker rejects is
/// [`FaultOutcome::DetectedStatic`].
///
/// # Errors
///
/// An error from the *clean* encode or decode — meaning `f` was not
/// verified/repaired before the campaign, a caller bug, not a fault
/// detection.
pub fn adjudicate(
    f: &Function,
    cfg: &EncodingConfig,
    trace: &[BlockId],
    fault: &StreamFault,
) -> Result<FaultOutcome, DecodeError> {
    let clean_encoded = encode_fields(f, cfg)?;
    let clean = decode_trace_fields(f, cfg, &clean_encoded, trace, LastReg::default())?;

    let mut fm = f.clone();
    let mut em = clean_encoded;
    let mut init = LastReg::default();
    apply_fault(&mut fm, &mut em, &mut init, fault);
    Ok(match decode_trace_fields(&fm, cfg, &em, trace, init.clone()) {
        Err(e) => FaultOutcome::Detected(e),
        Ok(decoded) if decoded == clean => {
            match dra_regalloc::check_encoded_fields(&fm, cfg, &em, Some(&init)) {
                Ok(_) => FaultOutcome::Benign,
                Err(e) => FaultOutcome::DetectedStatic(e.to_string()),
            }
        }
        Ok(_) => FaultOutcome::Diverged,
    })
}

/// Outcome counts of a fault campaign, plus the full adjudication list.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultReport {
    /// Faults injected.
    pub injected: u64,
    /// Faults rejected by either adjudicator (the decoder's structured
    /// error or the symbolic checker's static rejection).
    pub detected: u64,
    /// Of `detected`: faults the dynamic decode missed (bit-equal trace)
    /// that only the symbolic checker rejected.
    pub detected_static: u64,
    /// Faults both adjudicators agree are harmless.
    pub benign: u64,
    /// Faults that decoded successfully to *different* registers. The
    /// campaign's safety property is that this stays zero.
    pub diverged: u64,
    /// Every fault with its outcome, in injection order.
    pub outcomes: Vec<(StreamFault, FaultOutcome)>,
}

impl FaultReport {
    /// True when every fault was classified detected-or-benign.
    pub fn fully_adjudicated(&self) -> bool {
        self.diverged == 0 && self.injected == self.detected + self.benign
    }

    /// Record the campaign counters (`faults.*`) into `t`.
    pub fn record(&self, t: &mut Telemetry) {
        t.count("faults.injected", self.injected);
        t.count("faults.detected", self.detected);
        t.count("faults.detected_static", self.detected_static);
        t.count("faults.benign", self.benign);
        t.count("faults.diverged", self.diverged);
    }
}

/// Run a seeded campaign of `n` faults against `f`'s encoded stream,
/// adjudicating each along `trace`.
///
/// # Errors
///
/// See [`adjudicate`] — only a caller-side unverified `f` errors; fault
/// detections are outcomes, not errors.
pub fn run_fault_campaign(
    f: &Function,
    cfg: &EncodingConfig,
    trace: &[BlockId],
    seed: u64,
    n: usize,
) -> Result<FaultReport, DecodeError> {
    let encoded = encode_fields(f, cfg)?;
    let faults = sample_faults(f, cfg, &encoded, seed, n);
    let mut report = FaultReport::default();
    for fault in faults {
        let outcome = adjudicate(f, cfg, trace, &fault)?;
        report.injected += 1;
        match outcome {
            FaultOutcome::Detected(_) => report.detected += 1,
            FaultOutcome::DetectedStatic(_) => {
                report.detected += 1;
                report.detected_static += 1;
            }
            FaultOutcome::Benign => report.benign += 1,
            FaultOutcome::Diverged => report.diverged += 1,
        }
        report.outcomes.push((fault, outcome));
    }
    Ok(report)
}

/// Deterministic fault injection into the *compile pipeline* (as opposed
/// to the encoded stream): drives the panic isolation of
/// [`crate::batch::run_batch_isolated`] and the degradation lattice of
/// [`crate::lowend::compile_program_telemetry`]. Defaults to clean (no
/// injection); carried on [`crate::lowend::LowEndSetup`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineFaults {
    /// Batch cell indices whose worker closure panics (exercises
    /// `catch_unwind` isolation; the cell fails, its neighbors survive).
    pub panic_cells: BTreeSet<usize>,
    /// Function indices whose differential *allocation* reports an
    /// injected failure (exercises per-function degradation to direct).
    pub fail_alloc_funcs: BTreeSet<usize>,
    /// Function indices whose differential *verification* reports an
    /// injected failure.
    pub fail_verify_funcs: BTreeSet<usize>,
    /// Inject a simulation failure for differential approaches
    /// (exercises the whole-program direct re-compile fallback).
    pub fail_sim: bool,
}

impl PipelineFaults {
    /// No injection at all (the default).
    pub fn is_clean(&self) -> bool {
        self.panic_cells.is_empty()
            && self.fail_alloc_funcs.is_empty()
            && self.fail_verify_funcs.is_empty()
            && !self.fail_sim
    }

    /// A seeded fault plan for a matrix of `cells` cells over programs of
    /// up to `funcs` functions: two panicking cells, one alloc-failing
    /// and one verify-failing function. `seed == 0` means clean.
    pub fn from_seed(seed: u64, cells: usize, funcs: usize) -> PipelineFaults {
        let mut faults = PipelineFaults::default();
        if seed == 0 {
            return faults;
        }
        let mut rng = SplitMix64::new(seed);
        if cells > 0 {
            faults.panic_cells.insert(rng.below(cells as u64) as usize);
            faults.panic_cells.insert(rng.below(cells as u64) as usize);
        }
        if funcs > 0 {
            faults
                .fail_alloc_funcs
                .insert(rng.below(funcs as u64) as usize);
            faults
                .fail_verify_funcs
                .insert(rng.below(funcs as u64) as usize);
        }
        faults
    }
}

/// Fault-injection hooks for the *serving* layer (`drac serve`), keyed by
/// request id so a test or chaos campaign can target exact requests.
/// Empty (the default) in production. Three escalating failure modes:
///
/// * `panic_request_ids` — the job panics **inside** the per-request
///   `catch_unwind` (exercises request-level containment: the worker
///   survives, the client gets a `panic` error).
/// * `kill_request_ids` — the worker thread panics **outside** the
///   per-request isolation, i.e. the thread dies (exercises worker
///   supervision: the monitor must answer the lost request and restart
///   the shard worker).
/// * `stall_request_ids` — the worker blocks on the server's stall gate
///   before compiling (simulates a wedged slow request; used to hold
///   queues full deterministically in overload tests).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeFaults {
    /// Request ids whose job panics inside the per-request isolation.
    pub panic_request_ids: BTreeSet<String>,
    /// Request ids that kill their shard worker thread.
    pub kill_request_ids: BTreeSet<String>,
    /// Request ids whose worker stalls until the stall gate opens.
    pub stall_request_ids: BTreeSet<String>,
}

impl ServeFaults {
    /// No injection at all (the default).
    pub fn is_clean(&self) -> bool {
        self.panic_request_ids.is_empty()
            && self.kill_request_ids.is_empty()
            && self.stall_request_ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_adjgraph::DiffParams;
    use dra_encoding::insert_set_last_reg;
    use dra_ir::{FunctionBuilder, PReg};

    fn repaired_function() -> (Function, EncodingConfig, Vec<BlockId>) {
        let mut b = FunctionBuilder::new("f");
        b.push(Inst::Mov {
            dst: PReg(1).into(),
            src: PReg(0).into(),
        });
        b.push(Inst::Mov {
            dst: PReg(5).into(),
            src: PReg(1).into(),
        });
        b.push(Inst::Mov {
            dst: PReg(11).into(),
            src: PReg(5).into(),
        });
        b.ret(None);
        let mut f = b.finish();
        let cfg = EncodingConfig::new(DiffParams::new(12, 8));
        insert_set_last_reg(&mut f, &cfg);
        (f, cfg, vec![BlockId(0)])
    }

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sampling_is_deterministic() {
        let (f, cfg, _) = repaired_function();
        let encoded = encode_fields(&f, &cfg).unwrap();
        let a = sample_faults(&f, &cfg, &encoded, 42, 32);
        let b = sample_faults(&f, &cfg, &encoded, 42, 32);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let kinds: BTreeSet<&str> = a.iter().map(StreamFault::kind).collect();
        assert!(kinds.len() >= 4, "seed 42 covers several kinds: {kinds:?}");
    }

    #[test]
    fn corrupt_field_is_detected() {
        let (f, cfg, trace) = repaired_function();
        let encoded = encode_fields(&f, &cfg).unwrap();
        // Find a field actually consumed on the trace and flip it.
        let (b, ii, k) = field_sites(&encoded)[0];
        let old = encoded[b][ii][k];
        let fault = StreamFault::CorruptField {
            block: BlockId(b as u32),
            inst: ii,
            field: k,
            new_code: old ^ 1,
        };
        match adjudicate(&f, &cfg, &trace, &fault).unwrap() {
            FaultOutcome::Detected(e) => {
                // The diagnostic names the site.
                let text = format!("{e}");
                assert!(text.contains("bb0"), "site missing from: {text}");
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn dropped_repair_is_detected() {
        let (f, cfg, trace) = repaired_function();
        let (b, ii) = set_sites(&f, cfg.class)[0];
        let fault = StreamFault::DropSet {
            block: BlockId(b as u32),
            inst: ii,
        };
        assert!(matches!(
            adjudicate(&f, &cfg, &trace, &fault).unwrap(),
            FaultOutcome::Detected(_)
        ));
    }

    #[test]
    fn duplicated_repair_is_benign() {
        // set_last_reg is idempotent at delay 0: setting the same value
        // twice decodes identically.
        let (f, cfg, trace) = repaired_function();
        let (b, ii) = set_sites(&f, cfg.class)[0];
        let fault = StreamFault::DuplicateSet {
            block: BlockId(b as u32),
            inst: ii,
        };
        assert_eq!(
            adjudicate(&f, &cfg, &trace, &fault).unwrap(),
            FaultOutcome::Benign
        );
    }

    #[test]
    fn truncated_stream_is_detected() {
        let (f, cfg, trace) = repaired_function();
        let encoded = encode_fields(&f, &cfg).unwrap();
        let (b, ii, _) = field_sites(&encoded)[0];
        let fault = StreamFault::Truncate {
            block: BlockId(b as u32),
            inst: ii,
        };
        match adjudicate(&f, &cfg, &trace, &fault).unwrap() {
            FaultOutcome::Detected(DecodeError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn campaign_fully_adjudicates_and_records() {
        let (f, cfg, trace) = repaired_function();
        let report = run_fault_campaign(&f, &cfg, &trace, 0xC0FFEE, 64).unwrap();
        assert_eq!(report.injected, 64);
        assert!(report.fully_adjudicated(), "diverged: {}", report.diverged);
        assert!(report.detected > 0, "campaign found nothing to detect");
        let mut t = Telemetry::new();
        report.record(&mut t);
        assert_eq!(t.counter("faults.injected"), 64);
        assert_eq!(
            t.counter("faults.detected") + t.counter("faults.benign"),
            64
        );
        assert_eq!(t.counter("faults.diverged"), 0);
    }

    #[test]
    fn pipeline_faults_from_seed() {
        assert!(PipelineFaults::from_seed(0, 10, 3).is_clean());
        let f = PipelineFaults::from_seed(9, 10, 3);
        assert!(!f.is_clean());
        assert!(!f.panic_cells.is_empty() && f.panic_cells.len() <= 2);
        assert_eq!(f.fail_alloc_funcs.len(), 1);
        assert_eq!(f.fail_verify_funcs.len(), 1);
        assert_eq!(f, PipelineFaults::from_seed(9, 10, 3), "deterministic");
    }
}
