//! Profile-guided differential allocation.
//!
//! Section 4 of the paper: "profile information could be incorporated to
//! improve the cost estimation. Different adjacent access pairs have
//! different execution frequencies. For a better estimation, the frequency
//! should be reflected in the edge weights." This module closes that loop:
//!
//! 1. compile the program under the baseline and run it, collecting
//!    per-block execution counts from the simulator;
//! 2. install those counts as block frequencies (replacing the static
//!    10^loop-depth estimate);
//! 3. recompile with a differential approach — the adjacency-graph edge
//!    weights, spill costs, and coalesce scores now reflect reality.

use crate::lowend::{
    compile_and_run, compile_program_telemetry, finish_run_or_degrade, Approach, LowEndSetup,
    PipelineError,
};
use crate::telemetry::Telemetry;
use crate::LowEndRun;
use dra_ir::Program;
use dra_workloads::benchmark;
use std::collections::HashMap;

/// Install measured block counts as block frequencies.
///
/// Blocks the profile never saw keep a small nonzero weight so their edges
/// still matter slightly (cold paths should not become cost-free to
/// violate — they may still execute under other inputs). Returns how many
/// blocks got that floor: a profile that covers almost nothing silently
/// degenerates to near-uniform weights, and the caller should be able to
/// see that (the pipeline records it as `profile.cold_blocks`).
pub fn apply_profile(p: &mut Program, counts: &HashMap<(u32, u32), u64>) -> usize {
    let mut cold = 0;
    for (fi, f) in p.funcs.iter_mut().enumerate() {
        for (bi, b) in f.blocks.iter_mut().enumerate() {
            let c = counts.get(&(fi as u32, bi as u32)).copied().unwrap_or(0);
            if c == 0 {
                cold += 1;
            }
            b.freq = (c as f64).max(0.1);
        }
    }
    cold
}

/// Compile `name` under `approach` with profile-guided frequencies: a
/// baseline run supplies the profile, the differential recompilation
/// consumes it.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_and_run_profiled(
    name: &str,
    approach: Approach,
    setup: &LowEndSetup,
) -> Result<LowEndRun, PipelineError> {
    // Profiling run (baseline allocation: any allocation yields the same
    // block counts, since allocation preserves control flow).
    let profile_run = compile_and_run(name, Approach::Baseline, setup)?;

    let mut telemetry = Telemetry::new();
    let mut p = telemetry.time("parse", || benchmark(name));
    let cold = apply_profile(&mut p, &profile_run.block_counts);
    telemetry.count("profile.cold_blocks", cold as u64);
    let source = (setup.degrade && approach.can_degrade()).then(|| p.clone());
    let remap = compile_program_telemetry(&mut p, approach, setup, None, &mut telemetry)?;
    finish_run_or_degrade(source.as_ref(), p, approach, setup, remap, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_installs_dynamic_frequencies() {
        let setup = LowEndSetup::default();
        let run = compile_and_run("crc32", Approach::Baseline, &setup).unwrap();
        let mut p = benchmark("crc32");
        let cold = apply_profile(&mut p, &run.block_counts);
        // Loop bodies must now carry their real trip counts, far above
        // the static estimate's 10.
        let max_freq = p
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.freq)
            .fold(0.0f64, f64::max);
        assert!(max_freq > 10.0, "hottest block freq {max_freq}");
        // Unexecuted blocks keep the floor weight.
        let min_freq = p
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.freq)
            .fold(f64::INFINITY, f64::min);
        assert!(min_freq >= 0.1);
        // The reported cold count is exactly the number of floored blocks
        // (an executed block counts at least 1.0, so 0.1 only means cold).
        let floored = p
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .filter(|b| b.freq == 0.1)
            .count();
        assert_eq!(cold, floored);
    }

    #[test]
    fn profiled_runs_report_cold_blocks() {
        let setup = LowEndSetup::default();
        let run = compile_and_run_profiled("crc32", Approach::Select, &setup).unwrap();
        // The counter must exist even at zero — a fully-covered program
        // and a missing counter must be distinguishable.
        assert!(
            run.telemetry.counters().contains_key("profile.cold_blocks"),
            "profile.cold_blocks missing from {:?}",
            run.telemetry.counters().keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn profiled_compilation_is_correct_and_competitive() {
        let setup = LowEndSetup::default();
        for name in ["crc32", "bitcount"] {
            let static_run = compile_and_run(name, Approach::Select, &setup).unwrap();
            let profiled = compile_and_run_profiled(name, Approach::Select, &setup).unwrap();
            assert_eq!(static_run.ret_value, profiled.ret_value, "{name}");
            // The profile should not make things dramatically worse; it
            // usually helps the dynamic set_last_reg count.
            assert!(
                profiled.cycles as f64 <= static_run.cycles as f64 * 1.10,
                "{name}: profiled {} vs static {}",
                profiled.cycles,
                static_run.cycles
            );
        }
    }
}
