//! # dra-core — end-to-end differential register allocation
//!
//! The public entry point of the reproduction of *Differential Register
//! Allocation* (Zhuang & Pande, PLDI 2005). It wires the substrates
//! together into the two experiment pipelines of the paper's evaluation:
//!
//! * [`lowend`] — Section 10.1: compile a benchmark program with one of
//!   the five setups (`baseline`, `remapping`, `select`, `O-spill`,
//!   `coalesce`), differential-encode it, verify decodability, and run it
//!   on the 5-stage in-order machine. Produces the quantities behind
//!   Figures 11–14.
//! * [`highend`] — Section 10.2: software-pipeline a suite of loops at a
//!   swept `RegN` with `DiffN = 32` and aggregate speedups, spills, and
//!   code growth (Tables 2 and 3).
//!
//! ```
//! use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};
//!
//! let setup = LowEndSetup::default();
//! let base = compile_and_run("crc32", Approach::Baseline, &setup).unwrap();
//! let coal = compile_and_run("crc32", Approach::Coalesce, &setup).unwrap();
//! // Differential coalesce must compute the same answer…
//! assert_eq!(base.ret_value, coal.ret_value);
//! // …while addressing more registers through the same 3-bit fields.
//! assert!(coal.spill_insts <= base.spill_insts);
//! ```

pub mod batch;
pub mod bench_serve;
pub mod cache;
pub mod corpus;
pub mod faults;
pub mod highend;
pub mod knob;
pub mod lowend;
pub mod profile;
pub mod serve;
pub mod serve_chaos;
pub mod session;
pub mod telemetry;

pub use batch::{
    compile_and_run_cached, run_batch, run_batch_isolated, run_isolated, run_lowend_matrix,
    run_lowend_matrix_with_telemetry, CellOutcome, IsolationStats, SourceCache,
};
pub use cache::LruCache;
pub use corpus::{
    profile_from_json, profile_to_json, resolve_profile, run_corpus_bench, run_corpus_compile,
    write_profile, CorpusBenchConfig, CorpusBenchReport, CorpusReport,
};
pub use knob::{apply_cache_cap, env_knob, parse_knob};
pub use session::{result_key, CompileSession, ResultKey};
pub use faults::{
    adjudicate, run_fault_campaign, sample_faults, FaultOutcome, FaultReport, PipelineFaults,
    SplitMix64, StreamFault,
};
pub use highend::{
    run_highend_suite, run_highend_sweep, run_highend_sweep_with_telemetry, HighEndAggregate,
    HighEndSetup,
};
pub use lowend::{
    compile_and_run, compile_and_run_source, compile_benchmark, Approach, LowEndRun, LowEndSetup,
    PipelineError,
};
pub use profile::{apply_profile, compile_and_run_profiled};
pub use serve_chaos::{run_chaos_serve, ChaosServeConfig, ChaosServeReport};
pub use telemetry::{validate_telemetry, Telemetry, TelemetryReport};
