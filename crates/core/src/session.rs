//! A reusable, `Send + Sync` compile session: the pipeline entry point a
//! resident service keeps alive across requests.
//!
//! Historically every `compile_and_run*` front end was a free function
//! that rebuilt its world per call; the only shared state was the
//! [`SourceCache`] the batch driver threaded through by hand. A long-
//! lived daemon needs more: one object owning the setup and **both**
//! caches — parsed sources *and* finished allocations — that any number
//! of worker threads can call concurrently with no per-call global state.
//! [`CompileSession`] is that object:
//!
//! * the [`LowEndSetup`] is fixed at construction, so every request
//!   compiles under one configuration and results are comparable and
//!   cacheable;
//! * a [`SourceCache`] memoizes parse + MAXLIVE per benchmark name;
//! * a **content-hash-keyed, LRU-bounded result cache** memoizes whole
//!   [`LowEndRun`]s: two requests for identical input under the same
//!   approach share one allocation, giving a resident server its
//!   warm-path latency floor.
//!
//! Keys are 128-bit FNV-1a hashes over `(namespace, content, approach)`
//! where content is the benchmark name (`bench:`) or the full program
//! text (`src:`). The pipelines are deterministic, so a cache hit is
//! bit-identical to a recompute — concurrency changes *when* work
//! happens, never *what* is produced. Only `Ok` runs are cached; errors
//! are recomputed (they are cheap — they fail early — and keeping them
//! out avoids caching transient injected faults).
//!
//! Counter semantics follow [`SourceCache`]: lookups count every call,
//! misses count insert-wins, hits are derived, so all `result_cache.*`
//! values are schedule-invariant as long as nothing is evicted (a racing
//! duplicate computation is neither hit nor miss, and an error is
//! counted under `result_cache.uncacheable`).

use crate::batch::{compile_and_run_cached, SourceCache};
use crate::cache::LruCache;
use crate::lowend::{compile_and_run_source, Approach, LowEndRun, LowEndSetup, PipelineError};
use crate::telemetry::Telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default entry bound for the allocation-result cache. A [`LowEndRun`]
/// retains the compiled program, so the bound is deliberately tighter
/// than the source cache's.
pub const DEFAULT_RESULT_CAPACITY: usize = 256;

/// A 128-bit content key: two independent FNV-1a-64 lanes over the same
/// byte stream. Collisions across distinct requests are negligible at
/// cache scale, and the hash is stable across processes (no randomized
/// state), so keys are reproducible for tests and the load harness.
pub type ResultKey = [u64; 2];

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
// Second lane: a different, odd offset basis decorrelates the lanes.
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The result-cache key for `(namespace, content, approach)`. Fields are
/// separated by a `0xFF` byte (which cannot appear in UTF-8 text), so
/// `("ab","c")` and `("a","bc")` cannot collide structurally.
pub fn result_key(namespace: &str, content: &str, approach: Approach) -> ResultKey {
    let mut a = FNV_OFFSET_A;
    let mut b = FNV_OFFSET_B;
    for part in [namespace, content, approach.label()] {
        a = fnv1a(a, part.as_bytes());
        a = fnv1a(a, &[0xFF]);
        b = fnv1a(b, part.as_bytes());
        b = fnv1a(b, &[0xFF]);
    }
    [a, b]
}

/// A resident compile session: fixed [`LowEndSetup`], shared caches,
/// callable from any number of threads.
pub struct CompileSession {
    setup: LowEndSetup,
    sources: SourceCache,
    results: Mutex<LruCache<ResultKey, Arc<LowEndRun>>>,
    /// Total result-cache consults (one per compile call).
    lookups: AtomicU64,
    /// Insert-wins (see the module docs for why this, not computations).
    misses: AtomicU64,
    /// Compile calls that errored and were therefore not cached.
    uncacheable: AtomicU64,
}

impl CompileSession {
    /// A session with the cache bounds the setup carries
    /// ([`LowEndSetup::source_cache_cap`] / [`LowEndSetup::result_cache_cap`],
    /// which default to [`crate::batch::DEFAULT_SOURCE_CAPACITY`] /
    /// [`DEFAULT_RESULT_CAPACITY`]).
    pub fn new(setup: LowEndSetup) -> CompileSession {
        let (source, result) = (setup.source_cache_cap, setup.result_cache_cap);
        CompileSession::with_capacities(setup, source, result)
    }

    /// A session with explicit source/result cache entry bounds.
    pub fn with_capacities(
        setup: LowEndSetup,
        source_capacity: usize,
        result_capacity: usize,
    ) -> CompileSession {
        CompileSession {
            setup,
            sources: SourceCache::with_capacity(source_capacity),
            results: Mutex::new(LruCache::new(result_capacity)),
            lookups: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    /// The fixed setup every request compiles under.
    pub fn setup(&self) -> &LowEndSetup {
        &self.setup
    }

    /// The shared source-artifact cache.
    pub fn sources(&self) -> &SourceCache {
        &self.sources
    }

    /// Lock the result cache, recovering from poison (same argument as
    /// [`SourceCache`]: values are insert-once `Arc`s, so a map abandoned
    /// mid-panic is still a valid, possibly smaller, memo).
    fn results(&self) -> MutexGuard<'_, LruCache<ResultKey, Arc<LowEndRun>>> {
        self.results.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Compile a named built-in benchmark, serving repeats from the
    /// result cache. Returns the run and whether it was served from
    /// cache.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`]; errors are never cached.
    pub fn compile_bench(
        &self,
        name: &str,
        approach: Approach,
    ) -> Result<(Arc<LowEndRun>, bool), PipelineError> {
        let key = result_key("bench", name, approach);
        self.compile_keyed(key, || {
            compile_and_run_cached(&self.sources, name, approach, &self.setup)
        })
    }

    /// Compile arbitrary program text (parse → validate → full pipeline),
    /// result-cached by the text's content hash. Returns the run and
    /// whether it was served from cache.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Parse`] / [`PipelineError::Validate`] for bad
    /// text, otherwise as [`compile_and_run_source`]; errors are never
    /// cached.
    pub fn compile_source(
        &self,
        text: &str,
        approach: Approach,
    ) -> Result<(Arc<LowEndRun>, bool), PipelineError> {
        let key = result_key("src", text, approach);
        self.compile_keyed(key, || compile_and_run_source(text, approach, &self.setup))
    }

    fn compile_keyed(
        &self,
        key: ResultKey,
        compute: impl FnOnce() -> Result<LowEndRun, PipelineError>,
    ) -> Result<(Arc<LowEndRun>, bool), PipelineError> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = self.results().get(&key) {
            return Ok((Arc::clone(hit), true));
        }
        // A cache hit is always worth returning even past a deadline (it is
        // nearly free), but starting a fresh compile for an expired request
        // is pure waste — check the caller's cancellation token (if any)
        // before committing to the expensive path.
        crate::telemetry::check_cancelled("session.compute");
        // Compute outside the lock: a slow compile must not serialize the
        // whole pool behind one request.
        let run = match compute() {
            Ok(run) => Arc::new(run),
            Err(e) => {
                self.uncacheable.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let mut results = self.results();
        match results.get(&key) {
            // A racing duplicate computed the same thing first; its insert
            // won. The pipelines are deterministic, so either Arc carries
            // identical data — share the winner's.
            Some(winner) => Ok((Arc::clone(winner), false)),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                results.insert(key, Arc::clone(&run));
                Ok((run, false))
            }
        }
    }

    /// Results currently held.
    pub fn result_cache_len(&self) -> usize {
        self.results().len()
    }

    /// Record both caches' counters into `t`: `source_cache.*` (see
    /// [`SourceCache::record_counters`]) and `result_cache.lookups` /
    /// `.hits` / `.misses` / `.evictions` / `.uncacheable`.
    pub fn record_counters(&self, t: &mut Telemetry) {
        self.sources.record_counters(t);
        let lookups = self.lookups.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let uncacheable = self.uncacheable.load(Ordering::Relaxed);
        t.count("result_cache.lookups", lookups);
        t.count("result_cache.misses", misses);
        t.count("result_cache.uncacheable", uncacheable);
        t.count(
            "result_cache.hits",
            lookups.saturating_sub(misses).saturating_sub(uncacheable),
        );
        t.count("result_cache.evictions", self.results().evictions());
    }
}

// The whole point of the session object: safe to share behind an `Arc`
// across a worker pool. Fails to compile if any field regresses.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompileSession>()
};

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_setup() -> LowEndSetup {
        let mut setup = LowEndSetup::default();
        setup.remap_starts = 20;
        setup.remap_threads = 1;
        setup
    }

    #[test]
    fn result_keys_separate_namespaces_and_fields() {
        let k1 = result_key("bench", "crc32", Approach::Select);
        assert_eq!(k1, result_key("bench", "crc32", Approach::Select));
        assert_ne!(k1, result_key("src", "crc32", Approach::Select));
        assert_ne!(k1, result_key("bench", "crc32", Approach::Baseline));
        assert_ne!(k1, result_key("bench", "crc3", Approach::Select));
        // Field boundaries are delimited, not concatenated.
        assert_ne!(
            result_key("ab", "c", Approach::Select),
            result_key("a", "bc", Approach::Select)
        );
    }

    #[test]
    fn bench_repeats_hit_the_result_cache() {
        let session = CompileSession::new(quick_setup());
        let (first, cached1) = session.compile_bench("crc32", Approach::Select).unwrap();
        assert!(!cached1, "first compile is a miss");
        let (second, cached2) = session.compile_bench("crc32", Approach::Select).unwrap();
        assert!(cached2, "repeat is served from cache");
        assert!(Arc::ptr_eq(&first, &second), "one shared allocation");
        let mut t = Telemetry::new();
        session.record_counters(&mut t);
        assert_eq!(t.counter("result_cache.lookups"), 2);
        assert_eq!(t.counter("result_cache.misses"), 1);
        assert_eq!(t.counter("result_cache.hits"), 1);
        assert_eq!(t.counter("result_cache.evictions"), 0);
    }

    #[test]
    fn source_text_is_content_hash_keyed() {
        let session = CompileSession::new(quick_setup());
        let text = dra_workloads::benchmark("bitcount").to_string();
        let (a, cached_a) = session.compile_source(&text, Approach::Baseline).unwrap();
        assert!(!cached_a);
        let (b, cached_b) = session.compile_source(&text, Approach::Baseline).unwrap();
        assert!(cached_b);
        assert!(Arc::ptr_eq(&a, &b));
        // Different content (a trailing comment the parser ignores) is a
        // different key — content-hashing is textual, by design.
        let variant = format!("{text}\n; uniq 1\n");
        let (c, cached_c) = session.compile_source(&variant, Approach::Baseline).unwrap();
        assert!(!cached_c);
        assert_eq!(a.cycles, c.cycles, "identical program, identical run");
        assert_eq!(a.ret_value, c.ret_value);
    }

    #[test]
    fn errors_are_not_cached() {
        let session = CompileSession::new(quick_setup());
        for _ in 0..2 {
            let err = session
                .compile_source("fn broken(", Approach::Baseline)
                .unwrap_err();
            assert!(matches!(err, PipelineError::Parse(_)), "{err}");
        }
        let mut t = Telemetry::new();
        session.record_counters(&mut t);
        assert_eq!(t.counter("result_cache.lookups"), 2);
        assert_eq!(t.counter("result_cache.misses"), 0);
        assert_eq!(t.counter("result_cache.uncacheable"), 2);
        assert_eq!(t.counter("result_cache.hits"), 0);
        assert_eq!(session.result_cache_len(), 0);
    }

    #[test]
    fn session_matches_the_one_shot_pipeline() {
        let setup = quick_setup();
        let session = CompileSession::new(setup.clone());
        for approach in [Approach::Baseline, Approach::Select] {
            let direct = crate::lowend::compile_and_run("bitcount", approach, &setup).unwrap();
            let (via_session, _) = session.compile_bench("bitcount", approach).unwrap();
            assert_eq!(direct.cycles, via_session.cycles);
            assert_eq!(direct.ret_value, via_session.ret_value);
            assert_eq!(direct.total_insts, via_session.total_insts);
            assert_eq!(direct.code_bits, via_session.code_bits);
            assert_eq!(direct.set_last_regs, via_session.set_last_regs);
        }
    }

    #[test]
    fn setup_capacities_flow_into_new_sessions() {
        let mut setup = quick_setup();
        setup.source_cache_cap = 16;
        setup.result_cache_cap = 2;
        let session = CompileSession::new(setup);
        session.compile_bench("crc32", Approach::Baseline).unwrap();
        session.compile_bench("bitcount", Approach::Baseline).unwrap();
        session.compile_bench("qsort", Approach::Baseline).unwrap();
        assert_eq!(session.result_cache_len(), 2);
        let mut t = Telemetry::new();
        session.record_counters(&mut t);
        assert_eq!(t.counter("result_cache.evictions"), 1);
    }

    #[test]
    fn result_cache_is_lru_bounded() {
        let session = CompileSession::with_capacities(quick_setup(), 16, 2);
        session.compile_bench("crc32", Approach::Baseline).unwrap();
        session.compile_bench("bitcount", Approach::Baseline).unwrap();
        session.compile_bench("qsort", Approach::Baseline).unwrap();
        assert_eq!(session.result_cache_len(), 2);
        let mut t = Telemetry::new();
        session.record_counters(&mut t);
        assert_eq!(t.counter("result_cache.evictions"), 1);
        // The evicted (LRU) entry recomputes; the survivors still hit.
        let (_, cached) = session.compile_bench("qsort", Approach::Baseline).unwrap();
        assert!(cached);
        let (_, cached) = session.compile_bench("crc32", Approach::Baseline).unwrap();
        assert!(!cached, "crc32 was the LRU victim");
    }
}
