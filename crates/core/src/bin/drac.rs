//! `drac` — the differential register allocation compiler driver.
//!
//! ```text
//! drac list
//! drac compile --bench sha --approach coalesce [--emit ir|stats|bits|json] [--profile]
//! drac run     --bench sha --approach select   [--profile]
//! drac sweep   --bench sha
//! drac report  results/telemetry/fig11.json …
//! ```
//!
//! A thin command-line front end over `dra-core`: compile any built-in
//! benchmark under any setup, inspect the allocated+encoded IR, dump the
//! assembled LEAF16 words, run the cycle-level simulation, or validate
//! and pretty-print a run's emitted telemetry.

use dra_core::batch::run_lowend_matrix_with_telemetry;
use dra_core::bench_serve::{run_bench_serve, BenchServeConfig};
use dra_core::corpus::{
    corpus_setup, resolve_profile, run_corpus_bench, run_corpus_compile, write_profile,
    CorpusBenchConfig,
};
use dra_core::faults::{run_fault_campaign, PipelineFaults};
use dra_core::lowend::{compile_and_run, compile_program_telemetry, Approach, LowEndSetup};
use dra_core::profile::compile_and_run_profiled;
use dra_core::serve::{serve, ServeAddr, ServeConfig};
use dra_core::serve_chaos::{run_chaos_serve, ChaosServeConfig};
use dra_core::telemetry::{validate_telemetry, Telemetry};
use dra_encoding::EncodingConfig;
use dra_regalloc::RemapStrategy;
use dra_workloads::benchmark_names;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  drac list\n  drac compile --bench <name> --approach <a> [--emit ir|stats|bits|json] [--profile] [--check] [--remap-strategy <s>]\n  drac run --bench <name> --approach <a> [--profile] [--check] [--remap-strategy <s>]\n  drac sweep --bench <name> [--check] [--remap-strategy <s>]\n  drac check [--bench <name>] [--approach <a>]\n  drac chaos [--seed <n>] [--faults <n>] [--serve]\n  drac serve --addr <unix:PATH|tcp:HOST:PORT> [--workers <n>] [--retries <n>] [--queue-cap <n>] [--telemetry-root <dir>]\n  drac bench-serve [--smoke] [--workers <csv>] [--jobs <n>] [--clients <n>] [--seed <n>] [--bench <name>] [--corpus <profile>] [--approach <a>] [--deadline-ms <n>] [--queue-cap <n>] [--out <path>] [--telemetry-root <dir>]\n  drac profile [--bench <name>] [--name <out-name>] [--builtin <name|all>]   (default: all benchmarks)\n  drac corpus --profile <name|path> --count <n> [--seed <n>] [--threads <n>]\n  drac bench-corpus [--smoke] [--profile <name|path>] [--count <n>] [--seed <n>] [--threads <csv>] [--out <path>]\n  drac report [<telemetry.json>|<dir>]…   (default: results/telemetry)\n\napproaches: baseline remapping select o-spill coalesce adaptive\nremap strategies: greedy anneal lns bb portfolio\nbuiltin profiles: embedded-dsp pointer-chasing deep-cfg call-heavy"
    );
    ExitCode::FAILURE
}

fn parse_approach(s: &str) -> Option<Approach> {
    Approach::parse(s)
}

struct Args {
    bench: Option<String>,
    approach: Option<Approach>,
    emit: String,
    profile: bool,
    check: bool,
    remap_strategy: Option<RemapStrategy>,
}

fn parse_args(rest: &[String]) -> Option<Args> {
    let mut args = Args {
        bench: None,
        approach: None,
        emit: "stats".to_string(),
        profile: false,
        check: false,
        remap_strategy: None,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => args.bench = Some(it.next()?.clone()),
            "--approach" => args.approach = Some(parse_approach(it.next()?)?),
            "--emit" => args.emit = it.next()?.clone(),
            "--profile" => args.profile = true,
            "--check" => args.check = true,
            "--remap-strategy" => {
                args.remap_strategy = Some(RemapStrategy::parse(it.next()?)?)
            }
            _ => return None,
        }
    }
    Some(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            for n in benchmark_names() {
                println!("{n}");
            }
            ExitCode::SUCCESS
        }
        "compile" | "run" => {
            let Some(args) = parse_args(&argv[1..]) else {
                return usage();
            };
            let (Some(bench), Some(approach)) = (args.bench, args.approach) else {
                return usage();
            };
            let mut setup = LowEndSetup::default();
            setup.check = args.check;
            if let Some(strategy) = args.remap_strategy {
                setup.remap_strategy = strategy;
            }
            let run = if args.profile {
                compile_and_run_profiled(&bench, approach, &setup)
            } else {
                compile_and_run(&bench, approach, &setup)
            };
            let run = match run {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match (cmd.as_str(), args.emit.as_str()) {
                ("compile", "json") | ("run", "json") => {
                    // Flat JSON object, hand-emitted (no JSON dependency).
                    println!(
                        "{{\"benchmark\":\"{bench}\",\"approach\":\"{}\",\"instructions\":{},\"spill_insts\":{},\"set_last_regs\":{},\"code_bits\":{},\"cycles\":{},\"dynamic_spills\":{},\"dynamic_set_last_regs\":{},\"icache_misses\":{},\"dcache_misses\":{},\"result\":{}}}",
                        approach.label(),
                        run.total_insts,
                        run.spill_insts,
                        run.set_last_regs,
                        run.code_bits,
                        run.cycles,
                        run.dynamic_spills,
                        run.dynamic_set_last_regs,
                        run.icache_misses,
                        run.dcache_misses,
                        run.ret_value.map_or("null".to_string(), |v| v.to_string()),
                    );
                }
                ("compile", "ir") => print!("{}", run.program),
                ("compile", "bits") => {
                    let geom = setup.machine.geometry;
                    let enc = EncodingConfig::new(setup.diff);
                    for f in &run.program.funcs {
                        match dra_encoding::assemble_function(f, &enc, &geom) {
                            Ok(img) => {
                                println!("; {} — {} bits", f.name, img.size_bits());
                                for chunk in img.words.chunks(8) {
                                    let hex: Vec<String> =
                                        chunk.iter().map(|w| format!("{w:04x}")).collect();
                                    println!("  {}", hex.join(" "));
                                }
                            }
                            Err(e) => println!("; {} — not assemblable: {e}", f.name),
                        }
                    }
                }
                _ => {
                    println!("benchmark      {bench}");
                    println!("approach       {}", approach.label());
                    println!("instructions   {}", run.total_insts);
                    println!(
                        "spills         {} ({:.2}%)",
                        run.spill_insts,
                        run.spill_percent()
                    );
                    println!(
                        "set_last_regs  {} ({:.2}%)",
                        run.set_last_regs,
                        run.cost_percent()
                    );
                    println!("code size      {} bits", run.code_bits);
                    println!("cycles         {}", run.cycles);
                    println!("dyn spills     {}", run.dynamic_spills);
                    println!("dyn repairs    {}", run.dynamic_set_last_regs);
                    println!("i-cache misses {}", run.icache_misses);
                    println!("d-cache misses {}", run.dcache_misses);
                    println!("result         {:?}", run.ret_value);
                }
            }
            ExitCode::SUCCESS
        }
        "sweep" => {
            let Some(args) = parse_args(&argv[1..]) else {
                return usage();
            };
            let Some(bench) = args.bench else {
                return usage();
            };
            let mut setup = LowEndSetup::default();
            setup.check = args.check;
            if let Some(strategy) = args.remap_strategy {
                setup.remap_strategy = strategy;
            }
            println!(
                "{:<11} {:>7} {:>7} {:>11} {:>10}",
                "approach", "spill%", "slr%", "code(bits)", "cycles"
            );
            let mut approaches = Approach::ALL.to_vec();
            approaches.push(Approach::Adaptive);
            for a in approaches {
                match compile_and_run(&bench, a, &setup) {
                    Ok(r) => println!(
                        "{:<11} {:>6.2}% {:>6.2}% {:>11} {:>10}",
                        a.label(),
                        r.spill_percent(),
                        r.cost_percent(),
                        r.code_bits,
                        r.cycles
                    ),
                    Err(e) => println!("{:<11} error: {e}", a.label()),
                }
            }
            ExitCode::SUCCESS
        }
        "chaos" => {
            let mut seed: Option<u64> = None;
            let mut n_faults = 96usize;
            let mut serve_mode = false;
            let mut it = argv[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--serve" => serve_mode = true,
                    "--seed" | "--faults" => {
                        let value = match it.next().map(|v| v.parse::<u64>()) {
                            Some(Ok(v)) => v,
                            _ => return usage(),
                        };
                        if a == "--seed" {
                            seed = Some(value);
                        } else {
                            n_faults = value as usize;
                        }
                    }
                    _ => return usage(),
                }
            }
            if serve_mode {
                run_chaos_serve_cmd(seed.unwrap_or(3))
            } else {
                run_chaos(seed.unwrap_or(1), n_faults)
            }
        }
        "check" => {
            let Some(args) = parse_args(&argv[1..]) else {
                return usage();
            };
            run_check(args.bench.as_deref(), args.approach)
        }
        "serve" => run_serve(&argv[1..]),
        "bench-serve" => run_bench_serve_cmd(&argv[1..]),
        "profile" => run_profile_cmd(&argv[1..]),
        "corpus" => run_corpus_cmd(&argv[1..]),
        "bench-corpus" => run_bench_corpus_cmd(&argv[1..]),
        "report" => run_report(&argv[1..]),
        _ => usage(),
    }
}

/// `drac report`: validate and pretty-print telemetry documents. Each
/// argument is a file or a directory (directories contribute their
/// `*.json` entries, sorted); with no arguments, discovers
/// `results/telemetry`. Any binary's frame is accepted — the schema, not
/// a hard-coded emitter list, is the contract.
fn run_report(args: &[String]) -> ExitCode {
    let roots: Vec<String> = if args.is_empty() {
        vec!["results/telemetry".to_string()]
    } else {
        args.to_vec()
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut failed = false;
    for root in &roots {
        let p = Path::new(root);
        if p.is_dir() {
            let entries = match std::fs::read_dir(p) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("{root}: {e}");
                    failed = true;
                    continue;
                }
            };
            // An unreadable directory entry is a failure, not a skip: a
            // corrupt telemetry file must never pass silently.
            let mut found: Vec<PathBuf> = Vec::new();
            for entry in entries {
                match entry {
                    Ok(e) => {
                        let path = e.path();
                        if path.extension().is_some_and(|ext| ext == "json") {
                            found.push(path);
                        }
                    }
                    Err(e) => {
                        eprintln!("{root}: unreadable entry: {e}");
                        failed = true;
                    }
                }
            }
            found.sort();
            if found.is_empty() {
                eprintln!("{root}: no telemetry documents");
                failed = true;
            }
            paths.extend(found);
        } else {
            paths.push(p.to_path_buf());
        }
    }
    for (i, path) in paths.iter().enumerate() {
        let display = path.display();
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{display}: {e}");
                failed = true;
                continue;
            }
        };
        match validate_telemetry(&src) {
            Ok(report) => {
                if i > 0 {
                    println!();
                }
                print!("{}", report.render());
            }
            Err(e) => {
                eprintln!("{display}: invalid telemetry: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `drac check`: run the symbolic allocation checker over the benchmark ×
/// approach matrix. Every function of every cell is compiled with
/// [`LowEndSetup::check`] on (degradation off, so a rejection surfaces
/// instead of silently recompiling direct), the `checker.*` counters are
/// aggregated to `results/telemetry/checker.json`, and the exit code is
/// nonzero if any cell is rejected.
fn run_check(bench: Option<&str>, approach: Option<Approach>) -> ExitCode {
    let names: Vec<&str> = match bench {
        Some(b) => match benchmark_names().iter().find(|n| **n == b) {
            Some(n) => vec![n],
            None => {
                eprintln!("check: unknown benchmark {b:?}");
                return ExitCode::FAILURE;
            }
        },
        None => benchmark_names().to_vec(),
    };
    let approaches: Vec<Approach> = match approach {
        Some(a) => vec![a],
        None => {
            let mut all = Approach::ALL.to_vec();
            all.push(Approach::Adaptive);
            all
        }
    };
    let mut setup = LowEndSetup::default();
    setup.check = true;
    setup.degrade = false;
    let mut telemetry = Telemetry::new();
    let mut failed = false;
    for name in &names {
        let mut bad = Vec::new();
        for &a in &approaches {
            let mut p = dra_workloads::benchmark(name);
            if let Err(e) = compile_program_telemetry(&mut p, a, &setup, None, &mut telemetry) {
                eprintln!("{name} × {}: {e}", a.label());
                bad.push(a.label());
                failed = true;
            }
        }
        if bad.is_empty() {
            println!("{name}: ok ({} approaches)", approaches.len());
        } else {
            println!("{name}: REJECTED under {}", bad.join(", "));
        }
    }
    println!(
        "checked {} functions, {} instructions, {} fields replayed, {} violations",
        telemetry.counter("checker.functions"),
        telemetry.counter("checker.insts"),
        telemetry.counter("checker.fields_replayed"),
        telemetry.counter("checker.violations"),
    );
    match telemetry.write_results(Path::new("."), "checker") {
        Ok(path) => println!("telemetry: {}", path.display()),
        Err(e) => {
            eprintln!("telemetry write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failed {
        eprintln!("check: CHECKER REJECTION");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `drac serve`: run the resident daemon until a `shutdown` request
/// arrives, then print where the final telemetry went.
fn run_serve(args: &[String]) -> ExitCode {
    let mut addr: Option<ServeAddr> = None;
    let mut workers = 0usize;
    let mut retries = 1u32;
    let mut queue_cap: Option<usize> = None;
    let mut telemetry_root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(ServeAddr::parse(v)),
                None => return usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => return usage(),
            },
            "--retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retries = v,
                None => return usage(),
            },
            "--queue-cap" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => queue_cap = Some(v),
                None => return usage(),
            },
            "--telemetry-root" => match it.next() {
                Some(v) => telemetry_root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("serve: --addr is required (unix:/path or tcp:host:port)");
        return ExitCode::FAILURE;
    };
    let mut config = ServeConfig::new(addr);
    config.workers = workers;
    config.retries = retries;
    if let Some(cap) = queue_cap {
        config.queue_cap = cap;
    }
    config.telemetry_root = telemetry_root.clone();
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("serving on {}", handle.addr());
    match handle.join() {
        Ok(telemetry) => {
            println!(
                "served {} requests ({} from cache)",
                telemetry.counter("serve.requests"),
                telemetry.counter("serve.cache_hits"),
            );
            if let Some(root) = telemetry_root {
                println!(
                    "telemetry: {}",
                    root.join("results/telemetry/serve.json").display()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `drac bench-serve`: the seeded load harness; `--smoke` shrinks the
/// sweep to CI scale and asserts the caches actually served hits.
fn run_bench_serve_cmd(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut config = BenchServeConfig::standard();
    let mut out: Option<PathBuf> = Some(PathBuf::from("results/serve_bench.json"));
    let mut telemetry_root: Option<PathBuf> = Some(PathBuf::from("."));
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--workers" => match it.next() {
                Some(v) => {
                    let parsed: Option<Vec<usize>> =
                        v.split(',').map(|w| w.trim().parse().ok()).collect();
                    match parsed {
                        Some(w) if !w.is_empty() => config.workers = w,
                        _ => return usage(),
                    }
                }
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.jobs = v,
                None => return usage(),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.clients = v,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.seed = v,
                None => return usage(),
            },
            "--bench" => match it.next() {
                Some(v) => config.bench = v.clone(),
                None => return usage(),
            },
            "--approach" => match it.next().and_then(|v| parse_approach(v)) {
                Some(v) => config.approach = v,
                None => return usage(),
            },
            "--corpus" => match it.next() {
                Some(v) => config.corpus_profile = Some(v.clone()),
                None => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.deadline_ms = Some(v),
                None => return usage(),
            },
            "--queue-cap" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.queue_cap = v,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--telemetry-root" => match it.next() {
                Some(v) => telemetry_root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if smoke {
        let full = config;
        config = BenchServeConfig::smoke();
        config.seed = full.seed;
        config.bench = full.bench;
        config.approach = full.approach;
        config.corpus_profile = full.corpus_profile;
        config.deadline_ms = full.deadline_ms;
        config.queue_cap = full.queue_cap;
    }
    if config.corpus_profile.is_none() && !benchmark_names().contains(&config.bench.as_str()) {
        eprintln!("bench-serve: unknown benchmark {:?}", config.bench);
        return ExitCode::FAILURE;
    }
    config.out_path = out.clone();
    config.telemetry_root = telemetry_root;
    let report = match run_bench_serve(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if let Some(path) = out {
        println!("report: {}", path.display());
    }
    let errors: u64 = report
        .sweeps
        .iter()
        .flat_map(|s| s.phases.iter())
        .map(|p| p.errors)
        .sum();
    let hits: u64 = report.sweeps.iter().map(|s| s.server_cache_hits).sum();
    if errors > 0 {
        eprintln!("bench-serve: {errors} jobs failed");
        return ExitCode::FAILURE;
    }
    if smoke && hits == 0 {
        eprintln!("bench-serve: smoke expected nonzero cache hits");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `drac profile`: extract a `dra-profile-v1` workload profile from one
/// named benchmark (or the whole mibench substitute suite) and write it
/// to `results/profiles/<name>.json`.
fn run_profile_cmd(args: &[String]) -> ExitCode {
    let mut bench: Option<String> = None;
    let mut out_name: Option<String> = None;
    let mut builtin: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => match it.next() {
                Some(v) => bench = Some(v.clone()),
                None => return usage(),
            },
            "--name" => match it.next() {
                Some(v) => out_name = Some(v.clone()),
                None => return usage(),
            },
            "--builtin" => match it.next() {
                Some(v) => builtin = Some(v.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    // `--builtin <name|all>`: write the checked-in generator profiles
    // instead of extracting one from a benchmark run.
    if let Some(which) = builtin {
        let profiles = if which == "all" {
            dra_workloads::builtin_profiles()
        } else {
            match dra_workloads::builtin_profile(&which) {
                Some(p) => vec![p],
                None => {
                    eprintln!("profile: unknown builtin {which:?}");
                    return ExitCode::FAILURE;
                }
            }
        };
        for p in &profiles {
            match write_profile(Path::new("."), p) {
                Ok(path) => println!("profile: {}", path.display()),
                Err(e) => {
                    eprintln!("profile: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    let (programs, default_name) = match bench {
        Some(b) => {
            if !benchmark_names().contains(&b.as_str()) {
                eprintln!("profile: unknown benchmark {b:?}");
                return ExitCode::FAILURE;
            }
            (vec![dra_workloads::benchmark(&b)], b)
        }
        None => (
            benchmark_names()
                .iter()
                .map(|n| dra_workloads::benchmark(n))
                .collect(),
            "mibench".to_string(),
        ),
    };
    let name = out_name.unwrap_or(default_name);
    let profile = dra_workloads::extract_profile(&name, &programs);
    match write_profile(Path::new("."), &profile) {
        Ok(path) => {
            println!("profile: {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("profile: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `drac corpus`: synthesize a corpus from a profile and compile every
/// program through a resident session with the symbolic checker on.
/// Exits nonzero on any compile error or checker violation.
fn run_corpus_cmd(args: &[String]) -> ExitCode {
    let mut profile_spec: Option<String> = None;
    let mut count = 1000usize;
    let mut seed = 0u64;
    let mut threads = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => match it.next() {
                Some(v) => profile_spec = Some(v.clone()),
                None => return usage(),
            },
            "--count" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => count = v,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(spec) = profile_spec else {
        eprintln!("corpus: --profile is required (a builtin name or a profile JSON path)");
        return ExitCode::FAILURE;
    };
    let profile = match resolve_profile(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("corpus: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut setup = corpus_setup();
    dra_core::knob::apply_cache_cap(&mut setup);
    setup.batch_threads = threads;
    let report = match run_corpus_compile(&profile, count, seed, threads, &setup) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("corpus: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "corpus {}: {} functions in {} programs — {} errors, {} checker violations ({} functions checked)",
        profile.name,
        report.functions,
        report.programs,
        report.errors,
        report.violations,
        report.telemetry.counter("checker.functions"),
    );
    match report.telemetry.write_results(Path::new("."), "corpus") {
        Ok(path) => println!("telemetry: {}", path.display()),
        Err(e) => {
            eprintln!("telemetry write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.errors > 0 || report.violations > 0 {
        eprintln!("corpus: FAILED");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `drac bench-corpus`: the corpus throughput experiment (jobs/sec per
/// worker count, scratch arenas off vs on, cache evictions, peak RSS);
/// `--smoke` shrinks it to CI scale.
fn run_bench_corpus_cmd(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut profile_spec = "call-heavy".to_string();
    let mut count: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut threads: Option<Vec<usize>> = None;
    let mut out = PathBuf::from("results/corpus_bench.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--profile" => match it.next() {
                Some(v) => profile_spec = v.clone(),
                None => return usage(),
            },
            "--count" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => count = Some(v),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = Some(v),
                None => return usage(),
            },
            "--threads" => match it.next() {
                Some(v) => {
                    let parsed: Option<Vec<usize>> =
                        v.split(',').map(|w| w.trim().parse().ok()).collect();
                    match parsed {
                        Some(t) if !t.is_empty() => threads = Some(t),
                        _ => return usage(),
                    }
                }
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let profile = match resolve_profile(&profile_spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench-corpus: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = if smoke {
        CorpusBenchConfig::smoke(profile)
    } else {
        CorpusBenchConfig::standard(profile)
    };
    if let Some(c) = count {
        cfg.count = c;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(t) = threads {
        cfg.threads = t;
    }
    dra_core::knob::apply_cache_cap(&mut cfg.setup);
    let report = match run_corpus_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-corpus: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if let Some(parent) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("bench-corpus: {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("bench-corpus: {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("report: {}", out.display());
    let errors: u64 = report.phases.iter().map(|p| p.errors).sum();
    if errors > 0 {
        eprintln!("bench-corpus: {errors} compiles failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `drac chaos`: the full benchmark × approach matrix under seeded
/// pipeline faults (worker panics, per-function alloc/verify failures),
/// plus an `n_faults`-deep stream-corruption campaign per benchmark.
/// Writes the verdict to `results/telemetry/chaos.json`; exits nonzero if
/// containment fails — an un-injected cell errors, a fault escapes
/// adjudication, or a corrupted stream decodes to different registers
/// without being detected.
fn run_chaos(seed: u64, n_faults: usize) -> ExitCode {
    let names = benchmark_names();
    let mut approaches = Approach::ALL.to_vec();
    approaches.push(Approach::Adaptive);
    let cells = names.len() * approaches.len();

    let mut setup = LowEndSetup::default();
    setup.faults = PipelineFaults::from_seed(seed, cells, 4);
    println!(
        "chaos: seed {seed}, {cells} cells, {} injected panics, {} alloc faults, {} verify faults",
        setup.faults.panic_cells.len(),
        setup.faults.fail_alloc_funcs.len(),
        setup.faults.fail_verify_funcs.len(),
    );

    // Injected cell panics are caught by the isolated driver; keep the
    // default hook from dumping a backtrace per (expected) unwind.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (matrix, mut telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
    std::panic::set_hook(prev_hook);
    let mut contained = true;
    for (bi, row) in matrix.iter().enumerate() {
        for (ai, cell) in row.iter().enumerate() {
            let ci = bi * approaches.len() + ai;
            let injected = setup.faults.panic_cells.contains(&ci);
            match cell {
                Ok(_) => {
                    if injected {
                        eprintln!("cell {ci}: injected panic did not surface");
                        contained = false;
                    }
                }
                Err(e) if injected => {
                    println!("cell {ci} ({}, {}): {e}", names[bi], approaches[ai].label());
                }
                Err(e) => {
                    eprintln!(
                        "cell {ci} ({}, {}): UNCONTAINED: {e}",
                        names[bi],
                        approaches[ai].label()
                    );
                    contained = false;
                }
            }
        }
    }

    // Stream-corruption campaigns: compile each benchmark clean, then
    // corrupt its encoded diff stream n_faults ways.
    let clean = LowEndSetup::default();
    let cfg = EncodingConfig::new(clean.diff);
    for (i, name) in names.iter().enumerate() {
        let run = match compile_and_run(name, Approach::Select, &clean) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: clean compile failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let f = &run.program.funcs[run.program.entry as usize];
        let campaign_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        match run_fault_campaign(f, &cfg, &run.entry_trace, campaign_seed, n_faults) {
            Ok(report) => {
                report.record(&mut telemetry);
                println!(
                    "{name}: {} faults — {} detected ({} checker-only), {} benign, {} diverged",
                    report.injected,
                    report.detected,
                    report.detected_static,
                    report.benign,
                    report.diverged
                );
                if !report.fully_adjudicated() {
                    eprintln!("{name}: campaign left faults unadjudicated");
                    contained = false;
                }
            }
            Err(e) => {
                eprintln!("{name}: clean stream failed to decode: {e}");
                contained = false;
            }
        }
    }

    match telemetry.write_results(std::path::Path::new("."), "chaos") {
        Ok(path) => println!("telemetry: {}", path.display()),
        Err(e) => {
            eprintln!("telemetry write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if contained {
        println!("chaos: all faults contained");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos: CONTAINMENT FAILURE");
        ExitCode::FAILURE
    }
}

/// `drac chaos --serve`: the serve-level fault campaign — overload,
/// deadline storms, worker kills, vanishing clients — run twice under a
/// watchdog, with the determinism verdict in `results/chaos_serve.json`.
fn run_chaos_serve_cmd(seed: u64) -> ExitCode {
    let config = ChaosServeConfig {
        seed,
        out_path: Some(PathBuf::from("results/chaos_serve.json")),
        telemetry_root: Some(PathBuf::from(".")),
        ..ChaosServeConfig::default()
    };
    let report = match run_chaos_serve(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos --serve: INVARIANT VIOLATION: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if let Some(path) = &config.out_path {
        println!("report: {}", path.display());
    }
    if report.passed() {
        println!("chaos --serve: all invariants held");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos --serve: NONDETERMINISM DETECTED");
        ExitCode::FAILURE
    }
}
