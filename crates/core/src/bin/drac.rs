//! `drac` — the differential register allocation compiler driver.
//!
//! ```text
//! drac list
//! drac compile --bench sha --approach coalesce [--emit ir|stats|bits|json] [--profile]
//! drac run     --bench sha --approach select   [--profile]
//! drac sweep   --bench sha
//! drac report  results/telemetry/fig11.json …
//! ```
//!
//! A thin command-line front end over `dra-core`: compile any built-in
//! benchmark under any setup, inspect the allocated+encoded IR, dump the
//! assembled LEAF16 words, run the cycle-level simulation, or validate
//! and pretty-print a run's emitted telemetry.

use dra_core::batch::run_lowend_matrix_with_telemetry;
use dra_core::faults::{run_fault_campaign, PipelineFaults};
use dra_core::lowend::{compile_and_run, Approach, LowEndSetup};
use dra_core::profile::compile_and_run_profiled;
use dra_core::telemetry::validate_telemetry;
use dra_encoding::EncodingConfig;
use dra_workloads::benchmark_names;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  drac list\n  drac compile --bench <name> --approach <a> [--emit ir|stats|bits|json] [--profile]\n  drac run --bench <name> --approach <a> [--profile]\n  drac sweep --bench <name>\n  drac chaos [--seed <n>] [--faults <n>]\n  drac report <telemetry.json>…\n\napproaches: baseline remapping select o-spill coalesce adaptive"
    );
    ExitCode::FAILURE
}

fn parse_approach(s: &str) -> Option<Approach> {
    Some(match s.to_ascii_lowercase().as_str() {
        "baseline" => Approach::Baseline,
        "remapping" | "remap" => Approach::Remapping,
        "select" => Approach::Select,
        "o-spill" | "ospill" => Approach::OSpill,
        "coalesce" => Approach::Coalesce,
        "adaptive" => Approach::Adaptive,
        _ => return None,
    })
}

struct Args {
    bench: Option<String>,
    approach: Option<Approach>,
    emit: String,
    profile: bool,
}

fn parse_args(rest: &[String]) -> Option<Args> {
    let mut args = Args {
        bench: None,
        approach: None,
        emit: "stats".to_string(),
        profile: false,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => args.bench = Some(it.next()?.clone()),
            "--approach" => args.approach = Some(parse_approach(it.next()?)?),
            "--emit" => args.emit = it.next()?.clone(),
            "--profile" => args.profile = true,
            _ => return None,
        }
    }
    Some(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            for n in benchmark_names() {
                println!("{n}");
            }
            ExitCode::SUCCESS
        }
        "compile" | "run" => {
            let Some(args) = parse_args(&argv[1..]) else {
                return usage();
            };
            let (Some(bench), Some(approach)) = (args.bench, args.approach) else {
                return usage();
            };
            let setup = LowEndSetup::default();
            let run = if args.profile {
                compile_and_run_profiled(&bench, approach, &setup)
            } else {
                compile_and_run(&bench, approach, &setup)
            };
            let run = match run {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match (cmd.as_str(), args.emit.as_str()) {
                ("compile", "json") | ("run", "json") => {
                    // Flat JSON object, hand-emitted (no JSON dependency).
                    println!(
                        "{{\"benchmark\":\"{bench}\",\"approach\":\"{}\",\"instructions\":{},\"spill_insts\":{},\"set_last_regs\":{},\"code_bits\":{},\"cycles\":{},\"dynamic_spills\":{},\"dynamic_set_last_regs\":{},\"icache_misses\":{},\"dcache_misses\":{},\"result\":{}}}",
                        approach.label(),
                        run.total_insts,
                        run.spill_insts,
                        run.set_last_regs,
                        run.code_bits,
                        run.cycles,
                        run.dynamic_spills,
                        run.dynamic_set_last_regs,
                        run.icache_misses,
                        run.dcache_misses,
                        run.ret_value.map_or("null".to_string(), |v| v.to_string()),
                    );
                }
                ("compile", "ir") => print!("{}", run.program),
                ("compile", "bits") => {
                    let geom = setup.machine.geometry;
                    let enc = EncodingConfig::new(setup.diff);
                    for f in &run.program.funcs {
                        match dra_encoding::assemble_function(f, &enc, &geom) {
                            Ok(img) => {
                                println!("; {} — {} bits", f.name, img.size_bits());
                                for chunk in img.words.chunks(8) {
                                    let hex: Vec<String> =
                                        chunk.iter().map(|w| format!("{w:04x}")).collect();
                                    println!("  {}", hex.join(" "));
                                }
                            }
                            Err(e) => println!("; {} — not assemblable: {e}", f.name),
                        }
                    }
                }
                _ => {
                    println!("benchmark      {bench}");
                    println!("approach       {}", approach.label());
                    println!("instructions   {}", run.total_insts);
                    println!(
                        "spills         {} ({:.2}%)",
                        run.spill_insts,
                        run.spill_percent()
                    );
                    println!(
                        "set_last_regs  {} ({:.2}%)",
                        run.set_last_regs,
                        run.cost_percent()
                    );
                    println!("code size      {} bits", run.code_bits);
                    println!("cycles         {}", run.cycles);
                    println!("dyn spills     {}", run.dynamic_spills);
                    println!("dyn repairs    {}", run.dynamic_set_last_regs);
                    println!("i-cache misses {}", run.icache_misses);
                    println!("d-cache misses {}", run.dcache_misses);
                    println!("result         {:?}", run.ret_value);
                }
            }
            ExitCode::SUCCESS
        }
        "sweep" => {
            let Some(args) = parse_args(&argv[1..]) else {
                return usage();
            };
            let Some(bench) = args.bench else {
                return usage();
            };
            let setup = LowEndSetup::default();
            println!(
                "{:<11} {:>7} {:>7} {:>11} {:>10}",
                "approach", "spill%", "slr%", "code(bits)", "cycles"
            );
            let mut approaches = Approach::ALL.to_vec();
            approaches.push(Approach::Adaptive);
            for a in approaches {
                match compile_and_run(&bench, a, &setup) {
                    Ok(r) => println!(
                        "{:<11} {:>6.2}% {:>6.2}% {:>11} {:>10}",
                        a.label(),
                        r.spill_percent(),
                        r.cost_percent(),
                        r.code_bits,
                        r.cycles
                    ),
                    Err(e) => println!("{:<11} error: {e}", a.label()),
                }
            }
            ExitCode::SUCCESS
        }
        "chaos" => {
            let mut seed = 1u64;
            let mut n_faults = 96usize;
            let mut it = argv[1..].iter();
            while let Some(a) = it.next() {
                let value = match a.as_str() {
                    "--seed" | "--faults" => match it.next().map(|v| v.parse::<u64>()) {
                        Some(Ok(v)) => v,
                        _ => return usage(),
                    },
                    _ => return usage(),
                };
                match a.as_str() {
                    "--seed" => seed = value,
                    _ => n_faults = value as usize,
                }
            }
            run_chaos(seed, n_faults)
        }
        "report" => {
            if argv.len() < 2 {
                return usage();
            }
            let mut failed = false;
            for (i, path) in argv[1..].iter().enumerate() {
                let src = match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        failed = true;
                        continue;
                    }
                };
                match validate_telemetry(&src) {
                    Ok(report) => {
                        if i > 0 {
                            println!();
                        }
                        print!("{}", report.render());
                    }
                    Err(e) => {
                        eprintln!("{path}: invalid telemetry: {e}");
                        failed = true;
                    }
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

/// `drac chaos`: the full benchmark × approach matrix under seeded
/// pipeline faults (worker panics, per-function alloc/verify failures),
/// plus an `n_faults`-deep stream-corruption campaign per benchmark.
/// Writes the verdict to `results/telemetry/chaos.json`; exits nonzero if
/// containment fails — an un-injected cell errors, a fault escapes
/// adjudication, or a corrupted stream decodes to different registers
/// without being detected.
fn run_chaos(seed: u64, n_faults: usize) -> ExitCode {
    let names = benchmark_names();
    let mut approaches = Approach::ALL.to_vec();
    approaches.push(Approach::Adaptive);
    let cells = names.len() * approaches.len();

    let mut setup = LowEndSetup::default();
    setup.faults = PipelineFaults::from_seed(seed, cells, 4);
    println!(
        "chaos: seed {seed}, {cells} cells, {} injected panics, {} alloc faults, {} verify faults",
        setup.faults.panic_cells.len(),
        setup.faults.fail_alloc_funcs.len(),
        setup.faults.fail_verify_funcs.len(),
    );

    // Injected cell panics are caught by the isolated driver; keep the
    // default hook from dumping a backtrace per (expected) unwind.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (matrix, mut telemetry) = run_lowend_matrix_with_telemetry(&names, &approaches, &setup);
    std::panic::set_hook(prev_hook);
    let mut contained = true;
    for (bi, row) in matrix.iter().enumerate() {
        for (ai, cell) in row.iter().enumerate() {
            let ci = bi * approaches.len() + ai;
            let injected = setup.faults.panic_cells.contains(&ci);
            match cell {
                Ok(_) => {
                    if injected {
                        eprintln!("cell {ci}: injected panic did not surface");
                        contained = false;
                    }
                }
                Err(e) if injected => {
                    println!("cell {ci} ({}, {}): {e}", names[bi], approaches[ai].label());
                }
                Err(e) => {
                    eprintln!(
                        "cell {ci} ({}, {}): UNCONTAINED: {e}",
                        names[bi],
                        approaches[ai].label()
                    );
                    contained = false;
                }
            }
        }
    }

    // Stream-corruption campaigns: compile each benchmark clean, then
    // corrupt its encoded diff stream n_faults ways.
    let clean = LowEndSetup::default();
    let cfg = EncodingConfig::new(clean.diff);
    for (i, name) in names.iter().enumerate() {
        let run = match compile_and_run(name, Approach::Select, &clean) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: clean compile failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let f = &run.program.funcs[run.program.entry as usize];
        let campaign_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        match run_fault_campaign(f, &cfg, &run.entry_trace, campaign_seed, n_faults) {
            Ok(report) => {
                report.record(&mut telemetry);
                println!(
                    "{name}: {} faults — {} detected, {} benign, {} diverged",
                    report.injected, report.detected, report.benign, report.diverged
                );
                if !report.fully_adjudicated() {
                    eprintln!("{name}: campaign left faults unadjudicated");
                    contained = false;
                }
            }
            Err(e) => {
                eprintln!("{name}: clean stream failed to decode: {e}");
                contained = false;
            }
        }
    }

    match telemetry.write_results(std::path::Path::new("."), "chaos") {
        Ok(path) => println!("telemetry: {}", path.display()),
        Err(e) => {
            eprintln!("telemetry write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if contained {
        println!("chaos: all faults contained");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos: CONTAINMENT FAILURE");
        ExitCode::FAILURE
    }
}
