//! Strict environment knobs shared by every experiment entry point.
//!
//! Historically these lived in `dra-bench`, but the `drac` CLI (which
//! lives in this crate and must not depend on the bench harness) needs
//! the same discipline for its own knobs — `DRA_CACHE_CAP` bounds both
//! session caches, for example. The rule everywhere: empty means
//! default, a valid number is taken as-is, and garbage aborts loudly. A
//! typo'd `DRA_THREADS=abc` must kill the experiment, not silently run
//! it with the default.

/// Strictly parse one knob value: empty/whitespace means `default`, a
/// valid number is taken as-is, and anything else panics naming the knob
/// and the offending value.
///
/// Separated from the environment read so both paths are testable without
/// racing on process-global env state.
///
/// # Panics
///
/// On any non-empty value that does not parse as an unsigned integer.
pub fn parse_knob(name: &str, raw: &str, default: usize) -> usize {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return default;
    }
    trimmed.parse().unwrap_or_else(|_| {
        panic!("{name}={raw:?} is not an unsigned integer (unset it or pass a number)")
    })
}

/// Read an environment knob through [`parse_knob`].
///
/// # Panics
///
/// As [`parse_knob`]; also on a value that is not valid unicode.
pub fn env_knob(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("{name}: {e}"),
        Ok(raw) => parse_knob(name, &raw, default),
    }
}

/// Apply the `DRA_CACHE_CAP` override to a [`crate::lowend::LowEndSetup`]:
/// when set, it bounds **both** session caches (source artifacts and
/// finished allocations) to the same entry count, modelling a
/// memory-constrained deployment with one knob. Unset leaves the setup's
/// own capacities (the compiled-in defaults) untouched.
///
/// # Panics
///
/// On an unparseable `DRA_CACHE_CAP` value.
pub fn apply_cache_cap(setup: &mut crate::lowend::LowEndSetup) {
    let source = env_knob("DRA_CACHE_CAP", setup.source_cache_cap);
    let result = env_knob("DRA_CACHE_CAP", setup.result_cache_cap);
    setup.source_cache_cap = source;
    setup.result_cache_cap = result;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_parses_valid_values() {
        assert_eq!(parse_knob("DRA_CACHE_CAP", "64", 512), 64);
        assert_eq!(parse_knob("DRA_CACHE_CAP", " 8 ", 0), 8);
        assert_eq!(parse_knob("DRA_CACHE_CAP", "0", 4), 0);
    }

    #[test]
    fn knob_empty_means_default() {
        assert_eq!(parse_knob("DRA_CACHE_CAP", "", 512), 512);
        assert_eq!(parse_knob("DRA_CACHE_CAP", "  ", 256), 256);
    }

    #[test]
    fn knob_rejects_garbage_loudly() {
        for bad in ["abc", "-3", "1.5", "8 entries"] {
            let err = std::panic::catch_unwind(|| parse_knob("DRA_CACHE_CAP", bad, 0))
                .expect_err("garbage must panic, not fall back to the default");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("DRA_CACHE_CAP") && msg.contains(bad),
                "panic must name the knob and the offending value: {msg:?}"
            );
        }
    }

    #[test]
    fn cache_cap_overrides_both_capacities() {
        // The only test touching this env var, so no parallel-test race
        // on the process-global environment.
        let mut setup = crate::lowend::LowEndSetup::default();
        std::env::set_var("DRA_CACHE_CAP", "33");
        apply_cache_cap(&mut setup);
        std::env::remove_var("DRA_CACHE_CAP");
        assert_eq!(setup.source_cache_cap, 33);
        assert_eq!(setup.result_cache_cap, 33);
        let defaults = crate::lowend::LowEndSetup::default();
        let mut setup = defaults.clone();
        apply_cache_cap(&mut setup);
        assert_eq!(setup.source_cache_cap, defaults.source_cache_cap);
        assert_eq!(setup.result_cache_cap, defaults.result_cache_cap);
    }
}
