//! Pipeline telemetry: a lightweight, dependency-free span/counter
//! registry threaded through the compile→allocate→encode→verify→simulate
//! pipeline.
//!
//! Before this module existed the pipeline's measurements were scattered:
//! `RemapStats` carried the remap search's work counters, `RepairStats`
//! and `AllocStats` were computed and then dropped on the floor by the
//! drivers, and per-stage time was not recorded at all. [`Telemetry`] is
//! the single sink: every pipeline cell records named **counters** (work
//! done — spills, coalesced moves, repairs, remap evaluations, cache
//! hits) and named **spans** (per-stage wall-clock nanoseconds), and cells
//! merge into batch-level aggregates by summation.
//!
//! # Determinism contract
//!
//! The two kinds of measurement have different reproducibility guarantees,
//! mirroring how `RemapStats::search_nanos` has always been normalized out
//! of determinism tests:
//!
//! * **Counters are schedule-invariant**: they count work that is a pure
//!   function of the input (and of fixed configuration such as
//!   `RemapConfig::threads`), never of how the batch driver interleaved
//!   cells. Aggregated counter values are bit-identical at any
//!   `batch_threads` (pinned in `tests/batch_determinism.rs`).
//! * **Spans are wall-clock only**: they measure elapsed time and vary run
//!   to run. They are reported for profiling, excluded from every equality
//!   contract, and dropped by [`Telemetry::clear_spans`] wherever runs are
//!   compared.
//!
//! # JSON schema
//!
//! [`Telemetry::to_json`] emits a stable, versioned object (see
//! [`SCHEMA`]):
//!
//! ```json
//! {
//!   "schema": "dra-telemetry-v1",
//!   "binary": "fig11",
//!   "counters": { "alloc.spilled_vregs": 42, ... },
//!   "spans_ns": { "simulate": 1234567, ... }
//! }
//! ```
//!
//! Keys are sorted (both maps are `BTreeMap`s), counter/span names are
//! dot-separated `stage.metric` identifiers, and values are unsigned
//! integers. The figure/table binaries write one such object to
//! `results/telemetry/<binary>.json`; `drac report <path>` parses,
//! validates, and pretty-prints it — and the tier-1 smoke in
//! `scripts/tier1.sh` uses that same validation as a schema regression
//! guard. Parsing needs no dependency: [`parse_json`] is a minimal
//! recursive-descent JSON reader sufficient for the schema (and strict
//! enough to reject malformed files).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// The stack of [`Telemetry::time`] span names currently live on this
    /// thread. Innermost last; read when a panic unwinds through a span.
    static STAGE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// The innermost stage a panic unwound through, captured by the first
    /// [`StageGuard`] dropped while the thread is panicking. First write
    /// wins so outer spans cannot overwrite the precise site.
    static PANIC_STAGE: RefCell<Option<String>> = const { RefCell::new(None) };
    /// The cancellation token armed for the work currently running on this
    /// thread, if any. Checked at every stage boundary ([`enter_stage`]),
    /// so a long pipeline observes cancellation between `alloc`, `remap`,
    /// `repair`, `verify`, `simulate`, ... without any stage cooperating.
    static CANCEL: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// A cooperative cancellation token: an explicit cancel flag plus an
/// optional wall-clock deadline. Cloning shares the flag (an `Arc`), so a
/// server can hand the token to a worker and still cancel it from outside.
///
/// Cancellation is *cooperative*: nothing is interrupted mid-instruction.
/// Instead, [`arm_cancel`] installs the token in a thread-local slot and
/// every [`enter_stage`] boundary (plus explicit [`check_cancelled`]
/// call-sites such as the session cache) tests it. An expired token makes
/// the boundary unwind with a [`CancelUnwind`] payload, which
/// `run_isolated_cancellable` recognizes and converts into
/// `CellOutcome::Cancelled { stage }` — distinct from a real panic, never
/// retried.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A token that never expires on its own (cancel via [`Self::cancel`]).
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that expires at `deadline` (`None` behaves like [`Self::new`]).
    pub fn with_deadline(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            deadline,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Trip the explicit cancel flag (visible to every clone).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once the flag is tripped or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The unwind payload used by cancellation checkpoints. Carried through
/// `panic_any` so `catch_unwind` sites can tell "the deadline expired at a
/// stage boundary" apart from a genuine defect panic.
#[derive(Clone, Debug)]
pub struct CancelUnwind {
    /// The stage boundary (or named checkpoint) that observed cancellation.
    pub stage: String,
}

/// RAII restorer for the thread-local cancel slot; see [`arm_cancel`].
pub struct CancelGuard {
    prev: Option<CancelToken>,
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CANCEL.with(|c| *c.borrow_mut() = prev);
    }
}

/// Install `token` as this thread's active cancellation token until the
/// guard drops (the previous token, if any, is restored — tokens nest).
pub fn arm_cancel(token: &CancelToken) -> CancelGuard {
    let prev = CANCEL.with(|c| c.borrow_mut().replace(token.clone()));
    CancelGuard { prev }
}

/// Explicit cancellation checkpoint: if this thread's armed token is
/// cancelled or past its deadline, unwind with [`CancelUnwind`] naming
/// `site`. A no-op when no token is armed (every non-serving caller).
pub fn check_cancelled(site: &str) {
    let expired = CANCEL.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    });
    if expired {
        std::panic::panic_any(CancelUnwind {
            stage: site.to_string(),
        });
    }
}

/// Install a process-wide panic-hook filter (once) that silences the panic
/// message for [`CancelUnwind`] payloads. Deadline cancellations are an
/// expected, counted outcome under load — without this, every shed request
/// would print a spurious "thread panicked" line. All other panics chain
/// to the previously installed hook unchanged.
pub fn install_cancel_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelUnwind>().is_none() {
                prev(info);
            }
        }));
    });
}

/// RAII marker for a named pipeline stage, pushed by [`Telemetry::time`]
/// (or [`enter_stage`] directly). When a panic unwinds through the guard,
/// the innermost live stage name is recorded for
/// [`take_panic_stage`] — that is how the panic-isolated batch driver
/// attributes a caught panic to `alloc`/`repair`/`verify`/`simulate`
/// without any cooperation from the panicking code.
pub struct StageGuard(());

impl Drop for StageGuard {
    fn drop(&mut self) {
        STAGE_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if std::thread::panicking() {
                if let Some(name) = stack.last() {
                    PANIC_STAGE.with(|p| {
                        let mut p = p.borrow_mut();
                        if p.is_none() {
                            *p = Some(name.clone());
                        }
                    });
                }
            }
            stack.pop();
        });
    }
}

/// Push `name` onto this thread's stage stack until the guard drops.
///
/// Every stage entry doubles as a cancellation checkpoint: if a
/// [`CancelToken`] is armed on this thread and has expired, the call
/// unwinds with [`CancelUnwind`] *before* the stage runs, so a request
/// whose deadline passed mid-pipeline stops at the next stage boundary
/// instead of burning a full compile.
pub fn enter_stage(name: &str) -> StageGuard {
    check_cancelled(name);
    STAGE_STACK.with(|stack| stack.borrow_mut().push(name.to_string()));
    StageGuard(())
}

/// Take (and clear) the stage the last caught panic unwound through, if
/// any. The panic-isolated batch driver calls this after `catch_unwind`
/// to label the failed cell; it also clears the slot *before* each
/// attempt so a stale stage from an earlier failure cannot leak in.
pub fn take_panic_stage() -> Option<String> {
    PANIC_STAGE.with(|p| p.borrow_mut().take())
}

/// Schema identifier embedded in every emitted telemetry object. Bump the
/// suffix when the layout changes incompatibly.
pub const SCHEMA: &str = "dra-telemetry-v1";

/// Keys every telemetry JSON object must carry to be schema-valid.
pub const REQUIRED_KEYS: [&str; 4] = ["schema", "binary", "counters", "spans_ns"];

/// Registered pipeline stages: the first dot-separated segment of every
/// counter and span name must appear here for a document to be
/// schema-valid. Keeping the registry in one place means a typo'd or
/// renamed stage fails `drac report` (and the tier-1 smoke) instead of
/// shipping a silently unreadable counter.
pub const STAGES: [&str; 21] = [
    "alloc",
    "batch",
    "bench_serve",
    "cells",
    "checker",
    "corpus",
    "degrade",
    "faults",
    "irc",
    "parse",
    "profile",
    "remap",
    "repair",
    "result_cache",
    "serve",
    "sim",
    "simulate",
    "source_cache",
    "sweep",
    "swp",
    "verify",
];

/// The span/counter registry of one pipeline cell or one aggregated batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, u64>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Add `nanos` to span `name` (creating it at zero).
    pub fn span_ns(&mut self, name: &str, nanos: u64) {
        *self.spans.entry(name.to_string()).or_insert(0) += nanos;
    }

    /// Run `f`, recording its wall-clock time under span `name`. The span
    /// also serves as a stage marker: if `f` panics, the unwind records
    /// `name` (or a nested span's name) for [`take_panic_stage`].
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let _stage = enter_stage(name);
        let t0 = Instant::now();
        let r = f();
        self.span_ns(name, t0.elapsed().as_nanos() as u64);
        r
    }

    /// The value of counter `name` (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The accumulated nanoseconds of span `name` (0 if never recorded).
    pub fn span(&self, name: &str) -> u64 {
        self.spans.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All spans (nanoseconds), sorted by name.
    pub fn spans(&self) -> &BTreeMap<String, u64> {
        &self.spans
    }

    /// Sum another registry into this one (counters and spans add).
    pub fn merge(&mut self, other: &Telemetry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.spans {
            *self.spans.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Overwrite counter `name` with `value` (creating it if absent).
    /// Exists for test normalization: the remap search's work counters
    /// are schedule-dependent under a parallel early exit and get pinned
    /// to zero before runs are compared.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Drop every span. Used wherever two runs are compared for
    /// equality: spans are wall-clock-only and exempt from the
    /// determinism contract (two identical pipelines may not even record
    /// the same span *keys* — e.g. a cache-served run has no `parse`).
    pub fn clear_spans(&mut self) {
        self.spans.clear();
    }

    /// Serialize as the stable `dra-telemetry-v1` JSON object.
    pub fn to_json(&self, binary: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"binary\": \"{}\",", escape_json(binary));
        let _ = writeln!(out, "  \"counters\": {{");
        write_map(&mut out, &self.counters);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"spans_ns\": {{");
        write_map(&mut out, &self.spans);
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// [`Telemetry::to_json`] on a single line — the form embedded in
    /// line-delimited protocols (`dra-serve-v1` `stats` responses), where
    /// a newline would terminate the frame. Parses to the same document.
    pub fn to_json_compact(&self, binary: &str) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{SCHEMA}\",\"binary\":\"{}\",\"counters\":{{",
            escape_json(binary)
        );
        write_map_compact(&mut out, &self.counters);
        let _ = write!(out, "}},\"spans_ns\":{{");
        write_map_compact(&mut out, &self.spans);
        let _ = write!(out, "}}}}");
        out
    }

    /// Write `to_json` to `results/telemetry/<binary>.json` relative to
    /// `root`, creating the directory. Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (missing `root`, permissions).
    pub fn write_results(
        &self,
        root: &std::path::Path,
        binary: &str,
    ) -> std::io::Result<PathBuf> {
        let dir = root.join("results").join("telemetry");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{binary}.json"));
        std::fs::write(&path, self.to_json(binary))?;
        Ok(path)
    }
}

fn write_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let n = map.len();
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {v}{comma}", escape_json(k));
    }
}

fn write_map_compact(out: &mut String, map: &BTreeMap<String, u64>) {
    let n = map.len();
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = write!(out, "\"{}\":{v}{comma}", escape_json(k));
    }
}

/// JSON string-escape `s` (quotes, backslashes, control characters).
/// Public because every hand-emitted JSON writer in the workspace — the
/// telemetry files, the `dra-serve-v1` responses, the serve-bench
/// artifact — must escape identically.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (validation + `drac report`); no dependencies.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values round-trip exactly up to 2^63.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as u64, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// A human-readable description with the byte offset of the failure.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences intact).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut arr = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(arr));
    }
    loop {
        arr.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Schema validation + report rendering (`drac report`, tier-1 smoke).
// ---------------------------------------------------------------------------

/// A schema-validated telemetry document.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryReport {
    /// The emitting binary's name.
    pub binary: String,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Span name → nanoseconds.
    pub spans_ns: BTreeMap<String, u64>,
}

/// Parse and schema-validate a telemetry JSON document.
///
/// # Errors
///
/// A description of the first violation: parse failure, missing required
/// key ([`REQUIRED_KEYS`]), wrong schema identifier, a non-integer
/// counter/span value, or a counter/span whose stage prefix is not in
/// [`STAGES`].
pub fn validate_telemetry(src: &str) -> Result<TelemetryReport, String> {
    let doc = parse_json(src)?;
    let obj = doc.as_obj().ok_or("top level is not an object")?;
    for key in REQUIRED_KEYS {
        if !obj.contains_key(key) {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let schema = obj["schema"]
        .as_str()
        .ok_or("\"schema\" is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let binary = obj["binary"]
        .as_str()
        .ok_or("\"binary\" is not a string")?
        .to_string();
    let read_map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
        let m = obj[key]
            .as_obj()
            .ok_or_else(|| format!("{key:?} is not an object"))?;
        m.iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("{key:?} entry {k:?} is not an unsigned integer"))
            })
            .collect()
    };
    let check_stages = |key: &str, m: &BTreeMap<String, u64>| -> Result<(), String> {
        for name in m.keys() {
            let stage = name.split('.').next().unwrap_or(name);
            if !STAGES.contains(&stage) {
                return Err(format!(
                    "{key:?} entry {name:?} uses unregistered stage {stage:?}"
                ));
            }
        }
        Ok(())
    };
    let counters = read_map("counters")?;
    let spans_ns = read_map("spans_ns")?;
    check_stages("counters", &counters)?;
    check_stages("spans_ns", &spans_ns)?;
    Ok(TelemetryReport {
        binary,
        counters,
        spans_ns,
    })
}

impl TelemetryReport {
    /// Human-readable rendering (the body of `drac report`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "telemetry — {}", self.binary);
        let width = self
            .counters
            .keys()
            .chain(self.spans_ns.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "counters:");
        if self.counters.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
        let _ = writeln!(out, "spans (wall-clock):");
        if self.spans_ns.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        for (k, v) in &self.spans_ns {
            let _ = writeln!(out, "  {k:<width$}  {:.3} ms", *v as f64 / 1e6);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_spans_accumulate() {
        let mut t = Telemetry::new();
        t.count("a.x", 2);
        t.count("a.x", 3);
        t.span_ns("s", 10);
        t.span_ns("s", 5);
        assert_eq!(t.counter("a.x"), 5);
        assert_eq!(t.span("s"), 15);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn merge_sums_both_kinds() {
        let mut a = Telemetry::new();
        a.count("c", 1);
        a.span_ns("s", 7);
        let mut b = Telemetry::new();
        b.count("c", 2);
        b.count("d", 4);
        b.span_ns("s", 3);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 4);
        assert_eq!(a.span("s"), 10);
    }

    #[test]
    fn clear_spans_keeps_counters() {
        let mut t = Telemetry::new();
        t.count("c", 9);
        t.span_ns("s", 9);
        t.clear_spans();
        assert_eq!(t.counter("c"), 9);
        assert!(t.spans().is_empty());
        t.set_counter("c", 0);
        assert_eq!(t.counter("c"), 0);
    }

    #[test]
    fn time_records_a_span() {
        let mut t = Telemetry::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.spans().contains_key("work"));
    }

    #[test]
    fn json_roundtrips_through_validation() {
        let mut t = Telemetry::new();
        t.count("alloc.spilled_vregs", 42);
        t.count("sim.cycles", 123_456_789);
        t.span_ns("simulate", 5_000_000);
        let json = t.to_json("fig99");
        let rep = validate_telemetry(&json).expect("schema-valid");
        assert_eq!(rep.binary, "fig99");
        assert_eq!(rep.counters["alloc.spilled_vregs"], 42);
        assert_eq!(rep.counters["sim.cycles"], 123_456_789);
        assert_eq!(rep.spans_ns["simulate"], 5_000_000);
    }

    #[test]
    fn compact_json_is_one_line_and_roundtrips() {
        let mut t = Telemetry::new();
        t.count("serve.requests", 7);
        t.span_ns("serve.request", 1234);
        let compact = t.to_json_compact("serve");
        assert!(!compact.contains('\n'), "single-line frame");
        let rep = validate_telemetry(&compact).expect("schema-valid");
        assert_eq!(rep.binary, "serve");
        assert_eq!(rep.counters["serve.requests"], 7);
        assert_eq!(rep.spans_ns["serve.request"], 1234);
        // Identical document to the pretty form.
        assert_eq!(rep, validate_telemetry(&t.to_json("serve")).unwrap());
    }

    #[test]
    fn empty_registry_is_still_schema_valid() {
        let json = Telemetry::new().to_json("empty");
        let rep = validate_telemetry(&json).unwrap();
        assert!(rep.counters.is_empty());
        assert!(rep.spans_ns.is_empty());
    }

    #[test]
    fn validation_rejects_bad_documents() {
        assert!(validate_telemetry("not json").is_err());
        assert!(validate_telemetry("[1,2,3]").is_err());
        assert!(validate_telemetry("{}").unwrap_err().contains("schema"));
        let missing =
            "{\"schema\": \"dra-telemetry-v1\", \"binary\": \"x\", \"counters\": {}}";
        assert!(validate_telemetry(missing).unwrap_err().contains("spans_ns"));
        let wrong_schema =
            "{\"schema\": \"v0\", \"binary\": \"x\", \"counters\": {}, \"spans_ns\": {}}";
        assert!(validate_telemetry(wrong_schema).unwrap_err().contains("expected"));
        let float_counter = "{\"schema\": \"dra-telemetry-v1\", \"binary\": \"x\", \
             \"counters\": {\"c\": 1.5}, \"spans_ns\": {}}";
        assert!(validate_telemetry(float_counter)
            .unwrap_err()
            .contains("unsigned integer"));
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        assert_eq!(parse_json("null"), Ok(Json::Null));
        assert_eq!(parse_json(" true "), Ok(Json::Bool(true)));
        assert_eq!(parse_json("-2.5e1"), Ok(Json::Num(-25.0)));
        assert_eq!(
            parse_json("\"a\\n\\\"b\\u0041\""),
            Ok(Json::Str("a\n\"bA".to_string()))
        );
        assert_eq!(
            parse_json("[1, [2], {}]"),
            Ok(Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(BTreeMap::new())
            ]))
        );
        let obj = parse_json("{\"k\": 7, \"s\": \"v\"}").unwrap();
        assert_eq!(obj.as_obj().unwrap()["k"].as_u64(), Some(7));
        assert_eq!(obj.as_obj().unwrap()["s"].as_str(), Some("v"));
        // Malformed inputs are rejected, not mangled.
        assert!(parse_json("{\"k\": }").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"open").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn escaping_roundtrips_through_parser() {
        let mut t = Telemetry::new();
        t.count("checker.weird\"name\\with\nescapes", 1);
        let rep = validate_telemetry(&t.to_json("bin\"ary")).unwrap();
        assert_eq!(rep.binary, "bin\"ary");
        assert_eq!(rep.counters["checker.weird\"name\\with\nescapes"], 1);
    }

    #[test]
    fn validation_rejects_unregistered_stages() {
        let mut t = Telemetry::new();
        t.count("chekcer.violations", 1); // typo'd stage
        let err = validate_telemetry(&t.to_json("x")).unwrap_err();
        assert!(err.contains("unregistered stage"), "{err}");
        assert!(err.contains("chekcer"), "{err}");
        let mut ok = Telemetry::new();
        ok.count("checker.violations", 0);
        ok.span_ns("checker", 42);
        validate_telemetry(&ok.to_json("x")).expect("registered stage is valid");
    }

    #[test]
    fn report_renders_counters_and_spans() {
        let mut t = Telemetry::new();
        t.count("alloc.one", 11);
        t.span_ns("simulate", 2_500_000);
        let rep = validate_telemetry(&t.to_json("b")).unwrap();
        let text = rep.render();
        assert!(text.contains("telemetry — b"));
        assert!(text.contains("alloc.one"));
        assert!(text.contains("11"));
        assert!(text.contains("2.500 ms"));
    }

    #[test]
    fn write_results_creates_the_directory() {
        let dir = std::env::temp_dir().join(format!(
            "dra-telemetry-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = Telemetry::new();
        t.count("cells", 1);
        let path = t.write_results(&dir, "unit").unwrap();
        assert!(path.ends_with("results/telemetry/unit.json"));
        let src = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_telemetry(&src).unwrap().counters["cells"], 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_token_trips_on_flag_and_deadline() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled(), "clones share the flag");
        let expired = CancelToken::with_deadline(Some(Instant::now()));
        assert!(expired.is_cancelled());
        let distant =
            CancelToken::with_deadline(Some(Instant::now() + std::time::Duration::from_secs(3600)));
        assert!(!distant.is_cancelled());
    }

    #[test]
    fn stage_boundary_unwinds_with_cancel_payload_when_armed() {
        install_cancel_quiet_hook();
        let token = CancelToken::new();
        let caught = std::panic::catch_unwind(|| {
            let _armed = arm_cancel(&token);
            let mut t = Telemetry::new();
            t.time("alloc", || token.cancel());
            // Next boundary observes the tripped flag.
            t.time("verify", || unreachable!("stage must not run"))
        });
        let payload = caught.expect_err("cancellation unwinds");
        let cancel = payload
            .downcast_ref::<CancelUnwind>()
            .expect("payload is CancelUnwind");
        assert_eq!(cancel.stage, "verify");
        // The guard restored the slot: an unarmed thread never trips.
        let mut t = Telemetry::new();
        t.time("alloc", || ());
    }

    #[test]
    fn check_cancelled_is_a_noop_without_a_token() {
        check_cancelled("anywhere");
    }

    #[test]
    fn panic_stage_captures_the_innermost_span() {
        let caught = std::panic::catch_unwind(|| {
            let mut t = Telemetry::new();
            t.time("outer", || {
                let mut inner = Telemetry::new();
                inner.time("inner", || panic!("boom"))
            })
        });
        assert!(caught.is_err());
        assert_eq!(take_panic_stage().as_deref(), Some("inner"));
        // The slot is cleared by the take; the stack fully unwound.
        assert_eq!(take_panic_stage(), None);
        let mut t = Telemetry::new();
        t.time("calm", || ());
        assert_eq!(take_panic_stage(), None, "non-panicking spans record nothing");
    }
}
