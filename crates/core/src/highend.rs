//! The Section 10.2 pipeline: software-pipeline a loop suite at a swept
//! `RegN` and aggregate the Table 2 / Table 3 quantities.

use crate::telemetry::Telemetry;
use dra_swp::{pipeline_loop, PipelineConfig, PipelinedLoop};
use dra_workloads::SuiteLoop;

/// Setup of one high-end sweep point.
#[derive(Clone, Debug)]
pub struct HighEndSetup {
    /// Registers addressable at this sweep point (32 = no differential).
    pub reg_n: u16,
    /// Fraction of total execution time spent in loops (the paper: >80%).
    pub loop_time_fraction: f64,
    /// Fraction of static code occupied by the studied loops (small —
    /// loops are hot, not big).
    pub loop_code_fraction: f64,
    /// Bytes per VLIW instruction word (LEAF32).
    pub inst_bytes: u64,
    /// Worker threads for pipelining the suite's loops in parallel
    /// (`0` = one per CPU). Loops are independent; the aggregate is
    /// identical at any thread count.
    pub batch_threads: usize,
}

impl HighEndSetup {
    /// The paper's configuration at a given `RegN`.
    pub fn at(reg_n: u16) -> Self {
        HighEndSetup {
            reg_n,
            loop_time_fraction: 0.8,
            loop_code_fraction: 0.10,
            inst_bytes: 4,
            batch_threads: 0,
        }
    }
}

/// Aggregated results over a loop suite at one `RegN`.
#[derive(Clone, Debug, PartialEq)]
pub struct HighEndAggregate {
    /// The sweep point.
    pub reg_n: u16,
    /// Cycles summed over the *optimized* loops (those that needed more
    /// than the direct-encodable registers at baseline).
    pub optimized_cycles: u64,
    /// Cycles summed over all loops.
    pub all_cycles: u64,
    /// Spill DDG operations in optimized loops.
    pub optimized_spills: usize,
    /// Static instruction count of the optimized-loop kernels (including
    /// spill ops and promoted `set_last_reg`s).
    pub optimized_code_insts: usize,
    /// Static instruction count over all loop kernels.
    pub all_code_insts: usize,
    /// Total `set_last_reg`s promoted.
    pub set_last_regs: usize,
    /// Number of loops flagged as optimized (register-hungry).
    pub optimized_loops: usize,
    /// Loops processed.
    pub total_loops: usize,
}

impl HighEndAggregate {
    /// Whole-program cycles, assuming loops are `loop_time_fraction` of
    /// execution at the baseline.
    pub fn overall_cycles(&self, setup: &HighEndSetup, baseline_all_cycles: u64) -> f64 {
        // Non-loop time is constant across sweep points.
        let nonloop = baseline_all_cycles as f64 * (1.0 - setup.loop_time_fraction)
            / setup.loop_time_fraction;
        self.all_cycles as f64 + nonloop
    }

    /// Code growth of the optimized loops relative to a baseline
    /// aggregate, in percent.
    pub fn optimized_code_growth(&self, baseline: &HighEndAggregate) -> f64 {
        100.0 * (self.optimized_code_insts as f64 - baseline.optimized_code_insts as f64)
            / baseline.optimized_code_insts.max(1) as f64
    }

    /// Code growth over all loops, percent.
    pub fn all_loops_code_growth(&self, baseline: &HighEndAggregate) -> f64 {
        100.0 * (self.all_code_insts as f64 - baseline.all_code_insts as f64)
            / baseline.all_code_insts.max(1) as f64
    }

    /// Code growth over the entire program, percent (loops are only
    /// `loop_code_fraction` of the binary).
    pub fn overall_code_growth(&self, baseline: &HighEndAggregate, setup: &HighEndSetup) -> f64 {
        self.all_loops_code_growth(baseline) * setup.loop_code_fraction
    }
}

/// Pipeline every loop of the suite at `setup.reg_n`.
///
/// Loops whose initial register requirement fits the direct-encodable 32
/// registers are compiled identically at every sweep point (differential
/// encoding stays off — Section 8.2); the "optimized" set is those that
/// exceeded 32.
///
/// Aggregates only loops that pipeline successfully at *this* point; when
/// comparing sweep points, prefer [`run_highend_sweep`], which restricts
/// every point to the common set so cycle totals are comparable.
pub fn run_highend_suite(suite: &[SuiteLoop], setup: &HighEndSetup) -> HighEndAggregate {
    let results: Vec<Option<PipelinedLoop>> =
        pipeline_all(suite, setup.reg_n, setup.batch_threads);
    aggregate(setup.reg_n, &results, &|i| results[i].is_some())
}

/// Run the whole `reg_ns` sweep over one suite, aggregating each point
/// over the loops that pipelined successfully at **every** point, so the
/// cycle/spill/code totals are directly comparable.
///
/// `threads` workers pipeline the whole (sweep point × loop) grid
/// ([`crate::batch::run_batch`]; `0` = one per CPU); the aggregates are
/// identical at any thread count.
pub fn run_highend_sweep(
    suite: &[SuiteLoop],
    reg_ns: &[u16],
    threads: usize,
) -> Vec<HighEndAggregate> {
    sweep_grid(suite, reg_ns, threads).0
}

/// The flat (point × loop) grid behind [`run_highend_sweep`], with the
/// batch driver's panic containment: a poisoned loop cell becomes a hole
/// (dropping that loop from every point's common set), not an abort of
/// the whole sweep. Returns the per-point aggregates and the number of
/// contained cell panics.
fn sweep_grid(
    suite: &[SuiteLoop],
    reg_ns: &[u16],
    threads: usize,
) -> (Vec<HighEndAggregate>, u64) {
    // One flat batch over every (point, loop) cell keeps all workers busy
    // even when one sweep point dominates the cost.
    let cells: Vec<(u16, usize)> = reg_ns
        .iter()
        .flat_map(|&r| (0..suite.len()).map(move |i| (r, i)))
        .collect();
    let (outcomes, stats) =
        crate::batch::run_batch_isolated(&cells, threads, 0, |_, &(reg_n, i)| {
            let cfg = PipelineConfig::highend(reg_n);
            pipeline_loop(&suite[i].ddg, &cfg).ok()
        });
    let mut flat = outcomes.into_iter().map(|o| match o {
        crate::batch::CellOutcome::Ok(r) => r,
        crate::batch::CellOutcome::Failed { .. } | crate::batch::CellOutcome::Cancelled { .. } => {
            None
        }
    });
    let per_point: Vec<Vec<Option<PipelinedLoop>>> = reg_ns
        .iter()
        .map(|_| (0..suite.len()).map(|_| flat.next().expect("cell")).collect())
        .collect();
    let common = |i: usize| per_point.iter().all(|v| v[i].is_some());
    let aggregates = reg_ns
        .iter()
        .zip(&per_point)
        .map(|(&reg_n, results)| aggregate(reg_n, results, &common))
        .collect();
    (aggregates, stats.failed)
}

/// [`run_highend_sweep`], additionally recording telemetry: the
/// per-point aggregates as `swp.*` counters (summed over the sweep, so
/// schedule-invariant — the pipeliner is deterministic per loop) and a
/// wall-clock `sweep` span around the whole grid.
pub fn run_highend_sweep_with_telemetry(
    suite: &[SuiteLoop],
    reg_ns: &[u16],
    threads: usize,
) -> (Vec<HighEndAggregate>, Telemetry) {
    let mut t = Telemetry::new();
    let (sweep, cell_panics) = t.time("sweep", || sweep_grid(suite, reg_ns, threads));
    t.count("swp.sweep_points", sweep.len() as u64);
    t.count("swp.cell_panics", cell_panics);
    for agg in &sweep {
        t.count("swp.loops_total", agg.total_loops as u64);
        t.count("swp.loops_optimized", agg.optimized_loops as u64);
        t.count("swp.set_last_regs", agg.set_last_regs as u64);
        t.count("swp.spills_optimized", agg.optimized_spills as u64);
        t.count("swp.code_insts", agg.all_code_insts as u64);
        t.count("swp.cycles", agg.all_cycles);
    }
    (sweep, t)
}

fn pipeline_all(suite: &[SuiteLoop], reg_n: u16, threads: usize) -> Vec<Option<PipelinedLoop>> {
    let cfg = PipelineConfig::highend(reg_n);
    crate::batch::run_batch(suite, threads, |_, l| pipeline_loop(&l.ddg, &cfg).ok())
}

fn aggregate(
    reg_n: u16,
    results: &[Option<PipelinedLoop>],
    include: &dyn Fn(usize) -> bool,
) -> HighEndAggregate {
    let mut agg = HighEndAggregate {
        reg_n,
        optimized_cycles: 0,
        all_cycles: 0,
        optimized_spills: 0,
        optimized_code_insts: 0,
        all_code_insts: 0,
        set_last_regs: 0,
        optimized_loops: 0,
        total_loops: 0,
    };
    for (i, r) in results.iter().enumerate() {
        if !include(i) {
            continue;
        }
        let Some(r) = r else { continue };
        agg.total_loops += 1;
        let insts = r.kernel_ops + r.set_last_regs;
        agg.all_cycles += r.cycles;
        agg.all_code_insts += insts;
        agg.set_last_regs += r.set_last_regs;
        // "Optimized" = needed more than the 32 direct registers before
        // spilling, the population Table 2's second column tracks.
        if r.max_live_initial > 32 {
            agg.optimized_loops += 1;
            agg.optimized_cycles += r.cycles;
            agg.optimized_spills += r.spill_ops;
            agg.optimized_code_insts += insts;
        }
    }
    agg
}

/// Percentage speedup of `new` cycles over `old` cycles.
pub fn speedup_percent(old: f64, new: f64) -> f64 {
    if new <= 0.0 {
        return 0.0;
    }
    100.0 * (old - new) / new
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_workloads::{generate_loop_suite, LoopSuiteConfig};

    fn suite(n: usize) -> Vec<SuiteLoop> {
        generate_loop_suite(&LoopSuiteConfig {
            n_loops: n,
            hungry_fraction: 0.11,
            seed: 7,
        })
    }

    #[test]
    fn sweep_improves_optimized_loops() {
        let s = suite(40);
        let base = run_highend_suite(&s, &HighEndSetup::at(32));
        let wide = run_highend_suite(&s, &HighEndSetup::at(64));
        assert_eq!(base.total_loops, wide.total_loops);
        assert!(base.optimized_loops > 0, "suite contains hungry loops");
        assert!(
            wide.optimized_cycles < base.optimized_cycles,
            "64 registers must speed up the hungry loops: {} vs {}",
            wide.optimized_cycles,
            base.optimized_cycles
        );
        assert!(
            wide.optimized_spills < base.optimized_spills,
            "spills must drop: {} vs {}",
            wide.optimized_spills,
            base.optimized_spills
        );
    }

    #[test]
    fn common_loops_unchanged_across_sweep() {
        let s = suite(40);
        let base = run_highend_suite(&s, &HighEndSetup::at(32));
        let wide = run_highend_suite(&s, &HighEndSetup::at(48));
        let base_common = base.all_cycles - base.optimized_cycles;
        let wide_common = wide.all_cycles - wide.optimized_cycles;
        assert_eq!(
            base_common, wide_common,
            "loops fitting 32 registers compile identically everywhere"
        );
    }

    #[test]
    fn set_last_regs_only_in_differential_points() {
        let s = suite(30);
        let base = run_highend_suite(&s, &HighEndSetup::at(32));
        assert_eq!(base.set_last_regs, 0, "RegN=32 is direct");
        let wide = run_highend_suite(&s, &HighEndSetup::at(48));
        assert!(wide.set_last_regs > 0, "differential kernels need repairs");
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup_percent(120.0, 100.0), 20.0);
        assert_eq!(speedup_percent(100.0, 100.0), 0.0);
        assert_eq!(speedup_percent(100.0, 0.0), 0.0);
    }

    #[test]
    fn overall_cycles_adds_constant_nonloop_time() {
        let s = suite(20);
        let setup = HighEndSetup::at(32);
        let base = run_highend_suite(&s, &setup);
        let overall = base.overall_cycles(&setup, base.all_cycles);
        assert!(overall > base.all_cycles as f64);
        // 80% loops => total = loops / 0.8.
        let expected = base.all_cycles as f64 / 0.8;
        assert!((overall - expected).abs() < 1.0);
    }

    #[test]
    fn code_growth_relative_to_baseline() {
        let s = suite(30);
        let setup = HighEndSetup::at(48);
        let base = run_highend_suite(&s, &HighEndSetup::at(32));
        let wide = run_highend_suite(&s, &setup);
        let overall = wide.overall_code_growth(&base, &setup);
        let all = wide.all_loops_code_growth(&base);
        assert!(
            overall.abs() <= all.abs() || all == 0.0,
            "overall growth is damped by the loop code fraction"
        );
    }
}
