//! # `drac bench-serve` — seeded load harness for the resident service
//!
//! Boots a [`crate::serve`] daemon per worker-count in a sweep, replays a
//! deterministic mixed workload against it from closed-loop client
//! threads, and reports client-observed latency quantiles (p50/p95/p99),
//! throughput, and cache hit rates into `results/serve_bench.json`.
//!
//! ## Workload phases
//!
//! Each sweep point runs three phases against a *fresh* daemon (so the
//! caches start cold), all derived from one seed:
//!
//! * **cold** — `jobs` distinct program texts, each submitted once.
//!   Texts are a builtin benchmark's rendering plus a unique trailing
//!   comment (`; uniq <seed>-<i>`): the parser ignores the comment, so
//!   every job does identical pipeline work while hashing to a distinct
//!   result-cache key. Expect ~0% hits.
//! * **warm** — the same `jobs` texts again. Every key is now resident;
//!   expect ~100% hits and the latency collapse the paper's
//!   differential pipeline makes possible (allocation results are pure
//!   functions of the input, so replaying bytes is sound).
//! * **dup** — `jobs` requests drawn by a seeded [`SplitMix64`] from a
//!   4-text pool, modelling a duplicate-heavy fleet where many clients
//!   compile the same few inputs.
//!
//! Latency is measured client-side around `send → response`, so it
//! includes queueing — the quantity a caller of the service actually
//! observes.
//!
//! ## Determinism
//!
//! The request *set* is a pure function of the seed; only wall-clock
//! derived numbers (latencies, throughput) vary run to run. The
//! telemetry frame this module writes (`bench_serve.json`) therefore
//! keeps schedule-dependent quantities (observed hit counts can shift
//! when racing duplicates both compute) out of its counters: counters
//! record the submitted workload, spans record wall-clock.

use crate::faults::SplitMix64;
use crate::lowend::Approach;
use crate::serve::{serve, ServeAddr, ServeClient, ServeConfig};
use crate::telemetry::{escape_json, Telemetry};
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

/// Schema identifier for `results/serve_bench.json`.
pub const BENCH_SCHEMA: &str = "dra-serve-bench-v1";

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct BenchServeConfig {
    /// Worker-pool sizes to sweep (one daemon each).
    pub workers: Vec<usize>,
    /// Jobs per phase.
    pub jobs: usize,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Workload seed (request set is a pure function of it).
    pub seed: u64,
    /// Builtin benchmark whose rendering seeds the generated sources.
    pub bench: String,
    /// Allocation approach every job requests.
    pub approach: Approach,
    /// Where to write the JSON report (created, parents included).
    pub out_path: Option<PathBuf>,
    /// When set, writes `results/telemetry/bench_serve.json` under this
    /// root.
    pub telemetry_root: Option<PathBuf>,
}

impl BenchServeConfig {
    /// The full sweep: 1→8 workers, 24 jobs/phase, 4 clients.
    pub fn standard() -> BenchServeConfig {
        BenchServeConfig {
            workers: vec![1, 2, 4, 8],
            jobs: 24,
            clients: 4,
            seed: 0xd5ac_5e1f_0b0e_11ce,
            bench: "crc32".to_string(),
            approach: Approach::Select,
            out_path: None,
            telemetry_root: None,
        }
    }

    /// A seconds-scale CI smoke: one daemon at 2 workers, 6 jobs/phase.
    pub fn smoke() -> BenchServeConfig {
        BenchServeConfig {
            workers: vec![2],
            jobs: 6,
            clients: 2,
            ..BenchServeConfig::standard()
        }
    }
}

/// One phase's measured outcome.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// `cold`, `warm`, or `dup`.
    pub name: &'static str,
    /// Jobs submitted.
    pub jobs: usize,
    /// `ok:false` responses (0 in a healthy run).
    pub errors: u64,
    /// Responses served from the result cache.
    pub hits: u64,
    /// p50 client-observed latency, microseconds.
    pub p50_us: u64,
    /// p95 client-observed latency, microseconds.
    pub p95_us: u64,
    /// p99 client-observed latency, microseconds.
    pub p99_us: u64,
    /// Phase wall-clock, microseconds.
    pub wall_us: u64,
}

impl PhaseStats {
    /// Fraction of responses served from cache.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.jobs.max(1)) as f64
    }

    /// Completed jobs per second of phase wall-clock.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / (self.wall_us.max(1) as f64 / 1e6)
    }
}

/// One daemon's (worker count's) results.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Worker-pool size.
    pub workers: usize,
    /// The three phases, in order: cold, warm, dup.
    pub phases: Vec<PhaseStats>,
    /// `result_cache.hits` reported by the daemon at shutdown.
    pub server_cache_hits: u64,
}

/// The whole harness run.
#[derive(Clone, Debug)]
pub struct BenchServeReport {
    /// Workload seed.
    pub seed: u64,
    /// Jobs per phase.
    pub jobs: usize,
    /// Client threads.
    pub clients: usize,
    /// Base benchmark.
    pub bench: String,
    /// Approach requested.
    pub approach: Approach,
    /// One entry per worker count.
    pub sweeps: Vec<SweepStats>,
}

impl BenchServeReport {
    /// The `dra-serve-bench-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"seed\": {},\n  \"jobs\": {},\n  \"clients\": {},\n  \"bench\": \"{}\",\n  \"approach\": \"{}\",\n  \"sweeps\": [",
            self.seed,
            self.jobs,
            self.clients,
            escape_json(&self.bench),
            escape_json(self.approach.label()),
        ));
        for (si, sweep) in self.sweeps.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"workers\": {}, \"server_cache_hits\": {}, \"phases\": [",
                sweep.workers, sweep.server_cache_hits
            ));
            for (pi, p) in sweep.phases.iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"name\": \"{}\", \"jobs\": {}, \"errors\": {}, \"hits\": {}, \"hit_rate\": {:.4}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"wall_us\": {}, \"jobs_per_sec\": {:.2}}}",
                    p.name,
                    p.jobs,
                    p.errors,
                    p.hits,
                    p.hit_rate(),
                    p.p50_us,
                    p.p95_us,
                    p.p99_us,
                    p.wall_us,
                    p.jobs_per_sec(),
                ));
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// A human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve bench: {} jobs/phase x {} clients, bench={} approach={}, seed={:#x}\n",
            self.jobs,
            self.clients,
            self.bench,
            self.approach.label(),
            self.seed,
        ));
        out.push_str(
            "workers phase  jobs errors  hit%   p50_us   p95_us   p99_us  jobs/s\n",
        );
        for sweep in &self.sweeps {
            for p in &sweep.phases {
                out.push_str(&format!(
                    "{:>7} {:<5} {:>5} {:>6} {:>5.1} {:>8} {:>8} {:>8} {:>7.1}\n",
                    sweep.workers,
                    p.name,
                    p.jobs,
                    p.errors,
                    100.0 * p.hit_rate(),
                    p.p50_us,
                    p.p95_us,
                    p.p99_us,
                    p.jobs_per_sec(),
                ));
            }
        }
        out
    }

    /// The phase entry for (`workers`, `phase`), if present.
    pub fn phase(&self, workers: usize, phase: &str) -> Option<&PhaseStats> {
        self.sweeps
            .iter()
            .find(|s| s.workers == workers)
            .and_then(|s| s.phases.iter().find(|p| p.name == phase))
    }
}

/// `q`-quantile of an unsorted latency sample (nearest-rank on the
/// sorted order; 0 for an empty sample).
pub fn quantile_us(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The generated source texts for a seed: the base benchmark's rendering
/// plus a unique trailing comment per job (parsed identically, hashed
/// distinctly).
pub fn workload_sources(bench: &str, seed: u64, jobs: usize) -> Vec<String> {
    let base = dra_workloads::benchmark(bench).to_string();
    (0..jobs)
        .map(|i| format!("{base}\n; uniq {seed:x}-{i}\n"))
        .collect()
}

struct PhaseRaw {
    latencies_us: Vec<u64>,
    hits: u64,
    errors: u64,
    wall_us: u64,
}

/// Replay `lines` (request lines, one job each) from `clients`
/// closed-loop threads against `addr`; round-robin assignment.
fn run_phase(addr: &ServeAddr, lines: &[String], clients: usize) -> io::Result<PhaseRaw> {
    let clients = clients.max(1);
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let mine: Vec<String> = lines
            .iter()
            .skip(c)
            .step_by(clients)
            .cloned()
            .collect();
        if mine.is_empty() {
            continue;
        }
        let addr = addr.clone();
        handles.push(thread::spawn(move || -> io::Result<(Vec<u64>, u64, u64)> {
            let mut client = ServeClient::connect_with_retry(&addr, Duration::from_secs(5))?;
            let mut latencies = Vec::with_capacity(mine.len());
            let mut hits = 0u64;
            let mut errors = 0u64;
            for line in &mine {
                let t0 = Instant::now();
                let resp = client.request(line)?;
                latencies.push(t0.elapsed().as_micros() as u64);
                if resp.ok {
                    if resp.cached {
                        hits += 1;
                    }
                } else {
                    errors += 1;
                }
            }
            Ok((latencies, hits, errors))
        }));
    }
    let mut raw = PhaseRaw {
        latencies_us: Vec::with_capacity(lines.len()),
        hits: 0,
        errors: 0,
        wall_us: 0,
    };
    for h in handles {
        let (lat, hits, errors) = h
            .join()
            .map_err(|_| io::Error::other("bench client panicked"))??;
        raw.latencies_us.extend(lat);
        raw.hits += hits;
        raw.errors += errors;
    }
    raw.wall_us = start.elapsed().as_micros() as u64;
    Ok(raw)
}

fn finish_phase(name: &'static str, jobs: usize, raw: PhaseRaw) -> PhaseStats {
    PhaseStats {
        name,
        jobs,
        errors: raw.errors,
        hits: raw.hits,
        p50_us: quantile_us(&raw.latencies_us, 0.50),
        p95_us: quantile_us(&raw.latencies_us, 0.95),
        p99_us: quantile_us(&raw.latencies_us, 0.99),
        wall_us: raw.wall_us,
    }
}

/// Run the sweep: one fresh daemon per worker count, three phases each.
/// Writes the JSON report and the `bench_serve` telemetry frame when
/// configured.
///
/// # Errors
///
/// Daemon startup, socket, or filesystem failures. Per-job pipeline
/// errors do *not* abort the run — they are counted in
/// [`PhaseStats::errors`].
pub fn run_bench_serve(config: &BenchServeConfig) -> io::Result<BenchServeReport> {
    let mut telemetry = Telemetry::new();
    telemetry.count("bench_serve.sweeps", config.workers.len() as u64);
    telemetry.count(
        "bench_serve.jobs_submitted",
        (config.workers.len() * config.jobs * 3) as u64,
    );
    telemetry.count("bench_serve.clients", config.clients as u64);

    let sources = workload_sources(&config.bench, config.seed, config.jobs);
    let mut sweeps = Vec::with_capacity(config.workers.len());
    for &workers in &config.workers {
        let sweep_start = Instant::now();
        let mut serve_config = ServeConfig::new(ServeAddr::Tcp("127.0.0.1:0".to_string()));
        serve_config.workers = workers.max(1);
        let handle = serve(serve_config)?;
        let addr = handle.addr().clone();

        let unique: Vec<String> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| {
                crate::serve::request_compile_source(&format!("cold-{i}"), s, config.approach)
            })
            .collect();
        let cold = run_phase(&addr, &unique, config.clients)?;

        let warm_lines: Vec<String> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| {
                crate::serve::request_compile_source(&format!("warm-{i}"), s, config.approach)
            })
            .collect();
        let warm = run_phase(&addr, &warm_lines, config.clients)?;

        let pool = sources.len().min(4).max(1);
        let mut rng = SplitMix64::new(config.seed ^ workers as u64);
        let dup_lines: Vec<String> = (0..config.jobs)
            .map(|i| {
                let pick = rng.below(pool as u64) as usize;
                crate::serve::request_compile_source(
                    &format!("dup-{i}"),
                    &sources[pick],
                    config.approach,
                )
            })
            .collect();
        let dup = run_phase(&addr, &dup_lines, config.clients)?;

        // Pull the daemon's own view, then shut it down cleanly.
        let mut control = ServeClient::connect_with_retry(&addr, Duration::from_secs(5))?;
        let stats = control.stats("bench-stats")?;
        let server_cache_hits = stats
            .stats
            .as_ref()
            .and_then(|t| t.counters.get("result_cache.hits"))
            .copied()
            .unwrap_or(0);
        let _ = control.shutdown("bench-shutdown")?;
        handle
            .join()
            .map_err(|e| io::Error::other(format!("serve join failed: {e}")))?;

        telemetry.span_ns(
            &format!("bench_serve.sweep_w{workers}"),
            sweep_start.elapsed().as_nanos() as u64,
        );
        sweeps.push(SweepStats {
            workers,
            phases: vec![
                finish_phase("cold", config.jobs, cold),
                finish_phase("warm", config.jobs, warm),
                finish_phase("dup", config.jobs, dup),
            ],
            server_cache_hits,
        });
    }

    let report = BenchServeReport {
        seed: config.seed,
        jobs: config.jobs,
        clients: config.clients,
        bench: config.bench.clone(),
        approach: config.approach,
        sweeps,
    };

    if let Some(path) = &config.out_path {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(report.to_json().as_bytes())?;
    }
    if let Some(root) = &config.telemetry_root {
        telemetry.write_results(root, "bench_serve")?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_us(&s, 0.50), 51);
        assert_eq!(quantile_us(&s, 0.95), 95);
        assert_eq!(quantile_us(&s, 0.99), 99);
        assert_eq!(quantile_us(&[], 0.5), 0);
        assert_eq!(quantile_us(&[7], 0.99), 7);
    }

    #[test]
    fn workload_sources_are_distinct_but_equivalent() {
        let sources = workload_sources("crc32", 42, 4);
        assert_eq!(sources.len(), 4);
        for (i, a) in sources.iter().enumerate() {
            for b in &sources[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Same seed → same set (the workload is replayable).
        assert_eq!(sources, workload_sources("crc32", 42, 4));
        // Every variant still parses to the same program as the base.
        let base = dra_ir::parse::parse_program(&dra_workloads::benchmark("crc32").to_string()).unwrap();
        for s in &sources {
            let p = dra_ir::parse::parse_program(s).unwrap();
            assert_eq!(p.to_string(), base.to_string());
        }
    }

    #[test]
    fn report_json_shape() {
        let report = BenchServeReport {
            seed: 1,
            jobs: 2,
            clients: 1,
            bench: "crc32".into(),
            approach: Approach::Select,
            sweeps: vec![SweepStats {
                workers: 2,
                server_cache_hits: 5,
                phases: vec![PhaseStats {
                    name: "cold",
                    jobs: 2,
                    errors: 0,
                    hits: 0,
                    p50_us: 10,
                    p95_us: 20,
                    p99_us: 20,
                    wall_us: 40,
                }],
            }],
        };
        let doc = crate::telemetry::parse_json(&report.to_json()).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(
            obj.get("schema").and_then(|j| j.as_str()),
            Some(BENCH_SCHEMA)
        );
        assert!(obj.contains_key("sweeps"));
        assert!(!report.render().is_empty());
    }
}
