//! # `drac bench-serve` — seeded load harness for the resident service
//!
//! Boots a [`crate::serve`] daemon per worker-count in a sweep, replays a
//! deterministic mixed workload against it from closed-loop client
//! threads, and reports client-observed latency quantiles (p50/p95/p99),
//! throughput, and cache hit rates into `results/serve_bench.json`.
//!
//! ## Workload phases
//!
//! Each sweep point runs three phases against a *fresh* daemon (so the
//! caches start cold), all derived from one seed:
//!
//! * **cold** — `jobs` distinct program texts, each submitted once.
//!   Texts are a builtin benchmark's rendering plus a unique trailing
//!   comment (`; uniq <seed>-<i>`): the parser ignores the comment, so
//!   every job does identical pipeline work while hashing to a distinct
//!   result-cache key. Expect ~0% hits.
//! * **warm** — the same `jobs` texts again. Every key is now resident;
//!   expect ~100% hits and the latency collapse the paper's
//!   differential pipeline makes possible (allocation results are pure
//!   functions of the input, so replaying bytes is sound).
//! * **dup** — `jobs` requests drawn by a seeded [`SplitMix64`] from a
//!   4-text pool, modelling a duplicate-heavy fleet where many clients
//!   compile the same few inputs.
//!
//! Latency is measured client-side around `send → response`, so it
//! includes queueing — the quantity a caller of the service actually
//! observes.
//!
//! ## Determinism
//!
//! The request *set* is a pure function of the seed; only wall-clock
//! derived numbers (latencies, throughput) vary run to run. The
//! telemetry frame this module writes (`bench_serve.json`) therefore
//! keeps schedule-dependent quantities (observed hit counts can shift
//! when racing duplicates both compute) out of its counters: counters
//! record the submitted workload, spans record wall-clock.

use crate::faults::SplitMix64;
use crate::lowend::Approach;
use crate::serve::{serve, Priority, ServeAddr, ServeClient, ServeConfig, DEFAULT_QUEUE_CAP};
use crate::telemetry::{escape_json, Telemetry};
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

/// Schema identifier for `results/serve_bench.json`.
pub const BENCH_SCHEMA: &str = "dra-serve-bench-v1";

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct BenchServeConfig {
    /// Worker-pool sizes to sweep (one daemon each).
    pub workers: Vec<usize>,
    /// Jobs per phase.
    pub jobs: usize,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Workload seed (request set is a pure function of it).
    pub seed: u64,
    /// Builtin benchmark whose rendering seeds the generated sources.
    pub bench: String,
    /// Allocation approach every job requests.
    pub approach: Approach,
    /// When set, sources come from a synthesized corpus instead of
    /// benchmark clones: the spec is a builtin profile name or a
    /// `dra-profile-v1` JSON path (see [`crate::resolve_profile`]), and
    /// every job is a *distinct* generated program — a realistic fleet
    /// mix rather than one kernel repeated.
    pub corpus_profile: Option<String>,
    /// When set, every compile rides `dra-serve-v2` with this relative
    /// deadline; expired requests count into the deadline-miss rate.
    pub deadline_ms: Option<u64>,
    /// Priority every job requests (v2 wire only matters when a
    /// deadline or a non-default priority is set).
    pub priority: Priority,
    /// Per-shard queue bound handed to the daemon
    /// ([`ServeConfig::queue_cap`]); shed responses count into the
    /// shed rate instead of the error count.
    pub queue_cap: usize,
    /// Where to write the JSON report (created, parents included).
    pub out_path: Option<PathBuf>,
    /// When set, writes `results/telemetry/bench_serve.json` under this
    /// root.
    pub telemetry_root: Option<PathBuf>,
}

impl BenchServeConfig {
    /// The full sweep: 1→8 workers, 24 jobs/phase, 4 clients.
    pub fn standard() -> BenchServeConfig {
        BenchServeConfig {
            workers: vec![1, 2, 4, 8],
            jobs: 24,
            clients: 4,
            seed: 0xd5ac_5e1f_0b0e_11ce,
            bench: "crc32".to_string(),
            approach: Approach::Select,
            corpus_profile: None,
            deadline_ms: None,
            priority: Priority::Interactive,
            queue_cap: DEFAULT_QUEUE_CAP,
            out_path: None,
            telemetry_root: None,
        }
    }

    /// A seconds-scale CI smoke: one daemon at 2 workers, 6 jobs/phase.
    pub fn smoke() -> BenchServeConfig {
        BenchServeConfig {
            workers: vec![2],
            jobs: 6,
            clients: 2,
            ..BenchServeConfig::standard()
        }
    }

    /// Whether any v2-only field is in play (deadline or non-default
    /// priority); drives which wire the request builders use.
    pub fn uses_v2(&self) -> bool {
        self.deadline_ms.is_some() || self.priority != Priority::Interactive
    }
}

/// One phase's measured outcome.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// `cold`, `warm`, or `dup`.
    pub name: &'static str,
    /// Jobs submitted.
    pub jobs: usize,
    /// `ok:false` responses that were *not* load shedding (0 in a
    /// healthy run).
    pub errors: u64,
    /// Requests shed by admission control (`overloaded`).
    pub shed: u64,
    /// Requests shed by deadline enforcement (`deadline`), queued or
    /// mid-compile.
    pub deadline_missed: u64,
    /// Responses served from the result cache.
    pub hits: u64,
    /// p50 client-observed latency, microseconds.
    pub p50_us: u64,
    /// p95 client-observed latency, microseconds.
    pub p95_us: u64,
    /// p99 client-observed latency, microseconds.
    pub p99_us: u64,
    /// Phase wall-clock, microseconds.
    pub wall_us: u64,
}

impl PhaseStats {
    /// Fraction of responses served from cache.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.jobs.max(1)) as f64
    }

    /// Completed jobs per second of phase wall-clock.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / (self.wall_us.max(1) as f64 / 1e6)
    }

    /// Fraction of submissions shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        self.shed as f64 / (self.jobs.max(1)) as f64
    }

    /// Fraction of submissions that missed their deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        self.deadline_missed as f64 / (self.jobs.max(1)) as f64
    }
}

/// One daemon's (worker count's) results.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Worker-pool size.
    pub workers: usize,
    /// The three phases, in order: cold, warm, dup.
    pub phases: Vec<PhaseStats>,
    /// `result_cache.hits` reported by the daemon at shutdown.
    pub server_cache_hits: u64,
}

/// The whole harness run.
#[derive(Clone, Debug)]
pub struct BenchServeReport {
    /// Workload seed.
    pub seed: u64,
    /// Jobs per phase.
    pub jobs: usize,
    /// Client threads.
    pub clients: usize,
    /// Base benchmark.
    pub bench: String,
    /// Approach requested.
    pub approach: Approach,
    /// Corpus profile spec, when the workload was synthesized.
    pub corpus_profile: Option<String>,
    /// Relative deadline every job carried, when set.
    pub deadline_ms: Option<u64>,
    /// One entry per worker count.
    pub sweeps: Vec<SweepStats>,
}

impl BenchServeReport {
    /// The `dra-serve-bench-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let corpus = match &self.corpus_profile {
            Some(p) => format!("\"{}\"", escape_json(p)),
            None => "null".to_string(),
        };
        let deadline = match self.deadline_ms {
            Some(ms) => ms.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"seed\": {},\n  \"jobs\": {},\n  \"clients\": {},\n  \"bench\": \"{}\",\n  \"approach\": \"{}\",\n  \"corpus_profile\": {corpus},\n  \"deadline_ms\": {deadline},\n  \"sweeps\": [",
            self.seed,
            self.jobs,
            self.clients,
            escape_json(&self.bench),
            escape_json(self.approach.label()),
        ));
        for (si, sweep) in self.sweeps.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"workers\": {}, \"server_cache_hits\": {}, \"phases\": [",
                sweep.workers, sweep.server_cache_hits
            ));
            for (pi, p) in sweep.phases.iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"name\": \"{}\", \"jobs\": {}, \"errors\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \"deadline_missed\": {}, \"deadline_miss_rate\": {:.4}, \"hits\": {}, \"hit_rate\": {:.4}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"wall_us\": {}, \"jobs_per_sec\": {:.2}}}",
                    p.name,
                    p.jobs,
                    p.errors,
                    p.shed,
                    p.shed_rate(),
                    p.deadline_missed,
                    p.deadline_miss_rate(),
                    p.hits,
                    p.hit_rate(),
                    p.p50_us,
                    p.p95_us,
                    p.p99_us,
                    p.wall_us,
                    p.jobs_per_sec(),
                ));
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// A human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let workload = match &self.corpus_profile {
            Some(p) => format!("corpus={p}"),
            None => format!("bench={}", self.bench),
        };
        let deadline = match self.deadline_ms {
            Some(ms) => format!(" deadline={ms}ms"),
            None => String::new(),
        };
        out.push_str(&format!(
            "serve bench: {} jobs/phase x {} clients, {workload} approach={}{deadline}, seed={:#x}\n",
            self.jobs,
            self.clients,
            self.approach.label(),
            self.seed,
        ));
        out.push_str(
            "workers phase  jobs errors  shed  miss  hit%   p50_us   p95_us   p99_us  jobs/s\n",
        );
        for sweep in &self.sweeps {
            for p in &sweep.phases {
                out.push_str(&format!(
                    "{:>7} {:<5} {:>5} {:>6} {:>5} {:>5} {:>5.1} {:>8} {:>8} {:>8} {:>7.1}\n",
                    sweep.workers,
                    p.name,
                    p.jobs,
                    p.errors,
                    p.shed,
                    p.deadline_missed,
                    100.0 * p.hit_rate(),
                    p.p50_us,
                    p.p95_us,
                    p.p99_us,
                    p.jobs_per_sec(),
                ));
            }
        }
        out
    }

    /// The phase entry for (`workers`, `phase`), if present.
    pub fn phase(&self, workers: usize, phase: &str) -> Option<&PhaseStats> {
        self.sweeps
            .iter()
            .find(|s| s.workers == workers)
            .and_then(|s| s.phases.iter().find(|p| p.name == phase))
    }
}

/// `q`-quantile of an unsorted latency sample (nearest-rank on the
/// sorted order; 0 for an empty sample).
pub fn quantile_us(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The generated source texts for a seed: the base benchmark's rendering
/// plus a unique trailing comment per job (parsed identically, hashed
/// distinctly).
pub fn workload_sources(bench: &str, seed: u64, jobs: usize) -> Vec<String> {
    let base = dra_workloads::benchmark(bench).to_string();
    (0..jobs)
        .map(|i| format!("{base}\n; uniq {seed:x}-{i}\n"))
        .collect()
}

/// The generated source texts for a corpus profile: `jobs` *distinct*
/// programs synthesized from the profile's shape distributions
/// ([`dra_workloads::generate_from_profile`]). Deterministic in
/// `(profile, seed, jobs)`.
///
/// # Errors
///
/// Unknown profile spec or a malformed profile document.
pub fn corpus_sources(profile_spec: &str, seed: u64, jobs: usize) -> Result<Vec<String>, String> {
    let profile = crate::corpus::resolve_profile(profile_spec)?;
    // `count` is a *function* budget and each program holds ≤ 6
    // functions, so jobs*6 guarantees at least `jobs` programs.
    let programs = dra_workloads::generate_from_profile(&profile, seed, jobs * 6)?;
    let mut sources: Vec<String> = programs
        .into_iter()
        .take(jobs)
        .map(|p| p.to_string())
        .collect();
    if sources.len() < jobs {
        return Err(format!(
            "profile {profile_spec:?} yielded {} programs for {jobs} jobs",
            sources.len()
        ));
    }
    // A trailing comment pins the job index into the text, mirroring
    // workload_sources (harmless to the parser, visible in cache keys).
    for (i, s) in sources.iter_mut().enumerate() {
        s.push_str(&format!("; corpus {seed:x}-{i}\n"));
    }
    Ok(sources)
}

struct PhaseRaw {
    latencies_us: Vec<u64>,
    hits: u64,
    errors: u64,
    shed: u64,
    deadline_missed: u64,
    wall_us: u64,
}

/// Replay `lines` (request lines, one job each) from `clients`
/// closed-loop threads against `addr`; round-robin assignment.
fn run_phase(addr: &ServeAddr, lines: &[String], clients: usize) -> io::Result<PhaseRaw> {
    let clients = clients.max(1);
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let mine: Vec<String> = lines
            .iter()
            .skip(c)
            .step_by(clients)
            .cloned()
            .collect();
        if mine.is_empty() {
            continue;
        }
        let addr = addr.clone();
        handles.push(thread::spawn(move || -> io::Result<PhaseRaw> {
            let mut client = ServeClient::connect_with_retry(&addr, Duration::from_secs(5))?;
            let mut raw = PhaseRaw {
                latencies_us: Vec::with_capacity(mine.len()),
                hits: 0,
                errors: 0,
                shed: 0,
                deadline_missed: 0,
                wall_us: 0,
            };
            for line in &mine {
                let t0 = Instant::now();
                let resp = client.request(line)?;
                raw.latencies_us.push(t0.elapsed().as_micros() as u64);
                if resp.ok {
                    if resp.cached {
                        raw.hits += 1;
                    }
                } else {
                    match resp.error.as_ref().map(|(k, _)| k.as_str()) {
                        Some("overloaded") => raw.shed += 1,
                        Some("deadline") => raw.deadline_missed += 1,
                        _ => raw.errors += 1,
                    }
                }
            }
            Ok(raw)
        }));
    }
    let mut raw = PhaseRaw {
        latencies_us: Vec::with_capacity(lines.len()),
        hits: 0,
        errors: 0,
        shed: 0,
        deadline_missed: 0,
        wall_us: 0,
    };
    for h in handles {
        let part = h
            .join()
            .map_err(|_| io::Error::other("bench client panicked"))??;
        raw.latencies_us.extend(part.latencies_us);
        raw.hits += part.hits;
        raw.errors += part.errors;
        raw.shed += part.shed;
        raw.deadline_missed += part.deadline_missed;
    }
    raw.wall_us = start.elapsed().as_micros() as u64;
    Ok(raw)
}

fn finish_phase(name: &'static str, jobs: usize, raw: PhaseRaw) -> PhaseStats {
    PhaseStats {
        name,
        jobs,
        errors: raw.errors,
        shed: raw.shed,
        deadline_missed: raw.deadline_missed,
        hits: raw.hits,
        p50_us: quantile_us(&raw.latencies_us, 0.50),
        p95_us: quantile_us(&raw.latencies_us, 0.95),
        p99_us: quantile_us(&raw.latencies_us, 0.99),
        wall_us: raw.wall_us,
    }
}

/// Run the sweep: one fresh daemon per worker count, three phases each.
/// Writes the JSON report and the `bench_serve` telemetry frame when
/// configured.
///
/// # Errors
///
/// Daemon startup, socket, or filesystem failures. Per-job pipeline
/// errors do *not* abort the run — they are counted in
/// [`PhaseStats::errors`].
pub fn run_bench_serve(config: &BenchServeConfig) -> io::Result<BenchServeReport> {
    let mut telemetry = Telemetry::new();
    telemetry.count("bench_serve.sweeps", config.workers.len() as u64);
    telemetry.count(
        "bench_serve.jobs_submitted",
        (config.workers.len() * config.jobs * 3) as u64,
    );
    telemetry.count("bench_serve.clients", config.clients as u64);

    let sources = match &config.corpus_profile {
        Some(spec) => corpus_sources(spec, config.seed, config.jobs)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
        None => workload_sources(&config.bench, config.seed, config.jobs),
    };
    // One request-line builder for both wires: v1 unless a v2-only
    // field (deadline, non-default priority) is in play.
    let line_for = |id: &str, src: &str| {
        if config.uses_v2() {
            crate::serve::request_compile_source_v2(
                id,
                src,
                config.approach,
                config.deadline_ms,
                config.priority,
            )
        } else {
            crate::serve::request_compile_source(id, src, config.approach)
        }
    };
    let mut sweeps = Vec::with_capacity(config.workers.len());
    for &workers in &config.workers {
        let sweep_start = Instant::now();
        let mut serve_config = ServeConfig::new(ServeAddr::Tcp("127.0.0.1:0".to_string()));
        serve_config.workers = workers.max(1);
        serve_config.queue_cap = config.queue_cap;
        if config.corpus_profile.is_some() {
            // Generated corpora would measure the remap search, not the
            // serving path, under the full restart budget.
            serve_config.setup = crate::corpus::corpus_setup();
        }
        let handle = serve(serve_config)?;
        let addr = handle.addr().clone();

        let unique: Vec<String> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| line_for(&format!("cold-{i}"), s))
            .collect();
        let cold = run_phase(&addr, &unique, config.clients)?;

        let warm_lines: Vec<String> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| line_for(&format!("warm-{i}"), s))
            .collect();
        let warm = run_phase(&addr, &warm_lines, config.clients)?;

        let pool = sources.len().min(4).max(1);
        let mut rng = SplitMix64::new(config.seed ^ workers as u64);
        let dup_lines: Vec<String> = (0..config.jobs)
            .map(|i| {
                let pick = rng.below(pool as u64) as usize;
                line_for(&format!("dup-{i}"), &sources[pick])
            })
            .collect();
        let dup = run_phase(&addr, &dup_lines, config.clients)?;

        // Pull the daemon's own view, then shut it down cleanly.
        let mut control = ServeClient::connect_with_retry(&addr, Duration::from_secs(5))?;
        let stats = control.stats("bench-stats")?;
        let server_cache_hits = stats
            .stats
            .as_ref()
            .and_then(|t| t.counters.get("result_cache.hits"))
            .copied()
            .unwrap_or(0);
        let _ = control.shutdown("bench-shutdown")?;
        handle
            .join()
            .map_err(|e| io::Error::other(format!("serve join failed: {e}")))?;

        telemetry.span_ns(
            &format!("bench_serve.sweep_w{workers}"),
            sweep_start.elapsed().as_nanos() as u64,
        );
        sweeps.push(SweepStats {
            workers,
            phases: vec![
                finish_phase("cold", config.jobs, cold),
                finish_phase("warm", config.jobs, warm),
                finish_phase("dup", config.jobs, dup),
            ],
            server_cache_hits,
        });
    }

    let report = BenchServeReport {
        seed: config.seed,
        jobs: config.jobs,
        clients: config.clients,
        bench: config.bench.clone(),
        approach: config.approach,
        corpus_profile: config.corpus_profile.clone(),
        deadline_ms: config.deadline_ms,
        sweeps,
    };

    if let Some(path) = &config.out_path {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(report.to_json().as_bytes())?;
    }
    if let Some(root) = &config.telemetry_root {
        telemetry.write_results(root, "bench_serve")?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_us(&s, 0.50), 51);
        assert_eq!(quantile_us(&s, 0.95), 95);
        assert_eq!(quantile_us(&s, 0.99), 99);
        assert_eq!(quantile_us(&[], 0.5), 0);
        assert_eq!(quantile_us(&[7], 0.99), 7);
    }

    #[test]
    fn workload_sources_are_distinct_but_equivalent() {
        let sources = workload_sources("crc32", 42, 4);
        assert_eq!(sources.len(), 4);
        for (i, a) in sources.iter().enumerate() {
            for b in &sources[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Same seed → same set (the workload is replayable).
        assert_eq!(sources, workload_sources("crc32", 42, 4));
        // Every variant still parses to the same program as the base.
        let base = dra_ir::parse::parse_program(&dra_workloads::benchmark("crc32").to_string()).unwrap();
        for s in &sources {
            let p = dra_ir::parse::parse_program(s).unwrap();
            assert_eq!(p.to_string(), base.to_string());
        }
    }

    #[test]
    fn report_json_shape() {
        let report = BenchServeReport {
            seed: 1,
            jobs: 2,
            clients: 1,
            bench: "crc32".into(),
            approach: Approach::Select,
            corpus_profile: Some("embedded-dsp".into()),
            deadline_ms: Some(250),
            sweeps: vec![SweepStats {
                workers: 2,
                server_cache_hits: 5,
                phases: vec![PhaseStats {
                    name: "cold",
                    jobs: 2,
                    errors: 0,
                    shed: 1,
                    deadline_missed: 1,
                    hits: 0,
                    p50_us: 10,
                    p95_us: 20,
                    p99_us: 20,
                    wall_us: 40,
                }],
            }],
        };
        let doc = crate::telemetry::parse_json(&report.to_json()).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(
            obj.get("schema").and_then(|j| j.as_str()),
            Some(BENCH_SCHEMA)
        );
        assert!(obj.contains_key("sweeps"));
        assert_eq!(
            obj.get("corpus_profile").and_then(|j| j.as_str()),
            Some("embedded-dsp")
        );
        assert_eq!(obj.get("deadline_ms").and_then(|j| j.as_u64()), Some(250));
        let json = report.to_json();
        assert!(json.contains("\"shed\": 1"), "{json}");
        assert!(json.contains("\"shed_rate\": 0.5000"), "{json}");
        assert!(json.contains("\"deadline_miss_rate\": 0.5000"), "{json}");
        assert!(!report.render().is_empty());
    }

    #[test]
    fn corpus_sources_are_distinct_parseable_and_replayable() {
        let a = corpus_sources("embedded-dsp", 7, 5).unwrap();
        assert_eq!(a.len(), 5);
        for (i, s) in a.iter().enumerate() {
            dra_ir::parse::parse_program(s).unwrap_or_else(|e| panic!("source {i}: {e:?}"));
            for t in &a[i + 1..] {
                assert_ne!(s, t);
            }
        }
        assert_eq!(a, corpus_sources("embedded-dsp", 7, 5).unwrap());
        assert!(corpus_sources("no-such-profile", 7, 5).is_err());
    }
}
