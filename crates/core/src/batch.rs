//! Deterministic parallel batch driver for the figure/table pipelines.
//!
//! Every evaluation binary runs the same shape of work: a matrix of
//! independent (benchmark, approach) or (loop, sweep-point) cells, each a
//! full compile→encode→verify→simulate pipeline. The cells share nothing
//! mutable, so they parallelize trivially — the only care required is
//! determinism, and this module follows the remapping search's rule
//! (`RemapConfig::threads`): **output is a pure function of the input,
//! never of the schedule**.
//!
//! * [`run_batch`] executes a closure over an item slice on
//!   [`std::thread::scope`] workers. Items are claimed from a shared
//!   atomic counter (work-stealing, so a slow cell does not idle the other
//!   workers) and every result is written back to its item's *index slot*;
//!   the returned `Vec` is in item order for any thread count, including
//!   the sequential `threads = 1` path, which runs in the caller's thread.
//! * [`SourceCache`] memoizes per-benchmark *source artifacts*: the parsed
//!   [`Program`] and each function's register pressure (MAXLIVE). Each
//!   benchmark is parsed and analyzed once per process no matter how many
//!   approaches or sweep points consume it; the `Adaptive` approach's
//!   per-function liveness pass is served from the cache.
//! * [`run_lowend_matrix`] combines the two: the full
//!   benchmarks × approaches grid of Figures 11–14 in one call, with the
//!   thread count taken from [`LowEndSetup::batch_threads`].
//!
//! The per-cell pipelines are themselves deterministic (the remapping
//! search is bit-identical at any `remap_threads`), so a whole matrix is
//! reproducible bit-for-bit at any `batch_threads`.

use crate::cache::LruCache;
use crate::lowend::{
    compile_program_telemetry, finish_run_or_degrade, Approach, LowEndRun, LowEndSetup,
    PipelineError,
};
use crate::session::CompileSession;
use crate::telemetry::{arm_cancel, take_panic_stage, CancelToken, CancelUnwind, Telemetry};
use dra_ir::Program;
use dra_workloads::benchmark;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Resolve a `0 = one per CPU` thread knob against the machine.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Run `f` over every item on `threads` scoped workers, returning results
/// in item order.
///
/// Workers claim indices from a shared atomic counter and tag each result
/// with its index; the merge scatters results back into index order, so
/// the output is identical for any `threads` (0 = one per CPU). `f` must
/// be deterministic per `(index, item)` for that to extend to the values
/// themselves.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn run_batch<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

/// One cell's result under panic isolation: either the closure's value or
/// a structured record of the panic that killed it.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome<R> {
    /// The cell completed normally.
    Ok(R),
    /// Every attempt at the cell panicked; the rest of the batch is
    /// unaffected.
    Failed {
        /// The innermost telemetry stage active when the final attempt
        /// panicked (`"cell"` when the panic escaped outside any stage).
        stage: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The cell's [`CancelToken`] expired before it finished: a stage
    /// boundary (or the pre-attempt check) observed cancellation and the
    /// attempt was abandoned. Never retried — an expired deadline does not
    /// un-expire.
    Cancelled {
        /// The stage boundary that observed cancellation (`"start"` when
        /// the token was already expired before the first attempt began).
        stage: String,
    },
}

impl<R> CellOutcome<R> {
    /// True for [`CellOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok(_))
    }

    /// The value, if the cell completed.
    pub fn as_ok(&self) -> Option<&R> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// The value by move, if the cell completed.
    pub fn into_ok(self) -> Option<R> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// Aggregate fallout of one isolated batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IsolationStats {
    /// Cells whose every attempt panicked.
    pub failed: u64,
    /// Panicking attempts that were retried. Both counters depend only on
    /// which `(index, item)` cells panic — never on the schedule.
    pub retried: u64,
}

/// Render a panic payload for a [`CellOutcome::Failed`] record.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` under [`catch_unwind`] with up to `retries` deterministic
/// re-attempts, attributing a final panic to the innermost telemetry
/// stage it unwound through.
///
/// This is the per-cell core of [`run_batch_isolated`], exposed on its
/// own so the resident serving workers ([`crate::serve`]) give every
/// request exactly the same containment semantics as a batch cell: a
/// panicking request yields a structured [`CellOutcome::Failed`] with
/// stage attribution instead of killing its worker thread. Returns the
/// outcome plus the number of retried attempts.
pub fn run_isolated<R>(retries: u32, f: impl Fn() -> R) -> (CellOutcome<R>, u32) {
    run_isolated_cancellable(retries, None, f)
}

/// [`run_isolated`] with an optional cooperative [`CancelToken`].
///
/// When a token is supplied it is armed on this thread for the duration of
/// every attempt, so each telemetry stage boundary inside `f` (and every
/// explicit [`crate::telemetry::check_cancelled`] site, e.g. the session
/// cache) doubles as a cancellation checkpoint. An expired token turns the
/// attempt into [`CellOutcome::Cancelled`] — distinguished from a real
/// panic by its [`CancelUnwind`] payload — and is never retried: retrying
/// work whose deadline has passed only deepens an overload. An
/// already-expired token short-circuits before `f` runs at all (stage
/// `"start"`).
pub fn run_isolated_cancellable<R>(
    retries: u32,
    cancel: Option<&CancelToken>,
    f: impl Fn() -> R,
) -> (CellOutcome<R>, u32) {
    let mut retried = 0u32;
    loop {
        // Clear any stage left over from earlier work on this thread so
        // the attribution below is this attempt's own.
        let _ = take_panic_stage();
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return (
                CellOutcome::Cancelled {
                    stage: "start".to_string(),
                },
                retried,
            );
        }
        let _armed = cancel.map(arm_cancel);
        match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(r) => return (CellOutcome::Ok(r), retried),
            Err(payload) => {
                if let Some(c) = payload.downcast_ref::<CancelUnwind>() {
                    let _ = take_panic_stage();
                    return (
                        CellOutcome::Cancelled {
                            stage: c.stage.clone(),
                        },
                        retried,
                    );
                }
                let stage = take_panic_stage().unwrap_or_else(|| "cell".to_string());
                if retried < retries {
                    retried += 1;
                    continue;
                }
                return (
                    CellOutcome::Failed {
                        stage,
                        message: panic_message(payload.as_ref()),
                    },
                    retried,
                );
            }
        }
    }
}

/// [`run_batch`] with per-cell panic containment: each cell runs under
/// [`catch_unwind`] with up to `retries` deterministic re-attempts, so one
/// poisoned cell yields a [`CellOutcome::Failed`] hole instead of aborting
/// the whole matrix.
///
/// The failed/retried totals are schedule-invariant because `f` is
/// required to be deterministic per `(index, item)` (the same contract
/// [`run_batch`] already imposes): whether a cell panics — and therefore
/// how many times it is retried — cannot depend on which worker runs it.
pub fn run_batch_isolated<T, R, F>(
    items: &[T],
    threads: usize,
    retries: u32,
    f: F,
) -> (Vec<CellOutcome<R>>, IsolationStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let failed = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let outcomes = run_batch(items, threads, |i, item| {
        let (outcome, attempts) = run_isolated(retries, || f(i, item));
        retried.fetch_add(attempts as u64, Ordering::Relaxed);
        if !outcome.is_ok() {
            failed.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    });
    (
        outcomes,
        IsolationStats {
            failed: failed.load(Ordering::Relaxed),
            retried: retried.load(Ordering::Relaxed),
        },
    )
}

/// Everything derivable from a benchmark's *source* (pre-allocation)
/// form, shared across the approaches that compile it.
#[derive(Clone, Debug)]
pub struct SourceArtifacts {
    /// The parsed, still-virtual program.
    pub program: Program,
    /// Per-function MAXLIVE (the `Adaptive` enablement test), in
    /// `program.funcs` order.
    pub pressures: Vec<usize>,
}

impl SourceArtifacts {
    /// Parse and analyze one benchmark.
    pub fn analyze(name: &str) -> SourceArtifacts {
        let program = benchmark(name);
        let pressures = program
            .funcs
            .iter()
            .map(dra_ir::liveness::max_pressure_of)
            .collect();
        SourceArtifacts { program, pressures }
    }
}

/// Default entry bound for [`SourceCache`] — far above the ten built-in
/// benchmarks (so the batch pipelines never evict and their counters keep
/// the schedule-invariance contract), small enough that a resident daemon
/// holds a bounded working set of parsed programs.
pub const DEFAULT_SOURCE_CAPACITY: usize = 512;

/// A thread-safe, LRU-bounded memo of [`SourceArtifacts`] keyed by
/// benchmark name.
///
/// Every figure pipeline compiles each benchmark under several approaches;
/// the parse and the liveness analysis of the virgin program depend only
/// on the name, so they are computed once and shared (`Arc`) with all
/// consumers. Safe to use from [`run_batch`] workers.
///
/// The memo is bounded ([`LruCache`], default
/// [`DEFAULT_SOURCE_CAPACITY`]): a long-lived serving process
/// ([`crate::serve`]) cannot grow it without limit. Evictions surface as
/// `source_cache.evictions`; they are zero — and all counters remain
/// schedule-invariant — whenever the distinct key count stays within
/// capacity, which holds for every batch pipeline.
pub struct SourceCache {
    entries: Mutex<LruCache<String, Arc<SourceArtifacts>>>,
    /// Total `get` calls. One per consumer, so schedule-invariant.
    lookups: AtomicU64,
    /// Distinct keys whose artifacts this cache ended up owning. Counted
    /// at insert-win time, *not* per computation: when two workers race
    /// on the same benchmark both compute but only the first insert
    /// counts, so the value is the number of distinct benchmarks — a pure
    /// function of the work list, never of the schedule (as long as
    /// nothing is evicted and recomputed).
    misses: AtomicU64,
}

impl Default for SourceCache {
    fn default() -> Self {
        SourceCache::with_capacity(DEFAULT_SOURCE_CAPACITY)
    }
}

impl SourceCache {
    /// An empty cache with the default entry bound.
    pub fn new() -> SourceCache {
        SourceCache::default()
    }

    /// An empty cache holding at most `capacity` benchmarks.
    pub fn with_capacity(capacity: usize) -> SourceCache {
        SourceCache {
            entries: Mutex::new(LruCache::new(capacity)),
            lookups: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Lock the memo, recovering from poison.
    ///
    /// A worker panicking while holding the lock poisons the mutex, but
    /// the map's invariant survives any panic point: values are
    /// insert-once `Arc`s, never mutated in place, so a poisoned map is
    /// still a valid (possibly smaller) memo. Recovering here keeps one
    /// contained cell failure from cascading cache panics into every
    /// other cell of the batch.
    fn entries(&self) -> MutexGuard<'_, LruCache<String, Arc<SourceArtifacts>>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The artifacts for `name`, computing them on first request.
    ///
    /// The analysis runs outside the lock; if two workers race on the
    /// same benchmark the first inserted result wins and the duplicate is
    /// dropped, so every consumer sees the same `Arc`.
    pub fn get(&self, name: &str) -> Arc<SourceArtifacts> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(a) = self.entries().get(&name.to_string()) {
            return Arc::clone(a);
        }
        let computed = Arc::new(SourceArtifacts::analyze(name));
        let mut entries = self.entries();
        match entries.get(&name.to_string()) {
            Some(winner) => Arc::clone(winner),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                entries.insert(name.to_string(), Arc::clone(&computed));
                computed
            }
        }
    }

    /// Record the cache's counters (`source_cache.lookups` / `.misses` /
    /// `.hits` / `.evictions`) into `t`.
    ///
    /// Hits are derived as `lookups - misses`: a racing duplicate
    /// computation is neither a hit nor a miss, keeping all three values
    /// pure functions of the work list. Evictions are zero (and the whole
    /// record schedule-invariant) whenever the distinct keys fit the
    /// capacity; past the bound, eviction order — and therefore recompute
    /// misses — can depend on request interleaving, which a resident
    /// server reports as observed.
    pub fn record_counters(&self, t: &mut Telemetry) {
        let lookups = self.lookups.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        t.count("source_cache.lookups", lookups);
        t.count("source_cache.misses", misses);
        t.count("source_cache.hits", lookups - misses);
        t.count("source_cache.evictions", self.entries().evictions());
    }

    /// Number of memoized benchmarks.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// Entries evicted by the LRU bound since construction.
    pub fn evictions(&self) -> u64 {
        self.entries().evictions()
    }
}

/// [`crate::lowend::compile_and_run`] served from a [`SourceCache`]: the
/// benchmark is cloned out of the cache instead of re-parsed, and the
/// `Adaptive` approach reuses the memoized pressures.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_and_run_cached(
    cache: &SourceCache,
    name: &str,
    approach: Approach,
    setup: &LowEndSetup,
) -> Result<LowEndRun, PipelineError> {
    let mut telemetry = Telemetry::new();
    let src = cache.get(name);
    let mut program = src.program.clone();
    let remap = compile_program_telemetry(
        &mut program,
        approach,
        setup,
        Some(&src.pressures),
        &mut telemetry,
    )?;
    finish_run_or_degrade(Some(&src.program), program, approach, setup, remap, telemetry)
}

/// Run the full benchmarks × approaches grid in parallel
/// ([`LowEndSetup::batch_threads`] workers), sharing one [`SourceCache`].
///
/// Returns `matrix[bi][ai]` = the run of `names[bi]` under
/// `approaches[ai]`, bit-identical at any thread count.
pub fn run_lowend_matrix(
    names: &[&str],
    approaches: &[Approach],
    setup: &LowEndSetup,
) -> Vec<Vec<Result<LowEndRun, PipelineError>>> {
    run_lowend_matrix_with_telemetry(names, approaches, setup).0
}

/// [`run_lowend_matrix`], additionally aggregating batch-level telemetry:
/// every successful cell's counters and spans summed in cell-index order
/// (so the aggregate is bit-identical at any thread count, like the cells
/// themselves), plus the cell census
/// (`cells.ok`/`cells.err`/`cells.failed`/`cells.retried`, always
/// present), the shared [`CompileSession`]'s cache counters
/// (`source_cache.*` and `result_cache.*`), and a wall-clock `batch` span
/// around the whole grid.
///
/// Since the serving refactor the grid runs through a [`CompileSession`]:
/// the same object a resident `drac serve` daemon keeps across requests,
/// so batch and service compile through one code path. A figure grid's
/// cells are all distinct `(benchmark, approach)` keys, so its result
/// cache records only misses here — the counters stay schedule-invariant.
///
/// Cells run under [`run_batch_isolated`] with
/// [`LowEndSetup::cell_retries`] re-attempts: a panicking cell (including
/// one injected via [`crate::faults::PipelineFaults::panic_cells`])
/// surfaces as [`PipelineError::Panic`] in its own slot while every other
/// cell completes bit-identically to an undisturbed run.
pub fn run_lowend_matrix_with_telemetry(
    names: &[&str],
    approaches: &[Approach],
    setup: &LowEndSetup,
) -> (Vec<Vec<Result<LowEndRun, PipelineError>>>, Telemetry) {
    let mut agg = Telemetry::new();
    let session = CompileSession::new(setup.clone());
    let cells: Vec<(usize, usize)> = (0..names.len())
        .flat_map(|bi| (0..approaches.len()).map(move |ai| (bi, ai)))
        .collect();
    let (flat, iso) = agg.time("batch", || {
        run_batch_isolated(
            &cells,
            setup.batch_threads,
            setup.cell_retries,
            |ci, &(bi, ai)| {
                if setup.faults.panic_cells.contains(&ci) {
                    panic!("injected cell fault (cell {ci})");
                }
                session
                    .compile_bench(names[bi], approaches[ai])
                    .map(|(run, _cached)| (*run).clone())
            },
        )
    });
    // Seed the census at zero so every key is present even in a clean run
    // (consumers diff telemetry files; an absent key reads as a schema
    // change rather than a zero).
    for key in ["cells.ok", "cells.err", "cells.failed", "cells.retried"] {
        agg.count(key, 0);
    }
    agg.count("cells.failed", iso.failed);
    agg.count("cells.retried", iso.retried);
    let mut matrix: Vec<Vec<Result<LowEndRun, PipelineError>>> =
        (0..names.len()).map(|_| Vec::new()).collect();
    for ((bi, _), outcome) in cells.into_iter().zip(flat) {
        let run = match outcome {
            CellOutcome::Ok(run) => run,
            CellOutcome::Failed { stage, message } => Err(PipelineError::Panic { stage, message }),
            // Batch cells run without a cancel token; the arm exists for
            // exhaustiveness (a future deadline-aware batch would land here).
            CellOutcome::Cancelled { stage } => Err(PipelineError::Panic {
                stage,
                message: "cancelled".to_string(),
            }),
        };
        match &run {
            Ok(r) => {
                agg.count("cells.ok", 1);
                agg.merge(&r.telemetry);
            }
            Err(_) => agg.count("cells.err", 1),
        }
        matrix[bi].push(run);
    }
    session.record_counters(&mut agg);
    (matrix, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowend::compile_and_run;

    /// Zero the remap wall-clock field (`search_nanos`) and drop telemetry
    /// spans: they measure wall-clock time, not the compilation result, so
    /// two otherwise-identical runs differ there. The remap *work*
    /// counters (`evaluations`, `starts_run`, `cycle_moves`) are
    /// schedule-invariant — the portfolio splits its budget
    /// deterministically — so they stay in the comparison.
    fn normalized(mut r: LowEndRun) -> LowEndRun {
        for st in &mut r.remap {
            st.search_nanos = 0;
        }
        r.telemetry.clear_spans();
        r
    }

    #[test]
    fn run_batch_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = run_batch(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_batch_handles_empty_and_tiny_inputs() {
        let empty: [u32; 0] = [];
        assert!(run_batch(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(run_batch(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn run_batch_isolated_contains_a_panicking_cell() {
        let items: Vec<usize> = (0..10).collect();
        for threads in [1, 2, 8] {
            let (out, stats) = run_batch_isolated(&items, threads, 1, |_, &x| {
                if x == 5 {
                    panic!("injected fault in cell {x}");
                }
                x * 2
            });
            assert_eq!(stats, IsolationStats { failed: 1, retried: 1 });
            for (i, o) in out.iter().enumerate() {
                if i == 5 {
                    match o {
                        CellOutcome::Failed { stage, message } => {
                            assert_eq!(stage, "cell", "panic outside any telemetry stage");
                            assert!(message.contains("injected fault in cell 5"), "{message}");
                        }
                        other => panic!("cell 5 should have failed, got {other:?}"),
                    }
                } else {
                    assert_eq!(o.as_ok(), Some(&(i * 2)), "cell {i} survived untouched");
                }
            }
        }
    }

    #[test]
    fn run_batch_isolated_attributes_the_stage_and_retries() {
        let items = [0usize];
        let (out, stats) = run_batch_isolated(&items, 1, 2, |_, &x| {
            let mut t = Telemetry::new();
            t.time("alloc", || {
                if x == 0 {
                    panic!("boom");
                }
                x
            })
        });
        assert_eq!(stats, IsolationStats { failed: 1, retried: 2 });
        match &out[0] {
            CellOutcome::Failed { stage, message } => {
                assert_eq!(stage, "alloc");
                assert_eq!(message, "boom");
            }
            other => panic!("cell should have failed, got {other:?}"),
        }
    }

    #[test]
    fn run_isolated_cancellable_stops_at_the_next_stage_boundary() {
        crate::telemetry::install_cancel_quiet_hook();
        let token = CancelToken::new();
        let (outcome, retried) = run_isolated_cancellable(3, Some(&token), || {
            let mut t = Telemetry::new();
            t.time("alloc", || token.cancel());
            t.time("verify", || unreachable!("stage after cancellation must not run"))
        });
        assert_eq!(retried, 0, "cancellation is never retried");
        match outcome {
            CellOutcome::Cancelled { stage } => assert_eq!(stage, "verify"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn run_isolated_cancellable_short_circuits_an_expired_token() {
        let token = CancelToken::new();
        token.cancel();
        let ran = std::sync::atomic::AtomicBool::new(false);
        let (outcome, retried) = run_isolated_cancellable(2, Some(&token), || {
            ran.store(true, Ordering::SeqCst);
        });
        assert!(!ran.load(Ordering::SeqCst), "work never starts");
        assert_eq!(retried, 0);
        match outcome {
            CellOutcome::Cancelled { stage } => assert_eq!(stage, "start"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn run_isolated_cancellable_without_token_matches_run_isolated() {
        let (outcome, retried) = run_isolated_cancellable(1, None, || 7);
        assert_eq!(outcome, CellOutcome::Ok(7));
        assert_eq!(retried, 0);
        // Real panics still retry and attribute stages with a token armed.
        let token = CancelToken::new();
        let (outcome, retried) = run_isolated_cancellable(2, Some(&token), || {
            let mut t = Telemetry::new();
            t.time("repair", || panic!("boom"))
        });
        assert_eq!(retried, 2);
        match outcome {
            CellOutcome::Failed { stage, message } => {
                assert_eq!(stage, "repair");
                assert_eq!(message, "boom");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn cache_recovers_from_a_poisoned_lock() {
        let cache = SourceCache::new();
        cache.get("crc32");
        // Poison the mutex the way a mid-batch worker panic would: unwind
        // while holding the guard.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = cache.entries.lock().unwrap();
            panic!("injected panic while holding the cache lock");
        }));
        assert!(cache.entries.lock().is_err(), "lock is actually poisoned");
        // The cache keeps serving: hits recover the memo, misses insert.
        let a = cache.get("crc32");
        assert_eq!(a.pressures.len(), a.program.funcs.len());
        cache.get("bitcount");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_memoizes_and_shares() {
        let cache = SourceCache::new();
        assert!(cache.is_empty());
        let a = cache.get("crc32");
        let b = cache.get("crc32");
        assert!(Arc::ptr_eq(&a, &b), "second get hits the memo");
        assert_eq!(cache.len(), 1);
        assert_eq!(a.pressures.len(), a.program.funcs.len());
    }

    #[test]
    fn cached_run_matches_direct_pipeline() {
        let setup = LowEndSetup::default();
        let cache = SourceCache::new();
        for approach in [Approach::Baseline, Approach::Select, Approach::Adaptive] {
            let direct = normalized(compile_and_run("crc32", approach, &setup).unwrap());
            let cached =
                normalized(compile_and_run_cached(&cache, "crc32", approach, &setup).unwrap());
            assert_eq!(direct, cached, "{} diverged", approach.label());
        }
    }

    #[test]
    fn matrix_matches_serial_runs() {
        let setup = LowEndSetup::default();
        let names = ["crc32", "bitcount"];
        let approaches = [Approach::Baseline, Approach::Coalesce];
        let matrix = run_lowend_matrix(&names, &approaches, &setup);
        assert_eq!(matrix.len(), names.len());
        for (bi, name) in names.iter().enumerate() {
            assert_eq!(matrix[bi].len(), approaches.len());
            for (ai, &a) in approaches.iter().enumerate() {
                let direct = normalized(compile_and_run(name, a, &setup).unwrap());
                let batched = normalized(matrix[bi][ai].as_ref().unwrap().clone());
                assert_eq!(direct, batched, "{name}/{} diverged", a.label());
            }
        }
    }
}
