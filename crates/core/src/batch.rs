//! Deterministic parallel batch driver for the figure/table pipelines.
//!
//! Every evaluation binary runs the same shape of work: a matrix of
//! independent (benchmark, approach) or (loop, sweep-point) cells, each a
//! full compile→encode→verify→simulate pipeline. The cells share nothing
//! mutable, so they parallelize trivially — the only care required is
//! determinism, and this module follows the remapping search's rule
//! (`RemapConfig::threads`): **output is a pure function of the input,
//! never of the schedule**.
//!
//! * [`run_batch`] executes a closure over an item slice on
//!   [`std::thread::scope`] workers. Items are claimed from a shared
//!   atomic counter (work-stealing, so a slow cell does not idle the other
//!   workers) and every result is written back to its item's *index slot*;
//!   the returned `Vec` is in item order for any thread count, including
//!   the sequential `threads = 1` path, which runs in the caller's thread.
//! * [`SourceCache`] memoizes per-benchmark *source artifacts*: the parsed
//!   [`Program`] and each function's register pressure (MAXLIVE). Each
//!   benchmark is parsed and analyzed once per process no matter how many
//!   approaches or sweep points consume it; the `Adaptive` approach's
//!   per-function liveness pass is served from the cache.
//! * [`run_lowend_matrix`] combines the two: the full
//!   benchmarks × approaches grid of Figures 11–14 in one call, with the
//!   thread count taken from [`LowEndSetup::batch_threads`].
//!
//! The per-cell pipelines are themselves deterministic (the remapping
//! search is bit-identical at any `remap_threads`), so a whole matrix is
//! reproducible bit-for-bit at any `batch_threads`.

use crate::lowend::{
    compile_program_telemetry, finish_run, Approach, LowEndRun, LowEndSetup, PipelineError,
};
use crate::telemetry::Telemetry;
use dra_ir::{Liveness, Program};
use dra_workloads::benchmark;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Resolve a `0 = one per CPU` thread knob against the machine.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Run `f` over every item on `threads` scoped workers, returning results
/// in item order.
///
/// Workers claim indices from a shared atomic counter and tag each result
/// with its index; the merge scatters results back into index order, so
/// the output is identical for any `threads` (0 = one per CPU). `f` must
/// be deterministic per `(index, item)` for that to extend to the values
/// themselves.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn run_batch<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

/// Everything derivable from a benchmark's *source* (pre-allocation)
/// form, shared across the approaches that compile it.
#[derive(Clone, Debug)]
pub struct SourceArtifacts {
    /// The parsed, still-virtual program.
    pub program: Program,
    /// Per-function MAXLIVE (the `Adaptive` enablement test), in
    /// `program.funcs` order.
    pub pressures: Vec<usize>,
}

impl SourceArtifacts {
    /// Parse and analyze one benchmark.
    pub fn analyze(name: &str) -> SourceArtifacts {
        let program = benchmark(name);
        let pressures = program
            .funcs
            .iter()
            .map(|f| Liveness::compute(f).max_pressure(f))
            .collect();
        SourceArtifacts { program, pressures }
    }
}

/// A thread-safe memo of [`SourceArtifacts`] keyed by benchmark name.
///
/// Every figure pipeline compiles each benchmark under several approaches;
/// the parse and the liveness analysis of the virgin program depend only
/// on the name, so they are computed once and shared (`Arc`) with all
/// consumers. Safe to use from [`run_batch`] workers.
#[derive(Default)]
pub struct SourceCache {
    entries: Mutex<HashMap<String, Arc<SourceArtifacts>>>,
    /// Total `get` calls. One per consumer, so schedule-invariant.
    lookups: AtomicU64,
    /// Distinct keys whose artifacts this cache ended up owning. Counted
    /// at insert-win time, *not* per computation: when two workers race
    /// on the same benchmark both compute but only the first insert
    /// counts, so the value is the number of distinct benchmarks — a pure
    /// function of the work list, never of the schedule.
    misses: AtomicU64,
}

impl SourceCache {
    /// An empty cache.
    pub fn new() -> SourceCache {
        SourceCache::default()
    }

    /// The artifacts for `name`, computing them on first request.
    ///
    /// The analysis runs outside the lock; if two workers race on the
    /// same benchmark the first inserted result wins and the duplicate is
    /// dropped, so every consumer sees the same `Arc`.
    pub fn get(&self, name: &str) -> Arc<SourceArtifacts> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(a) = self.entries.lock().unwrap().get(name) {
            return Arc::clone(a);
        }
        let computed = Arc::new(SourceArtifacts::analyze(name));
        match self.entries.lock().unwrap().entry(name.to_string()) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(computed))
            }
        }
    }

    /// Record the cache's schedule-invariant counters
    /// (`source_cache.lookups` / `.misses` / `.hits`) into `t`.
    ///
    /// Hits are derived as `lookups - misses`: a racing duplicate
    /// computation is neither a hit nor a miss, keeping all three values
    /// pure functions of the work list.
    pub fn record_counters(&self, t: &mut Telemetry) {
        let lookups = self.lookups.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        t.count("source_cache.lookups", lookups);
        t.count("source_cache.misses", misses);
        t.count("source_cache.hits", lookups - misses);
    }

    /// Number of memoized benchmarks.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }
}

/// [`crate::lowend::compile_and_run`] served from a [`SourceCache`]: the
/// benchmark is cloned out of the cache instead of re-parsed, and the
/// `Adaptive` approach reuses the memoized pressures.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn compile_and_run_cached(
    cache: &SourceCache,
    name: &str,
    approach: Approach,
    setup: &LowEndSetup,
) -> Result<LowEndRun, PipelineError> {
    let mut telemetry = Telemetry::new();
    let src = cache.get(name);
    let mut program = src.program.clone();
    let remap = compile_program_telemetry(
        &mut program,
        approach,
        setup,
        Some(&src.pressures),
        &mut telemetry,
    )?;
    finish_run(program, approach, setup, remap, telemetry)
}

/// Run the full benchmarks × approaches grid in parallel
/// ([`LowEndSetup::batch_threads`] workers), sharing one [`SourceCache`].
///
/// Returns `matrix[bi][ai]` = the run of `names[bi]` under
/// `approaches[ai]`, bit-identical at any thread count.
pub fn run_lowend_matrix(
    names: &[&str],
    approaches: &[Approach],
    setup: &LowEndSetup,
) -> Vec<Vec<Result<LowEndRun, PipelineError>>> {
    run_lowend_matrix_with_telemetry(names, approaches, setup).0
}

/// [`run_lowend_matrix`], additionally aggregating batch-level telemetry:
/// every successful cell's counters and spans summed in cell-index order
/// (so the aggregate is bit-identical at any thread count, like the cells
/// themselves), plus `cells.ok`/`cells.err`, the [`SourceCache`]'s
/// counters, and a wall-clock `batch` span around the whole grid.
pub fn run_lowend_matrix_with_telemetry(
    names: &[&str],
    approaches: &[Approach],
    setup: &LowEndSetup,
) -> (Vec<Vec<Result<LowEndRun, PipelineError>>>, Telemetry) {
    let mut agg = Telemetry::new();
    let cache = SourceCache::new();
    let cells: Vec<(usize, usize)> = (0..names.len())
        .flat_map(|bi| (0..approaches.len()).map(move |ai| (bi, ai)))
        .collect();
    let flat = agg.time("batch", || {
        run_batch(&cells, setup.batch_threads, |_, &(bi, ai)| {
            compile_and_run_cached(&cache, names[bi], approaches[ai], setup)
        })
    });
    let mut matrix: Vec<Vec<Result<LowEndRun, PipelineError>>> =
        (0..names.len()).map(|_| Vec::new()).collect();
    for ((bi, _), run) in cells.into_iter().zip(flat) {
        match &run {
            Ok(r) => {
                agg.count("cells.ok", 1);
                agg.merge(&r.telemetry);
            }
            Err(_) => agg.count("cells.err", 1),
        }
        matrix[bi].push(run);
    }
    cache.record_counters(&mut agg);
    (matrix, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowend::compile_and_run;

    /// Zero the remap work counters (`evaluations`, `starts_run`,
    /// `search_nanos`): they measure wall-clock and scheduling, not the
    /// compilation result, so two otherwise-identical runs differ there.
    /// Telemetry is normalized the same way: spans are wall-clock-only
    /// (and a cached run records no `parse` span at all), and the
    /// `remap.*` work counters mirror `RemapStats`.
    fn normalized(mut r: LowEndRun) -> LowEndRun {
        for st in &mut r.remap {
            st.evaluations = 0;
            st.starts_run = 0;
            st.search_nanos = 0;
        }
        r.telemetry.clear_spans();
        r.telemetry.set_counter("remap.evaluations", 0);
        r.telemetry.set_counter("remap.starts_run", 0);
        r
    }

    #[test]
    fn run_batch_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = run_batch(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_batch_handles_empty_and_tiny_inputs() {
        let empty: [u32; 0] = [];
        assert!(run_batch(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(run_batch(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn cache_memoizes_and_shares() {
        let cache = SourceCache::new();
        assert!(cache.is_empty());
        let a = cache.get("crc32");
        let b = cache.get("crc32");
        assert!(Arc::ptr_eq(&a, &b), "second get hits the memo");
        assert_eq!(cache.len(), 1);
        assert_eq!(a.pressures.len(), a.program.funcs.len());
    }

    #[test]
    fn cached_run_matches_direct_pipeline() {
        let setup = LowEndSetup::default();
        let cache = SourceCache::new();
        for approach in [Approach::Baseline, Approach::Select, Approach::Adaptive] {
            let direct = normalized(compile_and_run("crc32", approach, &setup).unwrap());
            let cached =
                normalized(compile_and_run_cached(&cache, "crc32", approach, &setup).unwrap());
            assert_eq!(direct, cached, "{} diverged", approach.label());
        }
    }

    #[test]
    fn matrix_matches_serial_runs() {
        let setup = LowEndSetup::default();
        let names = ["crc32", "bitcount"];
        let approaches = [Approach::Baseline, Approach::Coalesce];
        let matrix = run_lowend_matrix(&names, &approaches, &setup);
        assert_eq!(matrix.len(), names.len());
        for (bi, name) in names.iter().enumerate() {
            assert_eq!(matrix[bi].len(), approaches.len());
            for (ai, &a) in approaches.iter().enumerate() {
                let direct = normalized(compile_and_run(name, a, &setup).unwrap());
                let batched = normalized(matrix[bi][ai].as_ref().unwrap().clone());
                assert_eq!(direct, batched, "{name}/{} diverged", a.label());
            }
        }
    }
}
