//! # Resident allocation service (`drac serve`)
//!
//! A long-lived daemon that accepts compile jobs over a Unix or TCP
//! socket and dispatches them to a persistent pool of sharded workers,
//! all sharing one [`CompileSession`] — so the source cache and the
//! content-hash result cache survive *across* requests instead of being
//! rebuilt per invocation. The paper's pipelines are pure functions of
//! their input, which is what makes the cross-request cache sound: two
//! requests with the same content hash get byte-identical runs no matter
//! which worker, connection, or ordering served them.
//!
//! ## Wire protocol (`dra-serve-v1`)
//!
//! Line-delimited JSON over the socket: one request per line, one
//! response line per request. Every request carries `schema`, a caller
//! chosen `id` (echoed on the response so concurrent clients can match
//! replies), and a `kind`:
//!
//! ```text
//! {"schema":"dra-serve-v1","id":"r1","kind":"compile","approach":"select","bench":"crc32"}
//! {"schema":"dra-serve-v1","id":"r2","kind":"compile","approach":"coalesce","source":"fn f { ... }"}
//! {"schema":"dra-serve-v1","id":"r3","kind":"ping"}
//! {"schema":"dra-serve-v1","id":"r4","kind":"stats"}
//! {"schema":"dra-serve-v1","id":"r5","kind":"shutdown"}
//! ```
//!
//! Responses are `{"schema":…,"id":…,"ok":true,…}` or
//! `{"schema":…,"id":…,"ok":false,"error":{"kind":…,"message":…}}`.
//! Malformed input never kills a connection silently and never reaches a
//! worker: bad JSON, unknown fields, unknown benchmarks, oversized lines
//! and truncated trailing lines all produce a structured error response.
//! Worker panics are contained per request by [`run_isolated`] — the
//! same containment the batch driver uses — and surface as an
//! `"error":{"kind":"panic",…}` response with stage attribution.
//!
//! ## Sharding
//!
//! Jobs are routed to workers by the *result-cache key* (`shard =
//! key[0] % workers`), so duplicate requests land on the same worker and
//! hit its just-inserted cache entry instead of racing a recompute on
//! another shard. Distinct keys spread uniformly (FNV-1a output).
//!
//! ## Telemetry
//!
//! The daemon keeps per-shard [`Telemetry`] (merged in shard order, so
//! aggregate counters are schedule-invariant for a fixed request set)
//! plus connection-level counters (`serve.connections`,
//! `serve.bad_requests`, …). A `stats` request returns the merged frame
//! inline; shutdown writes it to `results/telemetry/serve.json` when a
//! telemetry root is configured.

use crate::batch::run_isolated;
use crate::lowend::{Approach, LowEndRun, LowEndSetup};
use crate::session::{result_key, CompileSession};
use crate::telemetry::{escape_json, parse_json, Json, Telemetry, TelemetryReport};
use std::collections::BTreeSet;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Protocol identifier; every request and response carries it.
pub const SERVE_SCHEMA: &str = "dra-serve-v1";

/// Default cap on a single request line (bytes, newline included).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Longest request id the server echoes back.
pub const MAX_ID_BYTES: usize = 256;

// ---------------------------------------------------------------------------
// Addresses, listeners, streams.
// ---------------------------------------------------------------------------

/// Where the daemon listens (or a client connects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` (use port 0 to let the OS pick; the bound
    /// address is reported by [`ServerHandle::addr`]).
    Tcp(String),
}

impl ServeAddr {
    /// Parse `unix:/path` or `tcp:host:port` (a bare value with no
    /// scheme is treated as a Unix path).
    pub fn parse(s: &str) -> ServeAddr {
        if let Some(rest) = s.strip_prefix("tcp:") {
            ServeAddr::Tcp(rest.to_string())
        } else if let Some(rest) = s.strip_prefix("unix:") {
            ServeAddr::Unix(PathBuf::from(rest))
        } else {
            ServeAddr::Unix(PathBuf::from(s))
        }
    }
}

impl fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            ServeAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(addr: &ServeAddr) -> io::Result<Listener> {
        match addr {
            ServeAddr::Unix(path) => Ok(Listener::Unix(UnixListener::bind(path)?)),
            ServeAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a.as_str())?)),
        }
    }

    /// The concretely bound address (resolves TCP port 0).
    fn bound_addr(&self, requested: &ServeAddr) -> ServeAddr {
        match self {
            Listener::Unix(_) => requested.clone(),
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => ServeAddr::Tcp(a.to_string()),
                Err(_) => requested.clone(),
            },
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // One-line request/response traffic: Nagle + delayed ACK
                // would add ~40 ms per exchange.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }
}

/// A connected socket of either flavour.
pub enum Stream {
    /// Unix-domain.
    Unix(UnixStream),
    /// TCP.
    Tcp(TcpStream),
}

impl Stream {
    fn connect(addr: &ServeAddr) -> io::Result<Stream> {
        match addr {
            ServeAddr::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            ServeAddr::Tcp(a) => {
                let s = TcpStream::connect(a.as_str())?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }

    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(d),
            Stream::Tcp(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded line reader.
// ---------------------------------------------------------------------------

/// What [`LineReader::next_line`] yielded.
pub enum LineEvent {
    /// A complete line (newline stripped, `\r` trimmed).
    Line(String),
    /// The read timed out with no complete line; retained partial input
    /// stays buffered for the next call.
    Timeout,
    /// Peer closed the socket. `partial` is true when unterminated bytes
    /// were left in the buffer — a truncated request.
    Eof {
        /// Whether a partial line was discarded.
        partial: bool,
    },
    /// The current line exceeded the configured byte cap before its
    /// newline arrived.
    Oversized,
}

/// A newline-framed reader with a hard per-line byte cap, so a client
/// streaming an endless unterminated line cannot balloon server memory.
pub struct LineReader {
    stream: Stream,
    buf: Vec<u8>,
    max_line: usize,
}

impl LineReader {
    /// Wrap `stream`; lines longer than `max_line` bytes are rejected.
    pub fn new(stream: Stream, max_line: usize) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
            max_line: max_line.max(64),
        }
    }

    /// Pull the next event. `Timeout` only occurs when the underlying
    /// stream has a read timeout configured.
    pub fn next_line(&mut self) -> io::Result<LineEvent> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > self.max_line {
                self.buf.clear();
                return Ok(LineEvent::Oversized);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    let partial = !self.buf.is_empty();
                    self.buf.clear();
                    return Ok(LineEvent::Eof { partial });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol: requests.
// ---------------------------------------------------------------------------

/// A compile job's payload: a builtin benchmark by name, or inline
/// program text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSpec {
    /// One of [`dra_workloads::benchmark_names`].
    Bench(String),
    /// Program text for the parser.
    Source(String),
}

/// A validated `dra-serve-v1` request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile and simulate.
    Compile {
        /// Echoed on the response.
        id: String,
        /// Allocation approach.
        approach: Approach,
        /// What to compile.
        spec: JobSpec,
    },
    /// Liveness probe.
    Ping {
        /// Echoed on the response.
        id: String,
    },
    /// Merged telemetry snapshot.
    Stats {
        /// Echoed on the response.
        id: String,
    },
    /// Graceful daemon shutdown.
    Shutdown {
        /// Echoed on the response.
        id: String,
    },
}

/// A protocol-level rejection: carried back as a structured error
/// response instead of ever reaching a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// The request id when one could be recovered (error responses echo
    /// it so pipelined clients can re-associate).
    pub id: Option<String>,
    /// Machine-readable kind: `bad-json`, `bad-request`, `oversized`,
    /// `truncated`, or a [`crate::lowend::PipelineError::kind`].
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    fn new(id: Option<&str>, kind: &'static str, message: impl Into<String>) -> WireError {
        WireError {
            id: id.map(str::to_string),
            kind,
            message: message.into(),
        }
    }
}

/// Parse and validate one request line. Unknown fields are rejected —
/// a client speaking a future schema revision gets a structured
/// `bad-request`, not silent misinterpretation.
///
/// # Errors
///
/// [`WireError`] with kind `bad-json` (not JSON / not an object) or
/// `bad-request` (schema, id, kind, or field violations).
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let doc = parse_json(line).map_err(|e| WireError::new(None, "bad-json", e))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| WireError::new(None, "bad-json", "request is not a JSON object"))?;

    // Recover the id first so every later rejection can echo it.
    let id = match obj.get("id") {
        Some(Json::Str(s)) if !s.is_empty() && s.len() <= MAX_ID_BYTES => s.clone(),
        Some(_) => {
            return Err(WireError::new(
                None,
                "bad-request",
                format!("\"id\" must be a non-empty string of at most {MAX_ID_BYTES} bytes"),
            ))
        }
        None => return Err(WireError::new(None, "bad-request", "missing \"id\"")),
    };

    match obj.get("schema").and_then(Json::as_str) {
        Some(SERVE_SCHEMA) => {}
        Some(other) => {
            return Err(WireError::new(
                Some(&id),
                "bad-request",
                format!("unsupported schema {other:?} (want {SERVE_SCHEMA:?})"),
            ))
        }
        None => {
            return Err(WireError::new(
                Some(&id),
                "bad-request",
                format!("missing \"schema\" (want {SERVE_SCHEMA:?})"),
            ))
        }
    }

    let kind = match obj.get("kind").and_then(Json::as_str) {
        Some(k) => k,
        None => return Err(WireError::new(Some(&id), "bad-request", "missing \"kind\"")),
    };

    let allowed: &[&str] = match kind {
        "compile" => &["schema", "id", "kind", "approach", "bench", "source"],
        "ping" | "stats" | "shutdown" => &["schema", "id", "kind"],
        other => {
            return Err(WireError::new(
                Some(&id),
                "bad-request",
                format!("unknown kind {other:?}"),
            ))
        }
    };
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(WireError::new(
                Some(&id),
                "bad-request",
                format!("unknown field {key:?} for kind {kind:?}"),
            ));
        }
    }

    match kind {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        _ => {
            let approach = match obj.get("approach").and_then(Json::as_str) {
                Some(s) => Approach::parse(s).ok_or_else(|| {
                    WireError::new(Some(&id), "bad-request", format!("unknown approach {s:?}"))
                })?,
                None => {
                    return Err(WireError::new(
                        Some(&id),
                        "bad-request",
                        "compile requires \"approach\"",
                    ))
                }
            };
            let bench = obj.get("bench");
            let source = obj.get("source");
            let spec = match (bench, source) {
                (Some(Json::Str(b)), None) => JobSpec::Bench(b.clone()),
                (None, Some(Json::Str(s))) => JobSpec::Source(s.clone()),
                (Some(_), Some(_)) => {
                    return Err(WireError::new(
                        Some(&id),
                        "bad-request",
                        "compile takes exactly one of \"bench\" or \"source\", not both",
                    ))
                }
                _ => {
                    return Err(WireError::new(
                        Some(&id),
                        "bad-request",
                        "compile requires a string \"bench\" or \"source\"",
                    ))
                }
            };
            Ok(Request::Compile { id, approach, spec })
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol: responses.
// ---------------------------------------------------------------------------

fn id_json(id: Option<&str>) -> String {
    match id {
        Some(s) => format!("\"{}\"", escape_json(s)),
        None => "null".to_string(),
    }
}

/// Render the deterministic result object for a run. Field order is
/// fixed and only schedule-invariant quantities appear — no wall-clock,
/// no search-work counters — so concurrent and sequential service of the
/// same job produce *byte-identical* fragments (pinned by test).
pub fn result_json(run: &LowEndRun) -> String {
    let degraded = run.remap.iter().filter(|s| s.degraded).count();
    let ret = match run.ret_value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"approach\":\"{}\",\"total_insts\":{},\"spill_insts\":{},\"set_last_regs\":{},\
         \"code_bits\":{},\"cycles\":{},\"dynamic_spills\":{},\"dynamic_set_last_regs\":{},\
         \"icache_misses\":{},\"dcache_misses\":{},\"degraded_funcs\":{},\"ret\":{}}}",
        escape_json(run.approach.label()),
        run.total_insts,
        run.spill_insts,
        run.set_last_regs,
        run.code_bits,
        run.cycles,
        run.dynamic_spills,
        run.dynamic_set_last_regs,
        run.icache_misses,
        run.dcache_misses,
        degraded,
        ret,
    )
}

/// An `ok:false` response line (no trailing newline).
pub fn response_error(id: Option<&str>, kind: &str, message: &str) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":{},\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
        id_json(id),
        escape_json(kind),
        escape_json(message),
    )
}

/// A successful compile response line.
pub fn response_run(id: &str, run: &LowEndRun, cached: bool, micros: u64) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":{},\"ok\":true,\"kind\":\"compile\",\"cached\":{},\"micros\":{},\"result\":{}}}",
        id_json(Some(id)),
        cached,
        micros,
        result_json(run),
    )
}

fn response_plain(id: &str, kind: &str) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":{},\"ok\":true,\"kind\":\"{}\"}}",
        id_json(Some(id)),
        kind,
    )
}

/// A `stats` response embedding the merged telemetry frame.
pub fn response_stats(id: &str, telemetry: &Telemetry) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":{},\"ok\":true,\"kind\":\"stats\",\"stats\":{}}}",
        id_json(Some(id)),
        telemetry.to_json_compact("serve"),
    )
}

/// A parsed response line, as seen by clients.
#[derive(Clone, Debug)]
pub struct Response {
    /// The raw line, verbatim (for byte-level comparisons).
    pub raw: String,
    /// The echoed request id (None on early protocol errors).
    pub id: Option<String>,
    /// Success flag.
    pub ok: bool,
    /// Response kind (`compile`, `pong`, `stats`, `bye`; None on
    /// errors).
    pub kind: Option<String>,
    /// Whether a compile was served from the result cache.
    pub cached: bool,
    /// Service time in microseconds (compile responses).
    pub micros: u64,
    /// The result object (compile responses).
    pub result: Option<std::collections::BTreeMap<String, Json>>,
    /// `(kind, message)` on failures.
    pub error: Option<(String, String)>,
    /// The embedded telemetry frame (stats responses).
    pub stats: Option<TelemetryReport>,
}

impl Response {
    /// Parse one response line.
    ///
    /// # Errors
    ///
    /// A description when the line is not a `dra-serve-v1` response
    /// object.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = parse_json(line)?;
        let obj = doc.as_obj().ok_or("response is not a JSON object")?;
        match obj.get("schema").and_then(Json::as_str) {
            Some(SERVE_SCHEMA) => {}
            other => return Err(format!("bad response schema {other:?}")),
        }
        let id = obj.get("id").and_then(Json::as_str).map(str::to_string);
        let ok = matches!(obj.get("ok"), Some(Json::Bool(true)));
        let kind = obj.get("kind").and_then(Json::as_str).map(str::to_string);
        let cached = matches!(obj.get("cached"), Some(Json::Bool(true)));
        let micros = obj.get("micros").and_then(Json::as_u64).unwrap_or(0);
        let result = obj.get("result").and_then(Json::as_obj).cloned();
        let error = obj.get("error").and_then(Json::as_obj).map(|e| {
            (
                e.get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                e.get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            )
        });
        let stats = obj.get("stats").and_then(Json::as_obj).map(|s| {
            let grab = |key: &str| {
                s.get(key)
                    .and_then(Json::as_obj)
                    .map(|m| {
                        m.iter()
                            .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                            .collect()
                    })
                    .unwrap_or_default()
            };
            TelemetryReport {
                binary: s
                    .get("binary")
                    .and_then(Json::as_str)
                    .unwrap_or("serve")
                    .to_string(),
                counters: grab("counters"),
                spans_ns: grab("spans_ns"),
            }
        });
        Ok(Response {
            raw: line.to_string(),
            id,
            ok,
            kind,
            cached,
            micros,
            result,
            error,
            stats,
        })
    }

    /// The verbatim `"result":{…}` fragment of the raw line, for
    /// byte-identical comparisons across servers and schedules. The
    /// result object is flat (numbers and null only), so scanning to the
    /// first closing brace is exact.
    pub fn result_fragment(&self) -> Option<&str> {
        let start = self.raw.find("\"result\":{")? + "\"result\":".len();
        let end = self.raw[start..].find('}')? + start + 1;
        Some(&self.raw[start..end])
    }
}

// ---------------------------------------------------------------------------
// Request builders (shared by the client and the load harness).
// ---------------------------------------------------------------------------

/// Build a benchmark compile request line.
pub fn request_compile_bench(id: &str, bench: &str, approach: Approach) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":\"{}\",\"kind\":\"compile\",\"approach\":\"{}\",\"bench\":\"{}\"}}",
        escape_json(id),
        escape_json(approach.label()),
        escape_json(bench),
    )
}

/// Build a source-text compile request line (text is JSON-escaped, so
/// embedded newlines survive the line framing).
pub fn request_compile_source(id: &str, source: &str, approach: Approach) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":\"{}\",\"kind\":\"compile\",\"approach\":\"{}\",\"source\":\"{}\"}}",
        escape_json(id),
        escape_json(approach.label()),
        escape_json(source),
    )
}

/// Build a `ping` / `stats` / `shutdown` request line.
pub fn request_plain(id: &str, kind: &str) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":\"{}\",\"kind\":\"{}\"}}",
        escape_json(id),
        escape_json(kind),
    )
}

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address.
    pub addr: ServeAddr,
    /// Worker pool size; 0 means one per available core.
    pub workers: usize,
    /// Per-request panic re-attempts (see [`run_isolated`]).
    pub retries: u32,
    /// Pipeline setup shared by every request.
    pub setup: LowEndSetup,
    /// Source-cache capacity (parsed/validated artifacts).
    pub source_capacity: usize,
    /// Result-cache capacity (completed runs).
    pub result_capacity: usize,
    /// Per-line byte cap.
    pub max_line_bytes: usize,
    /// When set, shutdown writes `results/telemetry/serve.json` under
    /// this root.
    pub telemetry_root: Option<PathBuf>,
    /// Request ids whose jobs panic on purpose (fault-injection hook for
    /// the isolation tests; empty in production).
    pub fault_request_ids: BTreeSet<String>,
}

impl ServeConfig {
    /// Defaults: single-threaded remap inside each worker (the pool is
    /// the parallelism), one retry, 1 MiB lines.
    pub fn new(addr: ServeAddr) -> ServeConfig {
        let setup = LowEndSetup {
            remap_threads: 1,
            ..LowEndSetup::default()
        };
        ServeConfig {
            addr,
            workers: 0,
            retries: 1,
            setup,
            source_capacity: crate::batch::DEFAULT_SOURCE_CAPACITY,
            result_capacity: crate::session::DEFAULT_RESULT_CAPACITY,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            telemetry_root: None,
            fault_request_ids: BTreeSet::new(),
        }
    }
}

/// A serialized writer around one connection's outbound half: workers
/// and the connection thread interleave whole-line writes through it.
struct ConnWriter {
    stream: Mutex<Stream>,
}

impl ConnWriter {
    fn new(stream: Stream) -> ConnWriter {
        ConnWriter {
            stream: Mutex::new(stream),
        }
    }

    /// Write `line` + newline; errors are swallowed (the peer may have
    /// hung up without collecting its responses — that must not unwind a
    /// worker).
    fn send(&self, line: &str) {
        if let Ok(mut s) = self.stream.lock() {
            let _ = s.write_all(line.as_bytes());
            let _ = s.write_all(b"\n");
            let _ = s.flush();
        }
    }
}

struct Job {
    id: String,
    approach: Approach,
    spec: JobSpec,
    reply: Arc<ConnWriter>,
}

/// Everything a connection thread needs, cloned per accept.
struct ConnCtx {
    running: Arc<AtomicBool>,
    base: Arc<Mutex<Telemetry>>,
    shard_telemetry: Arc<Vec<Arc<Mutex<Telemetry>>>>,
    session: Arc<CompileSession>,
    senders: Vec<Sender<Job>>,
    max_line_bytes: usize,
    workers: u64,
}

impl ConnCtx {
    fn clone_for_conn(&self) -> ConnCtx {
        ConnCtx {
            running: Arc::clone(&self.running),
            base: Arc::clone(&self.base),
            shard_telemetry: Arc::clone(&self.shard_telemetry),
            session: Arc::clone(&self.session),
            senders: self.senders.clone(),
            max_line_bytes: self.max_line_bytes,
            workers: self.workers,
        }
    }

    fn count(&self, name: &str, delta: u64) {
        if let Ok(mut t) = self.base.lock() {
            t.count(name, delta);
        }
    }

    /// Merge base + shards (in shard order) + session cache counters
    /// into one frame.
    fn snapshot(&self) -> Telemetry {
        let mut out = self
            .base
            .lock()
            .map(|t| t.clone())
            .unwrap_or_else(|_| Telemetry::new());
        for shard in self.shard_telemetry.iter() {
            if let Ok(t) = shard.lock() {
                out.merge(&t);
            }
        }
        self.session.record_counters(&mut out);
        out.set_counter("serve.workers", self.workers);
        out
    }
}

/// Handle to a running daemon.
pub struct ServerHandle {
    addr: ServeAddr,
    running: Arc<AtomicBool>,
    thread: JoinHandle<io::Result<Telemetry>>,
}

impl ServerHandle {
    /// The concretely bound address (TCP port 0 resolved).
    pub fn addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// Ask the daemon to stop accepting and drain; returns immediately.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
    }

    /// Wait for the daemon to finish and collect its final merged
    /// telemetry.
    ///
    /// # Errors
    ///
    /// Any I/O error that aborted the accept loop.
    pub fn join(self) -> io::Result<Telemetry> {
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("serve thread panicked")),
        }
    }
}

/// Bind and start the daemon. Binding happens synchronously, so a
/// returned handle means the socket is live and [`ServerHandle::addr`]
/// is connectable.
///
/// # Errors
///
/// Bind failures (address in use, bad path, …).
pub fn serve(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = Listener::bind(&config.addr)?;
    let addr = listener.bound_addr(&config.addr);
    listener.set_nonblocking(true)?;
    let running = Arc::new(AtomicBool::new(true));
    let thread = {
        let running = Arc::clone(&running);
        thread::spawn(move || run_server(listener, config, running))
    };
    Ok(ServerHandle {
        addr,
        running,
        thread,
    })
}

fn resolved_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

fn run_server(
    listener: Listener,
    config: ServeConfig,
    running: Arc<AtomicBool>,
) -> io::Result<Telemetry> {
    let workers = resolved_workers(config.workers);
    let session = Arc::new(CompileSession::with_capacities(
        config.setup.clone(),
        config.source_capacity,
        config.result_capacity,
    ));
    let faults = Arc::new(config.fault_request_ids.clone());

    let mut senders = Vec::with_capacity(workers);
    let mut shard_telemetry = Vec::with_capacity(workers);
    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::channel::<Job>();
        let telemetry = Arc::new(Mutex::new(Telemetry::new()));
        senders.push(tx);
        shard_telemetry.push(Arc::clone(&telemetry));
        let session = Arc::clone(&session);
        let faults = Arc::clone(&faults);
        let retries = config.retries;
        worker_handles.push(thread::spawn(move || {
            worker_loop(rx, session, telemetry, retries, faults)
        }));
    }

    let ctx = ConnCtx {
        running: Arc::clone(&running),
        base: Arc::new(Mutex::new(Telemetry::new())),
        shard_telemetry: Arc::new(shard_telemetry),
        session,
        senders,
        max_line_bytes: config.max_line_bytes,
        workers: workers as u64,
    };

    let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
    while running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                ctx.count("serve.connections", 1);
                let conn = ctx.clone_for_conn();
                conn_handles.push(thread::spawn(move || conn_loop(stream, conn)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                ctx.count("serve.accept_errors", 1);
                thread::sleep(Duration::from_millis(5));
            }
        }
        // Reap finished connection threads so a long-lived daemon does
        // not accumulate handles.
        conn_handles.retain(|h| !h.is_finished());
    }

    // Teardown: stop accepting, let connection threads notice `running`
    // (they poll on a read timeout), then drop the job senders so each
    // worker drains its queue and exits.
    drop(listener);
    if let ServeAddr::Unix(path) = &config.addr {
        let _ = std::fs::remove_file(path);
    }
    for h in conn_handles {
        let _ = h.join();
    }
    let ConnCtx {
        base,
        shard_telemetry,
        session,
        senders,
        max_line_bytes,
        workers,
        ..
    } = ctx;
    drop(senders);
    for h in worker_handles {
        let _ = h.join();
    }

    let final_ctx = ConnCtx {
        running,
        base,
        shard_telemetry,
        session,
        senders: Vec::new(),
        max_line_bytes,
        workers,
    };
    let telemetry = final_ctx.snapshot();
    if let Some(root) = &config.telemetry_root {
        telemetry.write_results(root, "serve")?;
    }
    Ok(telemetry)
}

fn conn_loop(stream: Stream, ctx: ConnCtx) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(ConnWriter::new(clone)),
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream, ctx.max_line_bytes);
    loop {
        if !ctx.running.load(Ordering::SeqCst) {
            break;
        }
        match reader.next_line() {
            Ok(LineEvent::Line(line)) => {
                if !handle_line(&line, &writer, &ctx) {
                    break;
                }
            }
            Ok(LineEvent::Timeout) => {}
            Ok(LineEvent::Eof { partial: false }) => break,
            Ok(LineEvent::Eof { partial: true }) => {
                ctx.count("serve.truncated", 1);
                writer.send(&response_error(
                    None,
                    "truncated",
                    "request line truncated by connection close",
                ));
                break;
            }
            Ok(LineEvent::Oversized) => {
                ctx.count("serve.oversized", 1);
                writer.send(&response_error(
                    None,
                    "oversized",
                    &format!("request line exceeds {} bytes", ctx.max_line_bytes),
                ));
                break;
            }
            Err(_) => break,
        }
    }
}

/// Process one request line. Returns false when the connection should
/// close (shutdown).
fn handle_line(line: &str, writer: &Arc<ConnWriter>, ctx: &ConnCtx) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    ctx.count("serve.lines", 1);
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(we) => {
            ctx.count("serve.bad_requests", 1);
            writer.send(&response_error(we.id.as_deref(), we.kind, &we.message));
            return true;
        }
    };
    match request {
        Request::Ping { id } => {
            ctx.count("serve.pings", 1);
            writer.send(&response_plain(&id, "pong"));
            true
        }
        Request::Stats { id } => {
            ctx.count("serve.stats_requests", 1);
            let snapshot = ctx.snapshot();
            writer.send(&response_stats(&id, &snapshot));
            true
        }
        Request::Shutdown { id } => {
            ctx.count("serve.shutdowns", 1);
            writer.send(&response_plain(&id, "bye"));
            ctx.running.store(false, Ordering::SeqCst);
            false
        }
        Request::Compile { id, approach, spec } => {
            if let JobSpec::Bench(name) = &spec {
                // `benchmark()` panics on unknown names; reject here so a
                // typo is a protocol error, not a contained worker panic.
                if !dra_workloads::benchmark_names().contains(&name.as_str()) {
                    ctx.count("serve.bad_requests", 1);
                    writer.send(&response_error(
                        Some(&id),
                        "bad-request",
                        &format!("unknown benchmark {name:?}"),
                    ));
                    return true;
                }
            }
            let key = match &spec {
                JobSpec::Bench(name) => result_key("bench", name, approach),
                JobSpec::Source(text) => result_key("src", text, approach),
            };
            let shard = (key[0] % ctx.senders.len() as u64) as usize;
            let job = Job {
                id,
                approach,
                spec,
                reply: Arc::clone(writer),
            };
            match ctx.senders[shard].send(job) {
                Ok(()) => {
                    ctx.count("serve.dispatched", 1);
                    true
                }
                Err(mpsc::SendError(job)) => {
                    // Only reachable mid-shutdown.
                    writer.send(&response_error(
                        Some(&job.id),
                        "shutdown",
                        "server is shutting down",
                    ));
                    false
                }
            }
        }
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    session: Arc<CompileSession>,
    telemetry: Arc<Mutex<Telemetry>>,
    retries: u32,
    faults: Arc<BTreeSet<String>>,
) {
    while let Ok(job) = rx.recv() {
        let start = Instant::now();
        let (outcome, _attempts) = run_isolated(retries, || {
            if faults.contains(&job.id) {
                panic!("injected serve fault (request {})", job.id);
            }
            match &job.spec {
                JobSpec::Bench(name) => session.compile_bench(name, job.approach),
                JobSpec::Source(text) => session.compile_source(text, job.approach),
            }
        });
        let elapsed = start.elapsed();
        let micros = elapsed.as_micros() as u64;
        let mut t = match telemetry.lock() {
            Ok(t) => t,
            Err(poisoned) => poisoned.into_inner(),
        };
        t.count("serve.requests", 1);
        t.span_ns("serve.request", elapsed.as_nanos() as u64);
        match outcome {
            crate::batch::CellOutcome::Ok(Ok((run, cached))) => {
                t.count("serve.ok", 1);
                if cached {
                    t.count("serve.cache_hits", 1);
                } else {
                    // Fold the fresh compile's pipeline telemetry into
                    // this shard's frame (cache hits did no new work).
                    t.merge(&run.telemetry);
                }
                drop(t);
                job.reply.send(&response_run(&job.id, &run, cached, micros));
            }
            crate::batch::CellOutcome::Ok(Err(e)) => {
                t.count("serve.errors", 1);
                drop(t);
                job.reply
                    .send(&response_error(Some(&job.id), e.kind(), &e.to_string()));
            }
            crate::batch::CellOutcome::Failed { stage, message } => {
                t.count("serve.panics", 1);
                drop(t);
                job.reply.send(&response_error(
                    Some(&job.id),
                    "panic",
                    &format!("panic in stage {stage:?}: {message}"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

/// A blocking line-protocol client.
pub struct ServeClient {
    reader: LineReader,
    writer: Stream,
}

impl ServeClient {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &ServeAddr) -> io::Result<ServeClient> {
        let stream = Stream::connect(addr)?;
        let reader = LineReader::new(stream.try_clone()?, DEFAULT_MAX_LINE_BYTES);
        Ok(ServeClient {
            reader,
            writer: stream,
        })
    }

    /// Connect, retrying until `deadline` elapses — for scripts that
    /// race the daemon's startup.
    ///
    /// # Errors
    ///
    /// The last connection failure once the deadline passes.
    pub fn connect_with_retry(addr: &ServeAddr, deadline: Duration) -> io::Result<ServeClient> {
        let start = Instant::now();
        loop {
            match ServeClient::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send one raw request line.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Block until the next response line arrives and parse it.
    ///
    /// # Errors
    ///
    /// Read failures, early EOF, or a malformed response.
    pub fn recv_response(&mut self) -> io::Result<Response> {
        loop {
            match self.reader.next_line()? {
                LineEvent::Line(line) => {
                    return Response::parse(&line)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
                }
                LineEvent::Timeout => continue,
                LineEvent::Eof { .. } => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                LineEvent::Oversized => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "oversized response line",
                    ))
                }
            }
        }
    }

    /// Send a raw line and collect its response.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::send_line`] / [`ServeClient::recv_response`].
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        self.send_line(line)?;
        self.recv_response()
    }

    /// Compile a builtin benchmark.
    ///
    /// # Errors
    ///
    /// Transport failures (a pipeline error is an `ok:false` response,
    /// not an `Err`).
    pub fn compile_bench(
        &mut self,
        id: &str,
        bench: &str,
        approach: Approach,
    ) -> io::Result<Response> {
        self.request(&request_compile_bench(id, bench, approach))
    }

    /// Compile inline program text.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn compile_source(
        &mut self,
        id: &str,
        source: &str,
        approach: Approach,
    ) -> io::Result<Response> {
        self.request(&request_compile_source(id, source, approach))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&mut self, id: &str) -> io::Result<Response> {
        self.request(&request_plain(id, "ping"))
    }

    /// Fetch the daemon's merged telemetry snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self, id: &str) -> io::Result<Response> {
        self.request(&request_plain(id, "stats"))
    }

    /// Request graceful shutdown.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self, id: &str) -> io::Result<Response> {
        self.request(&request_plain(id, "shutdown"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_roundtrips_every_kind() {
        let r = parse_request(&request_compile_bench("a", "crc32", Approach::Select)).unwrap();
        assert_eq!(
            r,
            Request::Compile {
                id: "a".into(),
                approach: Approach::Select,
                spec: JobSpec::Bench("crc32".into()),
            }
        );
        let src = "fn f {\n  entry:\n    ret\n}\n";
        let r = parse_request(&request_compile_source("b", src, Approach::OSpill)).unwrap();
        assert_eq!(
            r,
            Request::Compile {
                id: "b".into(),
                approach: Approach::OSpill,
                spec: JobSpec::Source(src.into()),
            }
        );
        for (kind, want) in [
            ("ping", Request::Ping { id: "c".into() }),
            ("stats", Request::Stats { id: "c".into() }),
            ("shutdown", Request::Shutdown { id: "c".into() }),
        ] {
            assert_eq!(parse_request(&request_plain("c", kind)).unwrap(), want);
        }
    }

    #[test]
    fn parse_request_rejects_hostile_lines() {
        let cases: &[(&str, &str)] = &[
            ("", "bad-json"),
            ("{", "bad-json"),
            ("[1,2]", "bad-json"),
            ("{\"schema\":\"dra-serve-v1\",\"kind\":\"ping\"}", "bad-request"), // no id
            ("{\"schema\":\"dra-serve-v1\",\"id\":\"\",\"kind\":\"ping\"}", "bad-request"),
            ("{\"schema\":\"nope\",\"id\":\"x\",\"kind\":\"ping\"}", "bad-request"),
            ("{\"id\":\"x\",\"kind\":\"ping\"}", "bad-request"), // no schema
            ("{\"schema\":\"dra-serve-v1\",\"id\":\"x\"}", "bad-request"), // no kind
            ("{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"frobnicate\"}", "bad-request"),
            // Unknown field.
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"ping\",\"extra\":1}",
                "bad-request",
            ),
            // compile: missing approach / payload, both payloads, bad types.
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"bench\":\"crc32\"}",
                "bad-request",
            ),
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"warp\",\"bench\":\"crc32\"}",
                "bad-request",
            ),
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\"}",
                "bad-request",
            ),
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\",\"bench\":\"a\",\"source\":\"b\"}",
                "bad-request",
            ),
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\",\"bench\":7}",
                "bad-request",
            ),
        ];
        for (line, want_kind) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(&err.kind, want_kind, "line: {line}");
        }
    }

    #[test]
    fn hostile_errors_echo_the_id_once_known() {
        let err = parse_request(
            "{\"schema\":\"dra-serve-v1\",\"id\":\"req-9\",\"kind\":\"compile\",\"approach\":\"warp\",\"bench\":\"crc32\"}",
        )
        .unwrap_err();
        assert_eq!(err.id.as_deref(), Some("req-9"));
        // …and not before the id field validates.
        let err = parse_request("{\"schema\":\"dra-serve-v1\",\"id\":7,\"kind\":\"ping\"}").unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn response_lines_parse_back() {
        let e = Response::parse(&response_error(Some("x"), "bad-request", "nope")).unwrap();
        assert!(!e.ok);
        assert_eq!(e.id.as_deref(), Some("x"));
        assert_eq!(e.error.as_ref().unwrap().0, "bad-request");

        let p = Response::parse(&response_plain("y", "pong")).unwrap();
        assert!(p.ok);
        assert_eq!(p.kind.as_deref(), Some("pong"));

        let mut t = Telemetry::new();
        t.count("serve.requests", 3);
        let s = Response::parse(&response_stats("z", &t)).unwrap();
        let stats = s.stats.unwrap();
        assert_eq!(stats.counters.get("serve.requests"), Some(&3));
    }

    #[test]
    fn oversized_line_reader_rejects_without_allocating_the_world() {
        // A socketless check of the framing state machine via a Unix
        // socketpair.
        let (a, b) = UnixStream::pair().unwrap();
        let mut reader = LineReader::new(Stream::Unix(a), 1024);
        let mut tx = b;
        tx.write_all(&vec![b'x'; 4096]).unwrap();
        drop(tx);
        match reader.next_line().unwrap() {
            LineEvent::Oversized => {}
            _ => panic!("expected Oversized"),
        }
    }

    #[test]
    fn truncated_line_is_flagged_at_eof() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut reader = LineReader::new(Stream::Unix(a), 1024);
        let mut tx = b;
        tx.write_all(b"{\"half\":").unwrap();
        drop(tx);
        match reader.next_line().unwrap() {
            LineEvent::Eof { partial: true } => {}
            _ => panic!("expected partial EOF"),
        }
    }
}
