//! # Resident allocation service (`drac serve`)
//!
//! A long-lived daemon that accepts compile jobs over a Unix or TCP
//! socket and dispatches them to a persistent pool of sharded workers,
//! all sharing one [`CompileSession`] — so the source cache and the
//! content-hash result cache survive *across* requests instead of being
//! rebuilt per invocation. The paper's pipelines are pure functions of
//! their input, which is what makes the cross-request cache sound: two
//! requests with the same content hash get byte-identical runs no matter
//! which worker, connection, or ordering served them.
//!
//! ## Wire protocol (`dra-serve-v1` / `dra-serve-v2`)
//!
//! Line-delimited JSON over the socket: one request per line, one
//! response line per request. Every request carries `schema`, a caller
//! chosen `id` (echoed on the response so concurrent clients can match
//! replies), and a `kind`:
//!
//! ```text
//! {"schema":"dra-serve-v1","id":"r1","kind":"compile","approach":"select","bench":"crc32"}
//! {"schema":"dra-serve-v2","id":"r2","kind":"compile","approach":"coalesce","source":"fn f { ... }","deadline_ms":250,"priority":"batch"}
//! {"schema":"dra-serve-v1","id":"r3","kind":"ping"}
//! {"schema":"dra-serve-v1","id":"r4","kind":"stats"}
//! {"schema":"dra-serve-v1","id":"r5","kind":"shutdown"}
//! ```
//!
//! `dra-serve-v2` is a backward-compatible extension: both schemas are
//! accepted on the same socket, absent v2 fields keep v1 semantics
//! (no deadline, `interactive` priority), and responses echo the
//! request's schema. The v2-only compile fields are `deadline_ms` (shed
//! the job with a retryable `deadline` error once that many milliseconds
//! have elapsed since admission — at dequeue, or cooperatively at the
//! next pipeline stage boundary mid-compile) and `priority`
//! (`"interactive"` / `"batch"`; under overload, batch is shed first and
//! interactive may use the queue's reserve headroom).
//!
//! Responses are `{"schema":…,"id":…,"ok":true,…}` or
//! `{"schema":…,"id":…,"ok":false,"error":{"kind":…,"retryable":…,"message":…}}`.
//! `retryable:true` marks load- or lifecycle-induced failures
//! (`overloaded`, `deadline`, `worker-lost`, `shutdown`) a client should
//! retry with backoff ([`BackoffPolicy`]); deterministic failures
//! (parse errors, panics, bad requests) are not retryable. Malformed
//! input never kills a connection silently and never reaches a worker:
//! bad JSON, unknown fields, unknown benchmarks, oversized lines and
//! truncated trailing lines all produce a structured error response.
//! Worker panics are contained per request by [`run_isolated`] — the
//! same containment the batch driver uses — and surface as an
//! `"error":{"kind":"panic",…}` response with stage attribution.
//!
//! ## Sharding, admission control, and supervision
//!
//! Jobs are routed to workers by the *result-cache key* (`shard =
//! key[0] % workers`), so duplicate requests land on the same worker and
//! hit its just-inserted cache entry instead of racing a recompute on
//! another shard. Distinct keys spread uniformly (FNV-1a output).
//!
//! Each shard's queue is **bounded** ([`ServeConfig::queue_cap`]): at
//! admission, a batch-priority request finding the queue full gets an
//! immediate retryable `overloaded` response, while interactive requests
//! may fill a 2× reserve before they too are shed — load sheds the
//! cheap-to-retry traffic first. The accept loop doubles as a
//! **supervisor**: it reaps finished connection threads (counting
//! panicked ones), detects a dead shard worker (a panic that escaped the
//! per-request isolation), answers the worker's lost in-flight request
//! with a retryable `worker-lost` error, and restarts a fresh worker on
//! the *same* shard state — queue and caches survive the crash
//! (`serve.worker_restarts`).
//!
//! ## Telemetry
//!
//! The daemon keeps per-shard [`Telemetry`] (merged in shard order, so
//! aggregate counters are schedule-invariant for a fixed request set)
//! plus connection-level counters (`serve.connections`,
//! `serve.bad_requests`, …). Overload behavior is its own census:
//! `serve.overload.admitted` / `.shed` / `.shed_interactive` /
//! `.peak_depth`, `serve.deadline.with_deadline` / `.shed_queued` /
//! `.cancelled`, plus `serve.worker_restarts`, `serve.worker_lost_requests`
//! and `serve.conn_panics`. A `stats` request returns the merged frame
//! inline; shutdown writes it to `results/telemetry/serve.json` when a
//! telemetry root is configured.

use crate::batch::run_isolated_cancellable;
use crate::faults::{ServeFaults, SplitMix64};
use crate::lowend::{Approach, LowEndRun, LowEndSetup};
use crate::session::{result_key, CompileSession};
use crate::telemetry::{
    escape_json, parse_json, CancelToken, Json, Telemetry, TelemetryReport,
};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Protocol identifier; every v1 request and response carries it.
pub const SERVE_SCHEMA: &str = "dra-serve-v1";

/// The extended protocol revision: a superset of v1 whose `compile`
/// requests may carry `deadline_ms` and `priority`.
pub const SERVE_SCHEMA_V2: &str = "dra-serve-v2";

/// Default cap on a single request line (bytes, newline included).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Longest request id the server echoes back.
pub const MAX_ID_BYTES: usize = 256;

/// Default per-shard queue bound ([`ServeConfig::queue_cap`]).
pub const DEFAULT_QUEUE_CAP: usize = 256;

/// Which protocol revision a request spoke; responses echo it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    /// `dra-serve-v1`.
    V1,
    /// `dra-serve-v2`.
    V2,
}

impl Wire {
    /// The schema string for this revision.
    pub fn schema(self) -> &'static str {
        match self {
            Wire::V1 => SERVE_SCHEMA,
            Wire::V2 => SERVE_SCHEMA_V2,
        }
    }
}

/// Request priority under overload (v2; v1 requests are `Interactive`).
///
/// `Batch` is shed first: a full queue turns batch admissions into
/// immediate retryable `overloaded` errors while interactive requests
/// may still use the queue's reserve headroom. Batch traffic is assumed
/// to come from harnesses that retry with backoff; interactive traffic
/// from callers a human is waiting on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Throughput traffic; shed first under overload.
    Batch,
    /// Latency-sensitive traffic (the default, and all of v1).
    #[default]
    Interactive,
}

impl Priority {
    /// Parse the wire label.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// The wire label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Whether an error `kind` marks a load- or lifecycle-induced failure
/// the client should retry (with backoff): the same request may well
/// succeed once pressure passes or the worker is restarted.
/// Deterministic failures (bad input, pipeline errors, panics) are not
/// retryable — retrying them only adds load.
pub fn retryable_kind(kind: &str) -> bool {
    matches!(kind, "overloaded" | "deadline" | "worker-lost" | "shutdown")
}

// ---------------------------------------------------------------------------
// Addresses, listeners, streams.
// ---------------------------------------------------------------------------

/// Where the daemon listens (or a client connects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` (use port 0 to let the OS pick; the bound
    /// address is reported by [`ServerHandle::addr`]).
    Tcp(String),
}

impl ServeAddr {
    /// Parse `unix:/path` or `tcp:host:port` (a bare value with no
    /// scheme is treated as a Unix path).
    pub fn parse(s: &str) -> ServeAddr {
        if let Some(rest) = s.strip_prefix("tcp:") {
            ServeAddr::Tcp(rest.to_string())
        } else if let Some(rest) = s.strip_prefix("unix:") {
            ServeAddr::Unix(PathBuf::from(rest))
        } else {
            ServeAddr::Unix(PathBuf::from(s))
        }
    }
}

impl fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            ServeAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(addr: &ServeAddr) -> io::Result<Listener> {
        match addr {
            ServeAddr::Unix(path) => Ok(Listener::Unix(UnixListener::bind(path)?)),
            ServeAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a.as_str())?)),
        }
    }

    /// The concretely bound address (resolves TCP port 0).
    fn bound_addr(&self, requested: &ServeAddr) -> ServeAddr {
        match self {
            Listener::Unix(_) => requested.clone(),
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => ServeAddr::Tcp(a.to_string()),
                Err(_) => requested.clone(),
            },
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // One-line request/response traffic: Nagle + delayed ACK
                // would add ~40 ms per exchange.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }
}

/// A connected socket of either flavour.
pub enum Stream {
    /// Unix-domain.
    Unix(UnixStream),
    /// TCP.
    Tcp(TcpStream),
}

impl Stream {
    fn connect(addr: &ServeAddr) -> io::Result<Stream> {
        match addr {
            ServeAddr::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            ServeAddr::Tcp(a) => {
                let s = TcpStream::connect(a.as_str())?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }

    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(d),
            Stream::Tcp(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded line reader.
// ---------------------------------------------------------------------------

/// What [`LineReader::next_line`] yielded.
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (newline stripped, `\r` trimmed).
    Line(String),
    /// The read timed out with no complete line; retained partial input
    /// stays buffered for the next call.
    Timeout,
    /// Peer closed the socket. `partial` is true when unterminated bytes
    /// were left in the buffer — a truncated request.
    Eof {
        /// Whether a partial line was discarded.
        partial: bool,
    },
    /// The current line exceeded the configured byte cap before its
    /// newline arrived.
    Oversized,
}

/// A newline-framed reader with a hard per-line byte cap, so a client
/// streaming an endless unterminated line cannot balloon server memory.
pub struct LineReader {
    stream: Stream,
    buf: Vec<u8>,
    max_line: usize,
}

impl LineReader {
    /// Wrap `stream`; lines longer than `max_line` bytes are rejected.
    pub fn new(stream: Stream, max_line: usize) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
            max_line: max_line.max(64),
        }
    }

    /// Pull the next event. `Timeout` only occurs when the underlying
    /// stream has a read timeout configured.
    pub fn next_line(&mut self) -> io::Result<LineEvent> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > self.max_line {
                self.buf.clear();
                return Ok(LineEvent::Oversized);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    let partial = !self.buf.is_empty();
                    self.buf.clear();
                    return Ok(LineEvent::Eof { partial });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol: requests.
// ---------------------------------------------------------------------------

/// A compile job's payload: a builtin benchmark by name, or inline
/// program text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSpec {
    /// One of [`dra_workloads::benchmark_names`].
    Bench(String),
    /// Program text for the parser.
    Source(String),
}

/// A validated `dra-serve-v1` / `dra-serve-v2` request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile and simulate.
    Compile {
        /// Echoed on the response.
        id: String,
        /// Allocation approach.
        approach: Approach,
        /// What to compile.
        spec: JobSpec,
        /// Shed the job once this many milliseconds have passed since
        /// admission (v2; `None` = no deadline, the v1 semantics).
        deadline_ms: Option<u64>,
        /// Overload priority (v2; v1 requests are `Interactive`).
        priority: Priority,
    },
    /// Liveness probe.
    Ping {
        /// Echoed on the response.
        id: String,
    },
    /// Merged telemetry snapshot.
    Stats {
        /// Echoed on the response.
        id: String,
    },
    /// Graceful daemon shutdown.
    Shutdown {
        /// Echoed on the response.
        id: String,
    },
}

/// A protocol-level rejection: carried back as a structured error
/// response instead of ever reaching a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// The request id when one could be recovered (error responses echo
    /// it so pipelined clients can re-associate).
    pub id: Option<String>,
    /// Machine-readable kind: `bad-json`, `bad-request`, `oversized`,
    /// `truncated`, or a [`crate::lowend::PipelineError::kind`].
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    fn new(id: Option<&str>, kind: &'static str, message: impl Into<String>) -> WireError {
        WireError {
            id: id.map(str::to_string),
            kind,
            message: message.into(),
        }
    }
}

/// Parse and validate one request line, returning the request plus the
/// protocol revision it spoke (responses echo it). Unknown fields are
/// rejected *per revision* — `deadline_ms` / `priority` on a v1 line are
/// a structured `bad-request`, not silent misinterpretation, and the
/// same goes for any future field on either revision.
///
/// # Errors
///
/// [`WireError`] with kind `bad-json` (not JSON / not an object) or
/// `bad-request` (schema, id, kind, or field violations).
pub fn parse_request(line: &str) -> Result<(Request, Wire), WireError> {
    let doc = parse_json(line).map_err(|e| WireError::new(None, "bad-json", e))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| WireError::new(None, "bad-json", "request is not a JSON object"))?;

    // Recover the id first so every later rejection can echo it.
    let id = match obj.get("id") {
        Some(Json::Str(s)) if !s.is_empty() && s.len() <= MAX_ID_BYTES => s.clone(),
        Some(_) => {
            return Err(WireError::new(
                None,
                "bad-request",
                format!("\"id\" must be a non-empty string of at most {MAX_ID_BYTES} bytes"),
            ))
        }
        None => return Err(WireError::new(None, "bad-request", "missing \"id\"")),
    };

    let wire = match obj.get("schema").and_then(Json::as_str) {
        Some(SERVE_SCHEMA) => Wire::V1,
        Some(SERVE_SCHEMA_V2) => Wire::V2,
        Some(other) => {
            return Err(WireError::new(
                Some(&id),
                "bad-request",
                format!(
                    "unsupported schema {other:?} (want {SERVE_SCHEMA:?} or {SERVE_SCHEMA_V2:?})"
                ),
            ))
        }
        None => {
            return Err(WireError::new(
                Some(&id),
                "bad-request",
                format!("missing \"schema\" (want {SERVE_SCHEMA:?} or {SERVE_SCHEMA_V2:?})"),
            ))
        }
    };

    let kind = match obj.get("kind").and_then(Json::as_str) {
        Some(k) => k,
        None => return Err(WireError::new(Some(&id), "bad-request", "missing \"kind\"")),
    };

    let allowed: &[&str] = match (kind, wire) {
        ("compile", Wire::V1) => &["schema", "id", "kind", "approach", "bench", "source"],
        ("compile", Wire::V2) => &[
            "schema",
            "id",
            "kind",
            "approach",
            "bench",
            "source",
            "deadline_ms",
            "priority",
        ],
        ("ping" | "stats" | "shutdown", _) => &["schema", "id", "kind"],
        (other, _) => {
            return Err(WireError::new(
                Some(&id),
                "bad-request",
                format!("unknown kind {other:?}"),
            ))
        }
    };
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(WireError::new(
                Some(&id),
                "bad-request",
                format!("unknown field {key:?} for kind {kind:?}"),
            ));
        }
    }

    match kind {
        "ping" => Ok((Request::Ping { id }, wire)),
        "stats" => Ok((Request::Stats { id }, wire)),
        "shutdown" => Ok((Request::Shutdown { id }, wire)),
        _ => {
            let approach = match obj.get("approach").and_then(Json::as_str) {
                Some(s) => Approach::parse(s).ok_or_else(|| {
                    WireError::new(Some(&id), "bad-request", format!("unknown approach {s:?}"))
                })?,
                None => {
                    return Err(WireError::new(
                        Some(&id),
                        "bad-request",
                        "compile requires \"approach\"",
                    ))
                }
            };
            let bench = obj.get("bench");
            let source = obj.get("source");
            let spec = match (bench, source) {
                (Some(Json::Str(b)), None) => JobSpec::Bench(b.clone()),
                (None, Some(Json::Str(s))) => JobSpec::Source(s.clone()),
                (Some(_), Some(_)) => {
                    return Err(WireError::new(
                        Some(&id),
                        "bad-request",
                        "compile takes exactly one of \"bench\" or \"source\", not both",
                    ))
                }
                _ => {
                    return Err(WireError::new(
                        Some(&id),
                        "bad-request",
                        "compile requires a string \"bench\" or \"source\"",
                    ))
                }
            };
            let deadline_ms = match obj.get("deadline_ms") {
                None => None,
                Some(v) => match v.as_u64() {
                    Some(ms) => Some(ms),
                    None => {
                        return Err(WireError::new(
                            Some(&id),
                            "bad-request",
                            "\"deadline_ms\" must be an unsigned integer",
                        ))
                    }
                },
            };
            let priority = match obj.get("priority") {
                None => Priority::default(),
                Some(Json::Str(s)) => Priority::parse(s).ok_or_else(|| {
                    WireError::new(
                        Some(&id),
                        "bad-request",
                        format!("unknown priority {s:?} (want \"interactive\" or \"batch\")"),
                    )
                })?,
                Some(_) => {
                    return Err(WireError::new(
                        Some(&id),
                        "bad-request",
                        "\"priority\" must be a string",
                    ))
                }
            };
            Ok((
                Request::Compile {
                    id,
                    approach,
                    spec,
                    deadline_ms,
                    priority,
                },
                wire,
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol: responses.
// ---------------------------------------------------------------------------

fn id_json(id: Option<&str>) -> String {
    match id {
        Some(s) => format!("\"{}\"", escape_json(s)),
        None => "null".to_string(),
    }
}

/// Render the deterministic result object for a run. Field order is
/// fixed and only schedule-invariant quantities appear — no wall-clock,
/// no search-work counters — so concurrent and sequential service of the
/// same job produce *byte-identical* fragments (pinned by test).
pub fn result_json(run: &LowEndRun) -> String {
    let degraded = run.remap.iter().filter(|s| s.degraded).count();
    let ret = match run.ret_value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"approach\":\"{}\",\"total_insts\":{},\"spill_insts\":{},\"set_last_regs\":{},\
         \"code_bits\":{},\"cycles\":{},\"dynamic_spills\":{},\"dynamic_set_last_regs\":{},\
         \"icache_misses\":{},\"dcache_misses\":{},\"degraded_funcs\":{},\"ret\":{}}}",
        escape_json(run.approach.label()),
        run.total_insts,
        run.spill_insts,
        run.set_last_regs,
        run.code_bits,
        run.cycles,
        run.dynamic_spills,
        run.dynamic_set_last_regs,
        run.icache_misses,
        run.dcache_misses,
        degraded,
        ret,
    )
}

/// An `ok:false` response line (no trailing newline). `wire` echoes the
/// request's protocol revision (errors for lines too broken to recover a
/// schema from use [`Wire::V1`], the most conservative framing); the
/// `retryable` flag is derived from `kind` ([`retryable_kind`]).
pub fn response_error(wire: Wire, id: Option<&str>, kind: &str, message: &str) -> String {
    format!(
        "{{\"schema\":\"{}\",\"id\":{},\"ok\":false,\"error\":{{\"kind\":\"{}\",\"retryable\":{},\"message\":\"{}\"}}}}",
        wire.schema(),
        id_json(id),
        escape_json(kind),
        retryable_kind(kind),
        escape_json(message),
    )
}

/// A successful compile response line.
pub fn response_run(wire: Wire, id: &str, run: &LowEndRun, cached: bool, micros: u64) -> String {
    format!(
        "{{\"schema\":\"{}\",\"id\":{},\"ok\":true,\"kind\":\"compile\",\"cached\":{},\"micros\":{},\"result\":{}}}",
        wire.schema(),
        id_json(Some(id)),
        cached,
        micros,
        result_json(run),
    )
}

fn response_plain(wire: Wire, id: &str, kind: &str) -> String {
    format!(
        "{{\"schema\":\"{}\",\"id\":{},\"ok\":true,\"kind\":\"{}\"}}",
        wire.schema(),
        id_json(Some(id)),
        kind,
    )
}

/// A `stats` response embedding the merged telemetry frame.
pub fn response_stats(wire: Wire, id: &str, telemetry: &Telemetry) -> String {
    format!(
        "{{\"schema\":\"{}\",\"id\":{},\"ok\":true,\"kind\":\"stats\",\"stats\":{}}}",
        wire.schema(),
        id_json(Some(id)),
        telemetry.to_json_compact("serve"),
    )
}

/// A parsed response line, as seen by clients.
#[derive(Clone, Debug)]
pub struct Response {
    /// The raw line, verbatim (for byte-level comparisons).
    pub raw: String,
    /// The echoed request id (None on early protocol errors).
    pub id: Option<String>,
    /// Success flag.
    pub ok: bool,
    /// Response kind (`compile`, `pong`, `stats`, `bye`; None on
    /// errors).
    pub kind: Option<String>,
    /// Whether a compile was served from the result cache.
    pub cached: bool,
    /// Service time in microseconds (compile responses).
    pub micros: u64,
    /// The result object (compile responses).
    pub result: Option<std::collections::BTreeMap<String, Json>>,
    /// `(kind, message)` on failures.
    pub error: Option<(String, String)>,
    /// Whether the error is worth retrying with backoff (false for `ok`
    /// responses and for v1 servers that never emit the flag).
    pub retryable: bool,
    /// The embedded telemetry frame (stats responses).
    pub stats: Option<TelemetryReport>,
}

impl Response {
    /// Parse one response line (either protocol revision).
    ///
    /// # Errors
    ///
    /// A description when the line is not a `dra-serve-v1` /
    /// `dra-serve-v2` response object.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = parse_json(line)?;
        let obj = doc.as_obj().ok_or("response is not a JSON object")?;
        match obj.get("schema").and_then(Json::as_str) {
            Some(SERVE_SCHEMA) | Some(SERVE_SCHEMA_V2) => {}
            other => return Err(format!("bad response schema {other:?}")),
        }
        let id = obj.get("id").and_then(Json::as_str).map(str::to_string);
        let ok = matches!(obj.get("ok"), Some(Json::Bool(true)));
        let kind = obj.get("kind").and_then(Json::as_str).map(str::to_string);
        let cached = matches!(obj.get("cached"), Some(Json::Bool(true)));
        let micros = obj.get("micros").and_then(Json::as_u64).unwrap_or(0);
        let result = obj.get("result").and_then(Json::as_obj).cloned();
        let retryable = obj
            .get("error")
            .and_then(Json::as_obj)
            .is_some_and(|e| matches!(e.get("retryable"), Some(Json::Bool(true))));
        let error = obj.get("error").and_then(Json::as_obj).map(|e| {
            (
                e.get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                e.get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            )
        });
        let stats = obj.get("stats").and_then(Json::as_obj).map(|s| {
            let grab = |key: &str| {
                s.get(key)
                    .and_then(Json::as_obj)
                    .map(|m| {
                        m.iter()
                            .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                            .collect()
                    })
                    .unwrap_or_default()
            };
            TelemetryReport {
                binary: s
                    .get("binary")
                    .and_then(Json::as_str)
                    .unwrap_or("serve")
                    .to_string(),
                counters: grab("counters"),
                spans_ns: grab("spans_ns"),
            }
        });
        Ok(Response {
            raw: line.to_string(),
            id,
            ok,
            kind,
            cached,
            micros,
            result,
            error,
            retryable,
            stats,
        })
    }

    /// The verbatim `"result":{…}` fragment of the raw line, for
    /// byte-identical comparisons across servers and schedules. The
    /// result object is flat (numbers and null only), so scanning to the
    /// first closing brace is exact.
    pub fn result_fragment(&self) -> Option<&str> {
        let start = self.raw.find("\"result\":{")? + "\"result\":".len();
        let end = self.raw[start..].find('}')? + start + 1;
        Some(&self.raw[start..end])
    }
}

// ---------------------------------------------------------------------------
// Request builders (shared by the client and the load harness).
// ---------------------------------------------------------------------------

/// Build a benchmark compile request line.
pub fn request_compile_bench(id: &str, bench: &str, approach: Approach) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":\"{}\",\"kind\":\"compile\",\"approach\":\"{}\",\"bench\":\"{}\"}}",
        escape_json(id),
        escape_json(approach.label()),
        escape_json(bench),
    )
}

/// Build a source-text compile request line (text is JSON-escaped, so
/// embedded newlines survive the line framing).
pub fn request_compile_source(id: &str, source: &str, approach: Approach) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":\"{}\",\"kind\":\"compile\",\"approach\":\"{}\",\"source\":\"{}\"}}",
        escape_json(id),
        escape_json(approach.label()),
        escape_json(source),
    )
}

/// Build a `ping` / `stats` / `shutdown` request line.
pub fn request_plain(id: &str, kind: &str) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"id\":\"{}\",\"kind\":\"{}\"}}",
        escape_json(id),
        escape_json(kind),
    )
}

fn v2_suffix(deadline_ms: Option<u64>, priority: Priority) -> String {
    let mut out = String::new();
    if let Some(ms) = deadline_ms {
        out.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    if priority != Priority::default() {
        out.push_str(&format!(",\"priority\":\"{}\"", priority.label()));
    }
    out
}

/// Build a `dra-serve-v2` benchmark compile request line with an
/// optional deadline and an explicit priority (defaulted fields are
/// omitted — absent means v1 semantics by construction).
pub fn request_compile_bench_v2(
    id: &str,
    bench: &str,
    approach: Approach,
    deadline_ms: Option<u64>,
    priority: Priority,
) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA_V2}\",\"id\":\"{}\",\"kind\":\"compile\",\"approach\":\"{}\",\"bench\":\"{}\"{}}}",
        escape_json(id),
        escape_json(approach.label()),
        escape_json(bench),
        v2_suffix(deadline_ms, priority),
    )
}

/// Build a `dra-serve-v2` source-text compile request line (see
/// [`request_compile_bench_v2`]).
pub fn request_compile_source_v2(
    id: &str,
    source: &str,
    approach: Approach,
    deadline_ms: Option<u64>,
    priority: Priority,
) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA_V2}\",\"id\":\"{}\",\"kind\":\"compile\",\"approach\":\"{}\",\"source\":\"{}\"{}}}",
        escape_json(id),
        escape_json(approach.label()),
        escape_json(source),
        v2_suffix(deadline_ms, priority),
    )
}

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address.
    pub addr: ServeAddr,
    /// Worker pool size; 0 means one per available core.
    pub workers: usize,
    /// Per-request panic re-attempts (see [`run_isolated`]).
    pub retries: u32,
    /// Pipeline setup shared by every request.
    pub setup: LowEndSetup,
    /// Source-cache capacity (parsed/validated artifacts).
    pub source_capacity: usize,
    /// Result-cache capacity (completed runs).
    pub result_capacity: usize,
    /// Per-line byte cap.
    pub max_line_bytes: usize,
    /// Per-shard queue bound: batch-priority admissions are shed with a
    /// retryable `overloaded` error once a shard holds this many queued
    /// jobs; interactive admissions may fill a 2× reserve before they
    /// are shed too. `0` disables the bound (the pre-overload-control
    /// behavior; not recommended for anything long-lived).
    pub queue_cap: usize,
    /// When set, shutdown writes `results/telemetry/serve.json` under
    /// this root.
    pub telemetry_root: Option<PathBuf>,
    /// Fault-injection hooks keyed by request id (tests and the serve
    /// chaos campaign; empty in production).
    pub faults: ServeFaults,
    /// The gate stalled workers ([`ServeFaults::stall_request_ids`])
    /// poll; a test flips it to `true` to release them. Shared so the
    /// harness keeps a handle after the config moves into the server.
    pub stall_gate: Arc<AtomicBool>,
}

impl ServeConfig {
    /// Defaults: single-threaded remap inside each worker (the pool is
    /// the parallelism), one retry, 1 MiB lines, bounded queues
    /// ([`DEFAULT_QUEUE_CAP`] per shard).
    pub fn new(addr: ServeAddr) -> ServeConfig {
        let setup = LowEndSetup {
            remap_threads: 1,
            ..LowEndSetup::default()
        };
        ServeConfig {
            addr,
            workers: 0,
            retries: 1,
            setup,
            source_capacity: crate::batch::DEFAULT_SOURCE_CAPACITY,
            result_capacity: crate::session::DEFAULT_RESULT_CAPACITY,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            queue_cap: DEFAULT_QUEUE_CAP,
            telemetry_root: None,
            faults: ServeFaults::default(),
            stall_gate: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// A serialized writer around one connection's outbound half: workers
/// and the connection thread interleave whole-line writes through it.
struct ConnWriter {
    stream: Mutex<Stream>,
}

impl ConnWriter {
    fn new(stream: Stream) -> ConnWriter {
        ConnWriter {
            stream: Mutex::new(stream),
        }
    }

    /// Write `line` + newline; errors are swallowed (the peer may have
    /// hung up without collecting its responses — that must not unwind a
    /// worker).
    fn send(&self, line: &str) {
        if let Ok(mut s) = self.stream.lock() {
            let _ = s.write_all(line.as_bytes());
            let _ = s.write_all(b"\n");
            let _ = s.flush();
        }
    }
}

struct Job {
    id: String,
    approach: Approach,
    spec: JobSpec,
    reply: Arc<ConnWriter>,
    wire: Wire,
    priority: Priority,
    /// Absolute shed time, computed at admission from `deadline_ms`.
    deadline: Option<Instant>,
    /// The original relative deadline, for error messages.
    deadline_ms: Option<u64>,
}

/// What a shard's queue said to an admission attempt.
enum Admit {
    /// Enqueued; the payload is the queue depth right after the push
    /// (both lanes), for the peak-depth census.
    Queued(usize),
    /// Full for this priority — shed the job back to the caller.
    Overloaded(Job),
    /// The queue is closed (shutdown drain).
    Closed(Job),
}

#[derive(Default)]
struct QueueInner {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    closed: bool,
}

impl QueueInner {
    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }
}

/// A bounded, two-lane (interactive-first) MPMC job queue; one per shard.
///
/// Replaces the unbounded `mpsc` channel: admission is decided *here*,
/// under the same lock the workers pop under, so "full" can never race
/// itself into unbounded growth. `cap` bounds batch admissions; the
/// interactive lane may grow to `2 * cap` (reserve headroom) before it
/// too sheds. `cap == 0` means unbounded.
struct ShardQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

impl ShardQueue {
    fn new(cap: usize) -> ShardQueue {
        ShardQueue {
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Lock the lanes, recovering from poison: jobs are moved in and out
    /// whole, so the deques are structurally valid at every panic point.
    fn inner(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admit or shed `job` (never blocks).
    fn try_push(&self, job: Job) -> Admit {
        let mut q = self.inner();
        if q.closed {
            return Admit::Closed(job);
        }
        let limit = match job.priority {
            _ if self.cap == 0 => usize::MAX,
            Priority::Batch => self.cap,
            Priority::Interactive => self.cap.saturating_mul(2),
        };
        if q.len() >= limit {
            return Admit::Overloaded(job);
        }
        match job.priority {
            Priority::Interactive => q.interactive.push_back(job),
            Priority::Batch => q.batch.push_back(job),
        }
        let depth = q.len();
        drop(q);
        self.ready.notify_one();
        Admit::Queued(depth)
    }

    /// Pop the next job (interactive lane first), blocking while empty.
    /// Returns `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<Job> {
        let mut q = self.inner();
        loop {
            if let Some(job) = q.interactive.pop_front().or_else(|| q.batch.pop_front()) {
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self
                .ready
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stop admissions and wake every blocked worker; queued jobs still
    /// drain.
    fn close(&self) {
        self.inner().closed = true;
        self.ready.notify_all();
    }
}

/// The request a worker is processing right now — enough to answer it if
/// the worker dies mid-flight (supervision's exactly-one-response duty).
struct InflightTag {
    id: String,
    wire: Wire,
    reply: Arc<ConnWriter>,
}

/// Everything that must survive a worker crash: the queue and the
/// in-flight marker live *outside* the worker thread, so a restarted
/// worker resumes the same shard (and the shared session keeps its
/// caches — a crash costs one request, never the warm state).
struct ShardState {
    queue: ShardQueue,
    inflight: Mutex<Option<InflightTag>>,
    telemetry: Arc<Mutex<Telemetry>>,
}

impl ShardState {
    fn take_inflight(&self) -> Option<InflightTag> {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    fn set_inflight(&self, tag: Option<InflightTag>) {
        *self
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = tag;
    }
}

/// Everything a connection thread needs, cloned per accept.
struct ConnCtx {
    running: Arc<AtomicBool>,
    base: Arc<Mutex<Telemetry>>,
    shards: Arc<Vec<Arc<ShardState>>>,
    session: Arc<CompileSession>,
    max_line_bytes: usize,
    workers: u64,
    /// High-water mark of any single shard's queue depth.
    peak_depth: Arc<AtomicU64>,
}

impl ConnCtx {
    fn clone_for_conn(&self) -> ConnCtx {
        ConnCtx {
            running: Arc::clone(&self.running),
            base: Arc::clone(&self.base),
            shards: Arc::clone(&self.shards),
            session: Arc::clone(&self.session),
            max_line_bytes: self.max_line_bytes,
            workers: self.workers,
            peak_depth: Arc::clone(&self.peak_depth),
        }
    }

    fn count(&self, name: &str, delta: u64) {
        if let Ok(mut t) = self.base.lock() {
            t.count(name, delta);
        }
    }

    /// Merge base + shards (in shard order) + session cache counters
    /// into one frame.
    fn snapshot(&self) -> Telemetry {
        let mut out = self
            .base
            .lock()
            .map(|t| t.clone())
            .unwrap_or_else(|_| Telemetry::new());
        for shard in self.shards.iter() {
            if let Ok(t) = shard.telemetry.lock() {
                out.merge(&t);
            }
        }
        self.session.record_counters(&mut out);
        out.set_counter("serve.workers", self.workers);
        out.set_counter(
            "serve.overload.peak_depth",
            self.peak_depth.load(Ordering::Relaxed),
        );
        out
    }
}

/// Handle to a running daemon.
pub struct ServerHandle {
    addr: ServeAddr,
    running: Arc<AtomicBool>,
    thread: JoinHandle<io::Result<Telemetry>>,
}

impl ServerHandle {
    /// The concretely bound address (TCP port 0 resolved).
    pub fn addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// Ask the daemon to stop accepting and drain; returns immediately.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
    }

    /// Wait for the daemon to finish and collect its final merged
    /// telemetry.
    ///
    /// # Errors
    ///
    /// Any I/O error that aborted the accept loop.
    pub fn join(self) -> io::Result<Telemetry> {
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("serve thread panicked")),
        }
    }
}

/// Bind and start the daemon. Binding happens synchronously, so a
/// returned handle means the socket is live and [`ServerHandle::addr`]
/// is connectable.
///
/// # Errors
///
/// Bind failures (address in use, bad path, …).
pub fn serve(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = Listener::bind(&config.addr)?;
    let addr = listener.bound_addr(&config.addr);
    listener.set_nonblocking(true)?;
    let running = Arc::new(AtomicBool::new(true));
    let thread = {
        let running = Arc::clone(&running);
        thread::spawn(move || run_server(listener, config, running))
    };
    Ok(ServerHandle {
        addr,
        running,
        thread,
    })
}

fn resolved_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Spawn one shard worker thread on (possibly pre-existing) shard state.
fn spawn_worker(
    shard: Arc<ShardState>,
    session: Arc<CompileSession>,
    retries: u32,
    faults: Arc<ServeFaults>,
    stall_gate: Arc<AtomicBool>,
    running: Arc<AtomicBool>,
) -> JoinHandle<()> {
    thread::spawn(move || worker_loop(&shard, &session, retries, &faults, &stall_gate, &running))
}

/// Join every finished connection thread (freeing its handle) and count
/// the ones that panicked. A plain `retain(|h| !h.is_finished())` — the
/// previous implementation — leaks the `JoinHandle` result, so a
/// panicked connection thread was indistinguishable from a clean close.
fn reap_connections(handles: &mut Vec<JoinHandle<()>>, ctx: &ConnCtx) {
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            let h = handles.swap_remove(i);
            if h.join().is_err() {
                ctx.count("serve.conn_panics", 1);
            }
        } else {
            i += 1;
        }
    }
}

fn run_server(
    listener: Listener,
    config: ServeConfig,
    running: Arc<AtomicBool>,
) -> io::Result<Telemetry> {
    crate::telemetry::install_cancel_quiet_hook();
    let workers = resolved_workers(config.workers);
    let session = Arc::new(CompileSession::with_capacities(
        config.setup.clone(),
        config.source_capacity,
        config.result_capacity,
    ));
    let faults = Arc::new(config.faults.clone());
    let stall_gate = Arc::clone(&config.stall_gate);

    let shards: Vec<Arc<ShardState>> = (0..workers)
        .map(|_| {
            Arc::new(ShardState {
                queue: ShardQueue::new(config.queue_cap),
                inflight: Mutex::new(None),
                telemetry: Arc::new(Mutex::new(Telemetry::new())),
            })
        })
        .collect();
    let mut worker_handles: Vec<JoinHandle<()>> = shards
        .iter()
        .map(|shard| {
            spawn_worker(
                Arc::clone(shard),
                Arc::clone(&session),
                config.retries,
                Arc::clone(&faults),
                Arc::clone(&stall_gate),
                Arc::clone(&running),
            )
        })
        .collect();

    let ctx = ConnCtx {
        running: Arc::clone(&running),
        base: Arc::new(Mutex::new(Telemetry::new())),
        shards: Arc::new(shards),
        session,
        max_line_bytes: config.max_line_bytes,
        workers: workers as u64,
        peak_depth: Arc::new(AtomicU64::new(0)),
    };
    // Seed the overload/supervision census at zero so every key is
    // present even in a calm run (consumers diff telemetry files; an
    // absent key reads as a schema change rather than a zero).
    for key in [
        "serve.overload.admitted",
        "serve.overload.shed",
        "serve.overload.shed_interactive",
        "serve.deadline.with_deadline",
        "serve.deadline.shed_queued",
        "serve.deadline.cancelled",
        "serve.worker_restarts",
        "serve.worker_lost_requests",
        "serve.conn_panics",
    ] {
        ctx.count(key, 0);
    }

    let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
    while running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                ctx.count("serve.connections", 1);
                let conn = ctx.clone_for_conn();
                conn_handles.push(thread::spawn(move || conn_loop(stream, conn)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                ctx.count("serve.accept_errors", 1);
                thread::sleep(Duration::from_millis(5));
            }
        }
        // Reap finished connection threads so a long-lived daemon does
        // not accumulate handles (and panicked ones are counted, not
        // silently dropped).
        reap_connections(&mut conn_handles, &ctx);
        // Supervise the shard workers. While the daemon is running a
        // worker thread only ever finishes by dying (a panic that
        // escaped the per-request isolation): answer its lost in-flight
        // request with a retryable error and restart a fresh worker on
        // the same shard state — queue and caches survive the crash.
        for (si, handle) in worker_handles.iter_mut().enumerate() {
            if !handle.is_finished() {
                continue;
            }
            let shard = &ctx.shards[si];
            let replacement = spawn_worker(
                Arc::clone(shard),
                Arc::clone(&ctx.session),
                config.retries,
                Arc::clone(&faults),
                Arc::clone(&stall_gate),
                Arc::clone(&running),
            );
            let dead = std::mem::replace(handle, replacement);
            let _ = dead.join();
            ctx.count("serve.worker_restarts", 1);
            if let Some(tag) = shard.take_inflight() {
                ctx.count("serve.worker_lost_requests", 1);
                tag.reply.send(&response_error(
                    tag.wire,
                    Some(&tag.id),
                    "worker-lost",
                    &format!("shard {si} worker died mid-request; worker restarted"),
                ));
            }
        }
    }

    // Teardown: stop accepting, let connection threads notice `running`
    // (they poll on a read timeout), then close the shard queues so each
    // worker drains what was admitted and exits.
    drop(listener);
    if let ServeAddr::Unix(path) = &config.addr {
        let _ = std::fs::remove_file(path);
    }
    while !conn_handles.is_empty() {
        reap_connections(&mut conn_handles, &ctx);
        if !conn_handles.is_empty() {
            thread::sleep(Duration::from_millis(2));
        }
    }
    for shard in ctx.shards.iter() {
        shard.queue.close();
    }
    for (si, h) in worker_handles.into_iter().enumerate() {
        let died = h.join().is_err();
        // A worker that died during the drain is not restarted, but its
        // in-flight request still gets its one response.
        if died {
            if let Some(tag) = ctx.shards[si].take_inflight() {
                ctx.count("serve.worker_lost_requests", 1);
                tag.reply.send(&response_error(
                    tag.wire,
                    Some(&tag.id),
                    "worker-lost",
                    &format!("shard {si} worker died during shutdown drain"),
                ));
            }
        }
    }

    let telemetry = ctx.snapshot();
    if let Some(root) = &config.telemetry_root {
        telemetry.write_results(root, "serve")?;
    }
    Ok(telemetry)
}

fn conn_loop(stream: Stream, ctx: ConnCtx) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(ConnWriter::new(clone)),
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream, ctx.max_line_bytes);
    loop {
        if !ctx.running.load(Ordering::SeqCst) {
            break;
        }
        match reader.next_line() {
            Ok(LineEvent::Line(line)) => {
                if !handle_line(&line, &writer, &ctx) {
                    break;
                }
            }
            Ok(LineEvent::Timeout) => {}
            Ok(LineEvent::Eof { partial: false }) => break,
            Ok(LineEvent::Eof { partial: true }) => {
                ctx.count("serve.truncated", 1);
                writer.send(&response_error(
                    Wire::V1,
                    None,
                    "truncated",
                    "request line truncated by connection close",
                ));
                break;
            }
            Ok(LineEvent::Oversized) => {
                ctx.count("serve.oversized", 1);
                writer.send(&response_error(
                    Wire::V1,
                    None,
                    "oversized",
                    &format!("request line exceeds {} bytes", ctx.max_line_bytes),
                ));
                break;
            }
            Err(_) => break,
        }
    }
}

/// Process one request line. Returns false when the connection should
/// close (shutdown).
fn handle_line(line: &str, writer: &Arc<ConnWriter>, ctx: &ConnCtx) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    ctx.count("serve.lines", 1);
    let (request, wire) = match parse_request(line) {
        Ok(r) => r,
        Err(we) => {
            ctx.count("serve.bad_requests", 1);
            // A line too broken to recover a schema from answers in v1.
            writer.send(&response_error(
                Wire::V1,
                we.id.as_deref(),
                we.kind,
                &we.message,
            ));
            return true;
        }
    };
    match request {
        Request::Ping { id } => {
            ctx.count("serve.pings", 1);
            writer.send(&response_plain(wire, &id, "pong"));
            true
        }
        Request::Stats { id } => {
            ctx.count("serve.stats_requests", 1);
            let snapshot = ctx.snapshot();
            writer.send(&response_stats(wire, &id, &snapshot));
            true
        }
        Request::Shutdown { id } => {
            ctx.count("serve.shutdowns", 1);
            writer.send(&response_plain(wire, &id, "bye"));
            ctx.running.store(false, Ordering::SeqCst);
            false
        }
        Request::Compile {
            id,
            approach,
            spec,
            deadline_ms,
            priority,
        } => {
            if let JobSpec::Bench(name) = &spec {
                // `benchmark()` panics on unknown names; reject here so a
                // typo is a protocol error, not a contained worker panic.
                if !dra_workloads::benchmark_names().contains(&name.as_str()) {
                    ctx.count("serve.bad_requests", 1);
                    writer.send(&response_error(
                        wire,
                        Some(&id),
                        "bad-request",
                        &format!("unknown benchmark {name:?}"),
                    ));
                    return true;
                }
            }
            let key = match &spec {
                JobSpec::Bench(name) => result_key("bench", name, approach),
                JobSpec::Source(text) => result_key("src", text, approach),
            };
            let shard = (key[0] % ctx.shards.len() as u64) as usize;
            if deadline_ms.is_some() {
                ctx.count("serve.deadline.with_deadline", 1);
            }
            let job = Job {
                id,
                approach,
                spec,
                reply: Arc::clone(writer),
                wire,
                priority,
                // The clock starts at admission: time spent queued counts
                // against the deadline (that is the point — a deadline
                // bounds *response* time, not compile time).
                deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
                deadline_ms,
            };
            match ctx.shards[shard].queue.try_push(job) {
                Admit::Queued(depth) => {
                    ctx.count("serve.dispatched", 1);
                    ctx.count("serve.overload.admitted", 1);
                    ctx.peak_depth.fetch_max(depth as u64, Ordering::Relaxed);
                    true
                }
                Admit::Overloaded(job) => {
                    ctx.count("serve.overload.shed", 1);
                    if job.priority == Priority::Interactive {
                        ctx.count("serve.overload.shed_interactive", 1);
                    }
                    writer.send(&response_error(
                        job.wire,
                        Some(&job.id),
                        "overloaded",
                        &format!(
                            "shard {shard} queue is full ({} priority); retry with backoff",
                            job.priority.label()
                        ),
                    ));
                    true
                }
                Admit::Closed(job) => {
                    writer.send(&response_error(
                        job.wire,
                        Some(&job.id),
                        "shutdown",
                        "server is shutting down",
                    ));
                    false
                }
            }
        }
    }
}

fn worker_loop(
    shard: &ShardState,
    session: &CompileSession,
    retries: u32,
    faults: &ServeFaults,
    stall_gate: &AtomicBool,
    running: &AtomicBool,
) {
    while let Some(job) = shard.queue.pop() {
        // Mark the job in-flight *before* any fallible work, so the
        // supervisor can answer it if this thread dies processing it.
        shard.set_inflight(Some(InflightTag {
            id: job.id.clone(),
            wire: job.wire,
            reply: Arc::clone(&job.reply),
        }));
        let start = Instant::now();
        // Count the dequeue immediately: `serve.requests` is the "a
        // worker picked this up" census, visible while the request is
        // still in flight (the chaos harness synchronizes on it).
        drop({
            let mut t = shard
                .telemetry
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            t.count("serve.requests", 1);
            t
        });
        let record = |count_key: &str| {
            let mut t = shard
                .telemetry
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            t.span_ns("serve.request", start.elapsed().as_nanos() as u64);
            t.count(count_key, 1);
            t
        };
        // Deadline check at dequeue: a request that expired while queued
        // is shed without compiling anything.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            drop(record("serve.deadline.shed_queued"));
            job.reply.send(&response_error(
                job.wire,
                Some(&job.id),
                "deadline",
                &format!(
                    "deadline of {} ms expired while queued",
                    job.deadline_ms.unwrap_or(0)
                ),
            ));
            shard.set_inflight(None);
            continue;
        }
        if faults.kill_request_ids.contains(&job.id) {
            // Escape the per-request isolation on purpose: the thread
            // dies with the job still marked in-flight, exercising the
            // supervisor's restart-and-respond path.
            panic!("injected worker kill (request {})", job.id);
        }
        if faults.stall_request_ids.contains(&job.id) {
            // A wedged request: block until the harness opens the gate
            // (or the daemon shuts down — a stall must not outlive it).
            while !stall_gate.load(Ordering::SeqCst) && running.load(Ordering::SeqCst) {
                thread::sleep(Duration::from_millis(1));
            }
        }
        let token = CancelToken::with_deadline(job.deadline);
        let (outcome, _attempts) = run_isolated_cancellable(retries, Some(&token), || {
            if faults.panic_request_ids.contains(&job.id) {
                panic!("injected serve fault (request {})", job.id);
            }
            match &job.spec {
                JobSpec::Bench(name) => session.compile_bench(name, job.approach),
                JobSpec::Source(text) => session.compile_source(text, job.approach),
            }
        });
        let micros = start.elapsed().as_micros() as u64;
        match outcome {
            crate::batch::CellOutcome::Ok(Ok((run, cached))) => {
                let mut t = record("serve.ok");
                if cached {
                    t.count("serve.cache_hits", 1);
                } else {
                    // Fold the fresh compile's pipeline telemetry into
                    // this shard's frame (cache hits did no new work).
                    t.merge(&run.telemetry);
                }
                drop(t);
                job.reply
                    .send(&response_run(job.wire, &job.id, &run, cached, micros));
            }
            crate::batch::CellOutcome::Ok(Err(e)) => {
                drop(record("serve.errors"));
                job.reply.send(&response_error(
                    job.wire,
                    Some(&job.id),
                    e.kind(),
                    &e.to_string(),
                ));
            }
            crate::batch::CellOutcome::Failed { stage, message } => {
                drop(record("serve.panics"));
                job.reply.send(&response_error(
                    job.wire,
                    Some(&job.id),
                    "panic",
                    &format!("panic in stage {stage:?}: {message}"),
                ));
            }
            crate::batch::CellOutcome::Cancelled { stage } => {
                drop(record("serve.deadline.cancelled"));
                job.reply.send(&response_error(
                    job.wire,
                    Some(&job.id),
                    "deadline",
                    &format!(
                        "deadline of {} ms expired mid-compile (at stage {stage:?})",
                        job.deadline_ms.unwrap_or(0)
                    ),
                ));
            }
        }
        shard.set_inflight(None);
    }
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

/// Jittered exponential backoff for retrying shed requests.
///
/// Delay before retry `n` (0-based) is drawn uniformly from
/// `[exp/2, exp)` where `exp = min(base_ms << n, cap_ms)` — "equal
/// jitter", which keeps retries from synchronising into waves while
/// still guaranteeing at least half the nominal delay.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// Total attempts including the first (minimum 1).
    pub attempts: u32,
    /// First retry's nominal delay.
    pub base_ms: u64,
    /// Ceiling on the nominal delay.
    pub cap_ms: u64,
    /// Seed for the jitter stream — fixed seed, fixed delays.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            attempts: 4,
            base_ms: 10,
            cap_ms: 200,
            seed: 0x9e37_79b9,
        }
    }
}

impl BackoffPolicy {
    fn delay_ms(&self, retry: u32, rng: &mut SplitMix64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << retry.min(16))
            .min(self.cap_ms.max(1));
        let half = (exp / 2).max(1);
        half + rng.below(half)
    }
}

/// A blocking line-protocol client.
pub struct ServeClient {
    reader: LineReader,
    writer: Stream,
}

impl ServeClient {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &ServeAddr) -> io::Result<ServeClient> {
        let stream = Stream::connect(addr)?;
        let reader = LineReader::new(stream.try_clone()?, DEFAULT_MAX_LINE_BYTES);
        Ok(ServeClient {
            reader,
            writer: stream,
        })
    }

    /// Connect, retrying until `deadline` elapses — for scripts that
    /// race the daemon's startup.
    ///
    /// # Errors
    ///
    /// The last connection failure once the deadline passes.
    pub fn connect_with_retry(addr: &ServeAddr, deadline: Duration) -> io::Result<ServeClient> {
        let start = Instant::now();
        loop {
            match ServeClient::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send one raw request line.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Block until the next response line arrives and parse it.
    ///
    /// # Errors
    ///
    /// Read failures, early EOF, or a malformed response.
    pub fn recv_response(&mut self) -> io::Result<Response> {
        loop {
            match self.reader.next_line()? {
                LineEvent::Line(line) => {
                    return Response::parse(&line)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
                }
                LineEvent::Timeout => continue,
                LineEvent::Eof { .. } => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                LineEvent::Oversized => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "oversized response line",
                    ))
                }
            }
        }
    }

    /// Send a raw line and collect its response.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::send_line`] / [`ServeClient::recv_response`].
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        self.send_line(line)?;
        self.recv_response()
    }

    /// Send a raw line, retrying retryable errors (`overloaded`,
    /// `deadline`, `worker-lost`, `shutdown`) with jittered exponential
    /// backoff. Returns the last response — still `ok:false` when every
    /// attempt was shed.
    ///
    /// # Errors
    ///
    /// Transport failures on any attempt.
    pub fn request_with_backoff(
        &mut self,
        line: &str,
        policy: &BackoffPolicy,
    ) -> io::Result<Response> {
        let mut rng = SplitMix64::new(policy.seed);
        let mut attempt = 0u32;
        loop {
            let resp = self.request(line)?;
            attempt += 1;
            if resp.ok || !resp.retryable || attempt >= policy.attempts.max(1) {
                return Ok(resp);
            }
            thread::sleep(Duration::from_millis(policy.delay_ms(attempt - 1, &mut rng)));
        }
    }

    /// Compile a builtin benchmark.
    ///
    /// # Errors
    ///
    /// Transport failures (a pipeline error is an `ok:false` response,
    /// not an `Err`).
    pub fn compile_bench(
        &mut self,
        id: &str,
        bench: &str,
        approach: Approach,
    ) -> io::Result<Response> {
        self.request(&request_compile_bench(id, bench, approach))
    }

    /// Compile inline program text.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn compile_source(
        &mut self,
        id: &str,
        source: &str,
        approach: Approach,
    ) -> io::Result<Response> {
        self.request(&request_compile_source(id, source, approach))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&mut self, id: &str) -> io::Result<Response> {
        self.request(&request_plain(id, "ping"))
    }

    /// Fetch the daemon's merged telemetry snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self, id: &str) -> io::Result<Response> {
        self.request(&request_plain(id, "stats"))
    }

    /// Request graceful shutdown.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self, id: &str) -> io::Result<Response> {
        self.request(&request_plain(id, "shutdown"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_roundtrips_every_kind() {
        let (r, wire) = parse_request(&request_compile_bench("a", "crc32", Approach::Select)).unwrap();
        assert_eq!(wire, Wire::V1);
        assert_eq!(
            r,
            Request::Compile {
                id: "a".into(),
                approach: Approach::Select,
                spec: JobSpec::Bench("crc32".into()),
                deadline_ms: None,
                priority: Priority::Interactive,
            }
        );
        let src = "fn f {\n  entry:\n    ret\n}\n";
        let (r, wire) = parse_request(&request_compile_source("b", src, Approach::OSpill)).unwrap();
        assert_eq!(wire, Wire::V1);
        assert_eq!(
            r,
            Request::Compile {
                id: "b".into(),
                approach: Approach::OSpill,
                spec: JobSpec::Source(src.into()),
                deadline_ms: None,
                priority: Priority::Interactive,
            }
        );
        for (kind, want) in [
            ("ping", Request::Ping { id: "c".into() }),
            ("stats", Request::Stats { id: "c".into() }),
            ("shutdown", Request::Shutdown { id: "c".into() }),
        ] {
            let (got, wire) = parse_request(&request_plain("c", kind)).unwrap();
            assert_eq!(wire, Wire::V1);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn parse_request_accepts_v2_deadline_and_priority() {
        let line = request_compile_bench_v2(
            "a",
            "crc32",
            Approach::Select,
            Some(250),
            Priority::Batch,
        );
        let (r, wire) = parse_request(&line).unwrap();
        assert_eq!(wire, Wire::V2);
        assert_eq!(
            r,
            Request::Compile {
                id: "a".into(),
                approach: Approach::Select,
                spec: JobSpec::Bench("crc32".into()),
                deadline_ms: Some(250),
                priority: Priority::Batch,
            }
        );
        // Absent v2 fields keep v1 semantics.
        let line = request_compile_source_v2("b", "fn f {\n  entry:\n    ret\n}\n", Approach::OSpill, None, Priority::Interactive);
        let (r, wire) = parse_request(&line).unwrap();
        assert_eq!(wire, Wire::V2);
        match r {
            Request::Compile {
                deadline_ms,
                priority,
                ..
            } => {
                assert_eq!(deadline_ms, None);
                assert_eq!(priority, Priority::Interactive);
            }
            other => panic!("unexpected request: {other:?}"),
        }
        // Plain kinds ride v2 too, and responses echo the schema.
        let (_, wire) = parse_request(
            "{\"schema\":\"dra-serve-v2\",\"id\":\"p\",\"kind\":\"ping\"}",
        )
        .unwrap();
        assert_eq!(wire, Wire::V2);
    }

    #[test]
    fn v2_only_fields_are_rejected_on_v1() {
        let err = parse_request(
            "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\",\"bench\":\"crc32\",\"deadline_ms\":10}",
        )
        .unwrap_err();
        assert_eq!(err.kind, "bad-request");
        let err = parse_request(
            "{\"schema\":\"dra-serve-v2\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\",\"bench\":\"crc32\",\"priority\":\"urgent\"}",
        )
        .unwrap_err();
        assert_eq!(err.kind, "bad-request");
        let err = parse_request(
            "{\"schema\":\"dra-serve-v2\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\",\"bench\":\"crc32\",\"deadline_ms\":-4}",
        )
        .unwrap_err();
        assert_eq!(err.kind, "bad-request");
    }

    #[test]
    fn parse_request_rejects_hostile_lines() {
        let cases: &[(&str, &str)] = &[
            ("", "bad-json"),
            ("{", "bad-json"),
            ("[1,2]", "bad-json"),
            ("{\"schema\":\"dra-serve-v1\",\"kind\":\"ping\"}", "bad-request"), // no id
            ("{\"schema\":\"dra-serve-v1\",\"id\":\"\",\"kind\":\"ping\"}", "bad-request"),
            ("{\"schema\":\"nope\",\"id\":\"x\",\"kind\":\"ping\"}", "bad-request"),
            ("{\"id\":\"x\",\"kind\":\"ping\"}", "bad-request"), // no schema
            ("{\"schema\":\"dra-serve-v1\",\"id\":\"x\"}", "bad-request"), // no kind
            ("{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"frobnicate\"}", "bad-request"),
            // Unknown field.
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"ping\",\"extra\":1}",
                "bad-request",
            ),
            // compile: missing approach / payload, both payloads, bad types.
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"bench\":\"crc32\"}",
                "bad-request",
            ),
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"warp\",\"bench\":\"crc32\"}",
                "bad-request",
            ),
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\"}",
                "bad-request",
            ),
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\",\"bench\":\"a\",\"source\":\"b\"}",
                "bad-request",
            ),
            (
                "{\"schema\":\"dra-serve-v1\",\"id\":\"x\",\"kind\":\"compile\",\"approach\":\"select\",\"bench\":7}",
                "bad-request",
            ),
        ];
        for (line, want_kind) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(&err.kind, want_kind, "line: {line}");
        }
    }

    #[test]
    fn hostile_errors_echo_the_id_once_known() {
        let err = parse_request(
            "{\"schema\":\"dra-serve-v1\",\"id\":\"req-9\",\"kind\":\"compile\",\"approach\":\"warp\",\"bench\":\"crc32\"}",
        )
        .unwrap_err();
        assert_eq!(err.id.as_deref(), Some("req-9"));
        // …and not before the id field validates.
        let err = parse_request("{\"schema\":\"dra-serve-v1\",\"id\":7,\"kind\":\"ping\"}").unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn response_lines_parse_back() {
        let e = Response::parse(&response_error(Wire::V1, Some("x"), "bad-request", "nope")).unwrap();
        assert!(!e.ok);
        assert_eq!(e.id.as_deref(), Some("x"));
        assert_eq!(e.error.as_ref().unwrap().0, "bad-request");
        assert!(!e.retryable);

        let p = Response::parse(&response_plain(Wire::V1, "y", "pong")).unwrap();
        assert!(p.ok);
        assert_eq!(p.kind.as_deref(), Some("pong"));

        let mut t = Telemetry::new();
        t.count("serve.requests", 3);
        let s = Response::parse(&response_stats(Wire::V1, "z", &t)).unwrap();
        let stats = s.stats.unwrap();
        assert_eq!(stats.counters.get("serve.requests"), Some(&3));
    }

    #[test]
    fn shed_errors_are_marked_retryable_and_echo_the_wire() {
        for kind in ["overloaded", "deadline", "worker-lost", "shutdown"] {
            let line = response_error(Wire::V2, Some("x"), kind, "shed");
            assert!(line.contains("dra-serve-v2"), "line: {line}");
            let r = Response::parse(&line).unwrap();
            assert!(r.retryable, "kind {kind} should be retryable");
        }
        for kind in ["bad-request", "panic", "parse", "oversized"] {
            let r = Response::parse(&response_error(Wire::V2, Some("x"), kind, "no")).unwrap();
            assert!(!r.retryable, "kind {kind} should not be retryable");
        }
    }

    #[test]
    fn backoff_delays_are_deterministic_bounded_and_grow() {
        let policy = BackoffPolicy {
            attempts: 6,
            base_ms: 8,
            cap_ms: 64,
            seed: 42,
        };
        let mut a = SplitMix64::new(policy.seed);
        let mut b = SplitMix64::new(policy.seed);
        for retry in 0..6 {
            let da = policy.delay_ms(retry, &mut a);
            let db = policy.delay_ms(retry, &mut b);
            assert_eq!(da, db, "same seed, same delays");
            let exp = (8u64 << retry).min(64);
            assert!(da >= exp / 2 && da < exp.max(2), "retry {retry}: {da} vs exp {exp}");
        }
    }

    fn test_job(id: &str, priority: Priority) -> Job {
        let (a, _b) = UnixStream::pair().unwrap();
        Job {
            id: id.into(),
            approach: Approach::Select,
            spec: JobSpec::Bench("crc32".into()),
            reply: Arc::new(ConnWriter::new(Stream::Unix(a))),
            wire: Wire::V2,
            priority,
            deadline: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn shard_queue_sheds_batch_before_interactive() {
        let q = ShardQueue::new(2);
        // Batch lane fills at cap.
        assert!(matches!(q.try_push(test_job("b1", Priority::Batch)), Admit::Queued(1)));
        assert!(matches!(q.try_push(test_job("b2", Priority::Batch)), Admit::Queued(2)));
        assert!(matches!(q.try_push(test_job("b3", Priority::Batch)), Admit::Overloaded(_)));
        // Interactive still has headroom up to 2*cap...
        assert!(matches!(q.try_push(test_job("i1", Priority::Interactive)), Admit::Queued(3)));
        assert!(matches!(q.try_push(test_job("i2", Priority::Interactive)), Admit::Queued(4)));
        // ...then sheds too.
        assert!(matches!(q.try_push(test_job("i3", Priority::Interactive)), Admit::Overloaded(_)));
        // Interactive dequeues ahead of earlier-arrived batch.
        assert_eq!(q.pop().unwrap().id, "i1");
        assert_eq!(q.pop().unwrap().id, "i2");
        assert_eq!(q.pop().unwrap().id, "b1");
        q.close();
        assert_eq!(q.pop().unwrap().id, "b2");
        assert!(q.pop().is_none());
        assert!(matches!(q.try_push(test_job("late", Priority::Batch)), Admit::Closed(_)));
    }

    #[test]
    fn shard_queue_cap_zero_is_unbounded() {
        let q = ShardQueue::new(0);
        for i in 0..512 {
            assert!(matches!(
                q.try_push(test_job(&format!("j{i}"), Priority::Batch)),
                Admit::Queued(_)
            ));
        }
    }

    #[test]
    fn oversized_line_reader_rejects_without_allocating_the_world() {
        // A socketless check of the framing state machine via a Unix
        // socketpair.
        let (a, b) = UnixStream::pair().unwrap();
        let mut reader = LineReader::new(Stream::Unix(a), 1024);
        let mut tx = b;
        tx.write_all(&vec![b'x'; 4096]).unwrap();
        drop(tx);
        match reader.next_line().unwrap() {
            LineEvent::Oversized => {}
            _ => panic!("expected Oversized"),
        }
    }

    #[test]
    fn truncated_line_is_flagged_at_eof() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut reader = LineReader::new(Stream::Unix(a), 1024);
        let mut tx = b;
        tx.write_all(b"{\"half\":").unwrap();
        drop(tx);
        match reader.next_line().unwrap() {
            LineEvent::Eof { partial: true } => {}
            _ => panic!("expected partial EOF"),
        }
    }

    #[test]
    fn slowloris_byte_at_a_time_still_yields_a_full_line() {
        // A client dribbling one byte per write must not confuse the
        // framing: the reader keeps accumulating until the newline.
        let (a, b) = UnixStream::pair().unwrap();
        let line = request_plain("slow", "ping");
        let mut tx = b;
        let reader_thread = thread::spawn(move || {
            let mut reader = LineReader::new(Stream::Unix(a), 1024);
            reader.next_line().unwrap()
        });
        for byte in line.as_bytes() {
            tx.write_all(std::slice::from_ref(byte)).unwrap();
            tx.flush().unwrap();
        }
        tx.write_all(b"\n").unwrap();
        match reader_thread.join().unwrap() {
            LineEvent::Line(got) => assert_eq!(got, line),
            other => panic!("expected Line, got {other:?}"),
        }
    }

    #[test]
    fn slowloris_stall_mid_line_surfaces_timeouts_not_a_hang() {
        // A client that sends half a line and goes silent: with a read
        // timeout armed, the reader must keep returning Timeout (so the
        // serve loop can check shutdown) instead of blocking forever,
        // and still finish the line when the bytes eventually arrive.
        let (a, b) = UnixStream::pair().unwrap();
        a.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
        let mut reader = LineReader::new(Stream::Unix(a), 1024);
        let mut tx = b;
        tx.write_all(b"{\"schema\":\"dra-serve-v1\",").unwrap();
        let mut timeouts = 0;
        loop {
            match reader.next_line().unwrap() {
                LineEvent::Timeout => {
                    timeouts += 1;
                    if timeouts == 3 {
                        // Stall observed repeatedly; now complete the line.
                        tx.write_all(b"\"id\":\"s\",\"kind\":\"ping\"}\n").unwrap();
                    }
                }
                LineEvent::Line(line) => {
                    let (req, _) = parse_request(&line).unwrap();
                    assert_eq!(req, Request::Ping { id: "s".into() });
                    break;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(timeouts >= 3);
    }
}
